//! Trace inspector: build segments from a program's retire stream and
//! pretty-print what the fill unit did to one of them — dependency
//! marking, move bits, rewritten immediates, scaled-add annotations and
//! the placement permutation.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example trace_inspector -- m88k
//! ```

use tracefill_core::builder::{build_segments, FillInput};
use tracefill_core::config::{ClusterConfig, FillConfig, OptConfig};
use tracefill_core::opt;
use tracefill_core::segment::{Segment, SrcRef};

fn describe(seg: &Segment, clusters: &ClusterConfig) {
    println!(
        "segment @ {:#x}: {} instructions, {} conditional branches, ends {:?}",
        seg.start_pc,
        seg.slots.len(),
        seg.branches.len(),
        seg.end
    );
    let header = "annotations";
    println!(
        "{:>3} {:>4} {:28} {:>10} {:>14} {header}",
        "pos", "cl", "instruction", "block", "sources"
    );
    for (i, slot) in seg.slots.iter().enumerate() {
        let srcs: Vec<String> = slot
            .src_refs()
            .map(|(_, r)| match r {
                SrcRef::LiveIn(reg) => format!("in:{reg}"),
                SrcRef::Internal(p) => format!("#{p}"),
            })
            .collect();
        let mut notes = Vec::new();
        if slot.is_move {
            notes.push("MOVE (rename-executed)".to_string());
        }
        if slot.reassociated {
            notes.push(format!("REASSOC imm {} -> {}", slot.orig.imm, slot.imm));
        }
        if let Some(sc) = slot.scadd {
            notes.push(format!("SCADD src{} << {}", sc.src, sc.shift));
        }
        if let Some(t) = slot.taken {
            notes.push(format!("path:{}", if t { "T" } else { "N" }));
        }
        println!(
            "{:>3} {:>4} {:28} {:>10} {:>14} {}",
            seg.issue_pos[i],
            clusters.cluster_of(seg.issue_pos[i]),
            slot.orig.to_string(),
            slot.block,
            srcs.join(","),
            notes.join("  ")
        );
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88k".into());
    let b = tracefill_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    });
    let prog = b.program(4).unwrap();

    // Collect a slice of the retire stream via the functional interpreter.
    let mut interp = tracefill_isa::interp::Interp::new(&prog);
    let mut stream = Vec::new();
    for _ in 0..6_000 {
        let r = interp.step().unwrap();
        if r.halt.is_some() {
            break;
        }
        stream.push(FillInput {
            pc: r.pc,
            instr: r.instr,
            taken: r.taken,
            promoted: None,
            fetch_miss_head: false,
        });
    }

    let cfg = FillConfig::default();
    let clusters = ClusterConfig::default();
    let segs = build_segments(&stream, &cfg);
    // Pick the most transformable segment from the steady state.
    let mut best: Option<(u64, Segment)> = None;
    for seg in segs.into_iter().skip(20) {
        let mut optimized = seg.clone();
        let counts = opt::apply_all(&mut optimized, &OptConfig::all(), &clusters);
        let score = counts.transformed_instrs();
        if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
            best = Some((score, optimized));
        }
    }
    let (score, seg) = best.expect("program produced segments");
    println!(
        "most-transformed steady-state segment of `{}` ({} instructions rewritten):\n",
        b.name, score
    );
    describe(&seg, &clusters);
    println!("\n(positions are issue slots; cl = execution cluster; #n = the");
    println!(" output of slot n; in:$r = architectural value at segment entry)");
}
