//! Adaptive policies demo: let the fill unit pick its own optimization
//! passes online and watch the bandit converge, with an optional
//! provenance-aware trace-cache replacement policy.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example adaptive_policies -- m88k ucb:100
//! cargo run --release -p tracefill-bench --example adaptive_policies -- comp egreedy:250 trrip
//! cargo run --release -p tracefill-bench --example adaptive_policies            # m88k, ucb:100, lru
//! ```

use tracefill_core::config::{ControllerConfig, ControllerMode, OptConfig, ReplacementKind};
use tracefill_sim::{SimConfig, Simulator};

const WARMUP: u64 = 100_000;
const WINDOW: u64 = 50_000;

fn run(cfg: SimConfig, prog: &tracefill_isa::program::Program) -> (f64, Simulator) {
    let mut sim = Simulator::new(prog, cfg);
    sim.run_instrs(WARMUP).unwrap();
    let (c0, r0) = (sim.cycle(), sim.stats().retired);
    sim.run_instrs(WINDOW).unwrap();
    let ipc = (sim.stats().retired - r0) as f64 / (sim.cycle() - c0) as f64;
    (ipc, sim)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_name = args.first().map(String::as_str).unwrap_or("m88k");
    let mode_spec = args.get(1).map(String::as_str).unwrap_or("ucb:100");
    let policy_spec = args.get(2).map(String::as_str).unwrap_or("lru");

    let bench = tracefill_workloads::by_name(bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{bench_name}`; the suite:");
        for b in tracefill_workloads::suite() {
            eprintln!("  {:6} {}", b.name, b.description);
        }
        std::process::exit(2);
    });
    let mode = ControllerMode::parse(mode_spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let policy = ReplacementKind::parse(policy_spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let prog = bench.program(bench.scale_for(WARMUP + WINDOW)).unwrap();

    // Static reference: all passes on, the paper's LRU cache.
    let (static_ipc, _) = run(SimConfig::with_opts(OptConfig::all()), &prog);

    // Adaptive: the bandit gates the passes each epoch; the replacement
    // policy decides who survives in the trace cache.
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.fill.controller = ControllerConfig {
        mode,
        epoch_fills: 1024,
        seed: 1,
    };
    cfg.tcache.policy = policy;
    let (adaptive_ipc, sim) = run(cfg, &prog);

    println!(
        "{bench_name}: controller={mode_spec} replacement={policy_spec} \
         (warmup {WARMUP}, measured {WINDOW})"
    );
    println!("  static all-passes IPC  {static_ipc:.3}");
    println!(
        "  adaptive IPC           {adaptive_ipc:.3}  ({:+.1}%)",
        (adaptive_ipc / static_ipc - 1.0) * 100.0
    );

    // Where did the bandit spend its epochs?
    let report = sim.report();
    println!(
        "  epochs: {} (of {} fills), arms chosen:",
        report.metrics.counter("policy.epochs"),
        sim.fill_stats().segments
    );
    if let Some(tracefill_util::Json::Obj(counters)) = report.metrics.to_json().get("counters") {
        for (k, v) in counters {
            if let Some(arm) = k.strip_prefix("policy.arm.") {
                println!("    {:12} {:>6} epochs", arm, v.as_u64().unwrap_or(0));
            }
        }
    }
    let tc = sim.tcache_stats();
    println!(
        "  tcache: {} hits, {} misses, {} evictions under `{policy_spec}`",
        tc.hits, tc.misses, tc.evictions
    );
}
