//! Segment ledger walkthrough: run one workload with the lifetime ledger
//! on and narrate its top-5 most-reused trace segments — when each was
//! built, which fill-unit passes touched it, how often it was re-fetched
//! from the trace cache, how it left the cache, and what the per-pass ROI
//! proxy credits it with.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example segment_ledger -- [bench] [budget]
//! ```

use tracefill_core::config::OptConfig;
use tracefill_core::ledger::SegRecord;
use tracefill_sim::{SimConfig, Simulator};

/// ROI proxy per pass: transforms applied at fill time × cache hits.
fn pass_savings(r: &SegRecord) -> Vec<(&'static str, u64)> {
    let c = &r.opt_counts;
    [
        ("moves", c.moves),
        ("cse", c.cse),
        ("reassoc", c.reassoc),
        ("scadd", c.scadd),
        ("placement", c.placed_segments),
    ]
    .into_iter()
    .filter(|(_, n)| *n > 0)
    .map(|(name, n)| (name, n * r.hits))
    .collect()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88k".into());
    let budget: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("budget must be a number"))
        .unwrap_or(100_000);
    let b = tracefill_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    });
    let prog = b.program(b.scale_for(budget * 2)).unwrap();

    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.ledger = true;
    let mut sim = Simulator::new(&prog, cfg);
    sim.run_instrs(budget).unwrap();

    let now = sim.cycle();
    let ledger = sim.ledger();
    println!(
        "`{}` after {} cycles: {} segments ledgered, {} still resident",
        b.name,
        now,
        ledger.len(),
        ledger.records().filter(|r| r.evicted.is_none()).count()
    );

    let mut by_reuse: Vec<&SegRecord> = ledger.records().collect();
    by_reuse.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.seg_id.cmp(&b.seg_id)));

    for (rank, r) in by_reuse.iter().take(5).enumerate() {
        println!(
            "\n#{} segment {} @ {:#010x} ({} instrs, ended `{}`)",
            rank + 1,
            r.seg_id,
            r.start_pc,
            r.len,
            r.end
        );
        println!(
            "   built at cycle {}, inserted at {}, {}",
            r.build_cycle,
            r.insert_cycle,
            match r.evicted {
                None => format!("still resident after {} cycles", r.residency(now)),
                Some((at, cause)) => format!(
                    "left at cycle {at} ({}) after {} cycles",
                    cause.name(),
                    r.residency(now)
                ),
            }
        );
        println!(
            "   {} hits -> {} uops fetched, {} retired, {} squashed{}",
            r.hits,
            r.uops_fetched,
            r.uops_retired,
            r.uops_squashed,
            if r.is_doa() {
                "  [dead on arrival]"
            } else {
                ""
            }
        );
        let savings = pass_savings(r);
        if savings.is_empty() {
            println!("   untouched by the fill-unit passes (pure capture)");
        } else {
            let parts: Vec<String> = savings.iter().map(|(p, s)| format!("{p}={s}")).collect();
            println!(
                "   est cycles saved {} ({})",
                r.est_cycles_saved(),
                parts.join(", ")
            );
        }
    }

    let attributed = ledger.attributed_retired();
    let from_tc = sim.stats().retired_from_tc;
    println!(
        "\nconservation: ledger attributes {attributed} of {from_tc} trace-cache-served retired instructions ({:.1}%)",
        attributed as f64 / from_tc.max(1) as f64 * 100.0
    );
}
