//! Optimization explorer: run any suite benchmark under any combination
//! of the four fill-unit optimizations.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example optimization_explorer -- m88k moves,reassoc
//! cargo run --release -p tracefill-bench --example optimization_explorer -- ch all
//! cargo run --release -p tracefill-bench --example optimization_explorer        # whole suite, all opts
//! ```

use tracefill_core::config::OptConfig;
use tracefill_sim::{SimConfig, Simulator};
use tracefill_workloads::Benchmark;

fn parse_opts(spec: &str) -> OptConfig {
    OptConfig::from_name(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn measure(b: &Benchmark, opts: OptConfig) -> (f64, f64) {
    let prog = b.program(b.scale_for(300_000)).unwrap();
    let mut base = Simulator::new(&prog, SimConfig::default());
    base.run_instrs(150_000).unwrap();
    let mut opt = Simulator::new(&prog, SimConfig::with_opts(opts));
    opt.run_instrs(150_000).unwrap();
    (base.stats().ipc(), opt.stats().ipc())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = args.get(1).map(String::as_str).unwrap_or("all");
    let opts = parse_opts(spec);

    let benches: Vec<Benchmark> = match args.first() {
        Some(name) => vec![tracefill_workloads::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown benchmark `{name}`; the suite:");
            for b in tracefill_workloads::suite() {
                eprintln!("  {:6} {}", b.name, b.description);
            }
            std::process::exit(2);
        })],
        None => tracefill_workloads::suite(),
    };

    println!("optimizations: {spec}");
    println!(
        "{:6} {:>9} {:>9} {:>8}",
        "bench", "base IPC", "opt IPC", "delta"
    );
    for b in &benches {
        let (base, opt) = measure(b, opts);
        println!(
            "{:6} {:9.3} {:9.3} {:+7.1}%",
            b.name,
            base,
            opt,
            (opt / base - 1.0) * 100.0
        );
    }
}
