//! Validates `tracefill trace` output with the workspace JSON parser —
//! the offline smoke check behind `scripts/ci.sh`'s trace step.
//!
//! ```text
//! validate_trace jsonl  <file>   # one JSON object per line, cycle + kind
//! validate_trace json   <file>   # a single JSON document (chrome format)
//! validate_trace report <file>   # a `--stats-json` report document
//! validate_trace identity <plain> <ledgered>   # ledger-off == ledger-on
//! ```
//!
//! Exits non-zero (with a line-numbered message) on the first byte the
//! parser rejects, so a formatting regression in the exporters fails CI
//! without any external tooling.

use std::process::exit;
use tracefill_util::Json;

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    exit(1);
}

/// Asserts the segment ledger is observation-only: a `--ledger` run's
/// report must match a plain run of the same program on every simulated
/// quantity, the plain report must carry no `ledger.*` metrics, and the
/// ledgered one must.
fn check_identity(plain_path: &str, ledgered_path: &str) {
    let parse = |p: &str| {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")));
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{p}: {e}")))
    };
    let plain = parse(plain_path);
    let ledgered = parse(ledgered_path);
    for member in [
        "stats",
        "tcache",
        "caches",
        "fill_segments",
        "mean_segment_len",
        "cpi",
    ] {
        let a = plain.get(member).map(Json::dump);
        let b = ledgered.get(member).map(Json::dump);
        if a.is_none() {
            fail(&format!("{plain_path}: report missing `{member}`"));
        }
        if a != b {
            fail(&format!(
                "ledger perturbed the simulation: `{member}` differs\n  plain:    {}\n  ledgered: {}",
                a.unwrap_or_default(),
                b.unwrap_or_default()
            ));
        }
    }
    let metrics_dump = |doc: &Json, p: &str| {
        doc.get("metrics")
            .map(Json::dump)
            .unwrap_or_else(|| fail(&format!("{p}: report missing `metrics`")))
    };
    if metrics_dump(&plain, plain_path).contains("ledger.") {
        fail(&format!(
            "{plain_path}: ledger-off report carries ledger.* metrics"
        ));
    }
    if !metrics_dump(&ledgered, ledgered_path).contains("ledger.segments") {
        fail(&format!(
            "{ledgered_path}: ledgered report carries no ledger.* metrics"
        ));
    }
    println!("ledger identity holds: observation changed no simulated quantity");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match (args.first(), args.get(1)) {
        (Some(m), Some(p)) if ["jsonl", "json", "report", "identity"].contains(&m.as_str()) => {
            (m.as_str(), p.as_str())
        }
        _ => fail("usage: validate_trace <jsonl|json|report> <file> | identity <plain> <ledgered>"),
    };
    if mode == "identity" {
        let Some(ledgered) = args.get(2) else {
            fail("identity mode needs two report files: <plain> <ledgered>");
        };
        check_identity(path, ledgered);
        return;
    }
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    match mode {
        "jsonl" => {
            let mut events = 0usize;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let row =
                    Json::parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 1)));
                for member in ["cycle", "kind"] {
                    if row.get(member).is_none() {
                        fail(&format!("{path}:{}: row missing `{member}`", i + 1));
                    }
                }
                events += 1;
            }
            if events == 0 {
                fail(&format!("{path}: no events"));
            }
            println!("{path}: {events} JSONL events parse");
        }
        "json" => {
            let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            let n = doc
                .get("traceEvents")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            if n == 0 {
                fail(&format!("{path}: no traceEvents"));
            }
            println!("{path}: {n} trace events parse");
        }
        "report" => {
            let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            for member in ["stats", "cpi", "metrics"] {
                if doc.get(member).is_none() {
                    fail(&format!("{path}: report missing `{member}`"));
                }
            }
            println!("{path}: report parses (stats + cpi + metrics present)");
        }
        _ => unreachable!(),
    }
}
