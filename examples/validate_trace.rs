//! Validates `tracefill trace` output with the workspace JSON parser —
//! the offline smoke check behind `scripts/ci.sh`'s trace step.
//!
//! ```text
//! validate_trace jsonl  <file>   # one JSON object per line, cycle + kind
//! validate_trace json   <file>   # a single JSON document (chrome format)
//! validate_trace report <file>   # a `--stats-json` report document
//! ```
//!
//! Exits non-zero (with a line-numbered message) on the first byte the
//! parser rejects, so a formatting regression in the exporters fails CI
//! without any external tooling.

use std::process::exit;
use tracefill_util::Json;

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match (args.first(), args.get(1)) {
        (Some(m), Some(p)) if ["jsonl", "json", "report"].contains(&m.as_str()) => {
            (m.as_str(), p.as_str())
        }
        _ => fail("usage: validate_trace <jsonl|json|report> <file>"),
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    match mode {
        "jsonl" => {
            let mut events = 0usize;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let row =
                    Json::parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: {e}", i + 1)));
                for member in ["cycle", "kind"] {
                    if row.get(member).is_none() {
                        fail(&format!("{path}:{}: row missing `{member}`", i + 1));
                    }
                }
                events += 1;
            }
            if events == 0 {
                fail(&format!("{path}: no events"));
            }
            println!("{path}: {events} JSONL events parse");
        }
        "json" => {
            let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            let n = doc
                .get("traceEvents")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            if n == 0 {
                fail(&format!("{path}: no traceEvents"));
            }
            println!("{path}: {n} trace events parse");
        }
        "report" => {
            let doc = Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            for member in ["stats", "cpi", "metrics"] {
                if doc.get(member).is_none() {
                    fail(&format!("{path}: report missing `{member}`"));
                }
            }
            println!("{path}: report parses (stats + cpi + metrics present)");
        }
        _ => unreachable!(),
    }
}
