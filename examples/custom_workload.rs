//! Write your own workload: assemble a custom kernel, characterize how
//! transformable its instruction stream is, then measure the machine on
//! it — the full downstream-user flow.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example custom_workload
//! ```

use tracefill_core::config::OptConfig;
use tracefill_isa::asm::assemble;
use tracefill_isa::syscall::IoCtx;
use tracefill_sim::{SimConfig, Simulator};
use tracefill_workloads::characterize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A histogram kernel that reads its bucket count from input.
    let program = assemble(
        r#"
        .text
main:   li   $v0, 5              # read bucket count from input
        syscall
        move $s4, $v0
        la   $s0, hist
        li   $s1, 40000          # samples
        li   $s2, 12345          # lcg state
loop:   li   $t9, 1103515245
        mul  $s2, $s2, $t9
        addi $s2, $s2, 12345
        srl  $t0, $s2, 16
        rem  $t1, $t0, $s4       # bucket = sample % buckets
        sll  $t2, $t1, 2
        add  $t3, $s0, $t2       # &hist[bucket]
        lw   $t4, 0($t3)
        addi $t4, $t4, 1
        sw   $t4, 0($t3)
        addi $s1, $s1, -1
        bgtz $s1, loop
        # print the first three buckets
        lw   $a0, 0($s0)
        li   $v0, 1
        syscall
        lw   $a0, 4($s0)
        li   $v0, 1
        syscall
        lw   $a0, 8($s0)
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
        .data
hist:   .space 256
"#,
    )?;

    // 1. Characterize: what will the fill unit find to optimize?
    let c = characterize(&program, 60_000);
    println!("fill-unit view of the kernel ({} instructions):", c.instrs);
    println!("  register-move idioms : {:5.1}%", c.moves * 100.0);
    println!("  reassociable chains  : {:5.1}%", c.reassoc * 100.0);
    println!("  scaled-add pairs     : {:5.1}%", c.scadd * 100.0);
    println!("  conditional branches : {:5.1}%", c.branches * 100.0);
    println!(
        "  loads / stores       : {:5.1}% / {:.1}%",
        c.loads * 100.0,
        c.stores * 100.0
    );

    // 2. Run it, feeding the bucket count through the input channel.
    let io = IoCtx::with_input([13]);
    let mut base = Simulator::with_io(&program, SimConfig::default(), io.clone());
    base.run(50_000_000)?;
    let mut opt = Simulator::with_io(&program, SimConfig::with_opts(OptConfig::all()), io);
    opt.run(50_000_000)?;
    assert_eq!(base.io().output, opt.io().output);

    println!("\nhistogram buckets 0..3: {:?}", opt.io().output);
    println!(
        "baseline IPC {:.3} -> optimized IPC {:.3} ({:+.1}%)",
        base.stats().ipc(),
        opt.stats().ipc(),
        (opt.stats().ipc() / base.stats().ipc() - 1.0) * 100.0
    );
    Ok(())
}
