//! Quickstart: assemble a small program, run it on the paper's machine
//! with and without the fill-unit optimizations, and print what happened.
//!
//! ```text
//! cargo run --release -p tracefill-bench --example quickstart
//! ```

use tracefill_core::config::OptConfig;
use tracefill_isa::asm::assemble;
use tracefill_sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little array kernel, dense in the patterns the fill unit targets:
    // shift+add indexing, a register move, and a serial immediate
    // recurrence whose two halves sit in different blocks — exactly what
    // cross-block reassociation collapses.
    let program = assemble(
        r#"
        .text
main:   li   $s1, 30000          # iterations
        la   $s0, data
        li   $s3, 0
loop:   andi $t0, $s1, 63
        sll  $t1, $t0, 2         # index << 2      (scaled-add fodder)
        add  $t2, $s0, $t1       # base + offset
        lw   $t3, 0($t2)
        move $t4, $t3            # register move idiom
        addi $s3, $s3, 3         # recurrence, first half
        bltz $t4, half           # block boundary (data is non-negative)
half:   addi $s3, $s3, 5         # second half: reassociable across it
        add  $t5, $s3, $t4
        sw   $t5, 0($t2)
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s3
        li   $v0, 1              # print checksum
        syscall
        li   $a0, 0
        li   $v0, 10             # exit
        syscall
        .data
data:   .space 256
"#,
    )?;

    println!("running the baseline machine (all fill-unit optimizations off)...");
    let mut base = Simulator::new(&program, SimConfig::default());
    base.run(10_000_000)?;

    println!("running with all four dynamic trace optimizations...");
    let mut opt = Simulator::new(&program, SimConfig::with_opts(OptConfig::all()));
    opt.run(10_000_000)?;

    // Outputs are architecturally identical (both runs are checked against
    // the functional oracle at every retirement).
    assert_eq!(base.io().output, opt.io().output);
    println!("\nprogram output (checksum): {:?}", opt.io().output);

    let (b, o) = (base.stats(), opt.stats());
    println!("\n{:32} {:>10} {:>10}", "", "baseline", "optimized");
    println!("{:32} {:>10} {:>10}", "cycles", b.cycles, o.cycles);
    println!("{:32} {:>10.3} {:>10.3}", "IPC", b.ipc(), o.ipc());
    println!(
        "{:32} {:>9.1}% {:>9.1}%",
        "instructions from trace cache",
        b.tc_fraction() * 100.0,
        o.tc_fraction() * 100.0
    );
    println!(
        "{:32} {:>10} {:>10}",
        "marked register moves retired", b.retired_moves, o.retired_moves
    );
    println!(
        "{:32} {:>10} {:>10}",
        "reassociated instrs retired", b.retired_reassoc, o.retired_reassoc
    );
    println!(
        "{:32} {:>10} {:>10}",
        "scaled adds retired", b.retired_scadd, o.retired_scadd
    );
    println!(
        "\nspeedup from the fill unit: {:+.1}%",
        (o.ipc() / b.ipc() - 1.0) * 100.0
    );
    Ok(())
}
