//! Golden-output regression: every kernel's instruction count and checksum
//! at scale 2 are pinned. Any change to a kernel's code or to the
//! interpreter's semantics that alters observable behaviour shows up here
//! immediately (and deliberate kernel changes must update this table and
//! re-run the calibration in EXPERIMENTS.md).

use tracefill_isa::interp::Interp;

const GOLDEN: &[(&str, u64, &[u32])] = &[
    ("comp", 33297, &[590844]),
    ("gcc", 25048, &[1590]),
    ("go", 19482, &[1760]),
    ("ijpeg", 43508, &[3675095376]),
    ("li", 5592, &[15872]),
    ("m88k", 4588, &[664122]),
    ("perl", 3940, &[2168]),
    ("vor", 4099, &[884196618]),
    ("ch", 4428, &[322]),
    ("gs", 29264, &[14032]),
    ("pgp", 1901, &[16]),
    ("plot", 5200, &[166708]),
    ("py", 3621, &[2880]),
    ("ss", 3496, &[5096]),
    ("tex", 7307, &[34362]),
];

#[test]
fn kernel_outputs_are_pinned() {
    for &(name, icount, output) in GOLDEN {
        let b = tracefill_workloads::by_name(name).unwrap();
        let prog = b.program(2).unwrap();
        let mut i = Interp::new(&prog);
        i.run(100_000_000).unwrap();
        assert_eq!(i.icount(), icount, "{name}: instruction count drifted");
        assert_eq!(i.io().output, output, "{name}: checksum drifted");
    }
}

#[test]
fn scale_is_monotone_in_work() {
    for b in tracefill_workloads::suite() {
        let count = |scale| {
            let mut i = Interp::new(&b.program(scale).unwrap());
            i.run(100_000_000).unwrap();
            i.icount()
        };
        let (c1, c3) = (count(1), count(3));
        assert!(
            c3 > c1 + b.instrs_per_scale as u64 / 2,
            "{}: scaling barely changes work ({c1} -> {c3})",
            b.name
        );
    }
}
