//! The benchmark suite: Table 1 of the paper, as runnable programs.

use crate::kernels;
use tracefill_isa::asm::{assemble, AsmError};
use tracefill_isa::Program;

/// Table 2 of the paper: percentage of correct-path instructions each
/// transformation was applied to, per benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Register moves (%).
    pub moves: f64,
    /// Reassociation (%).
    pub reassoc: f64,
    /// Scaled adds (%).
    pub scadd: f64,
    /// Total (%).
    pub total: f64,
}

/// One benchmark of the suite.
#[derive(Clone)]
pub struct Benchmark {
    /// Short name used in the paper's figures (e.g. `"m88k"`).
    pub name: &'static str,
    /// Full benchmark name (Table 1).
    pub full_name: &'static str,
    /// What the original program does and what the kernel mimics.
    pub description: &'static str,
    /// Input set quoted in Table 1 (documentation only).
    pub paper_input: &'static str,
    /// Instructions simulated in the paper (Table 1, documentation only).
    pub paper_icount: &'static str,
    /// The paper's Table 2 row for this benchmark.
    pub table2: Table2Row,
    /// Rough dynamic instructions per unit of `scale` (for sizing runs).
    pub instrs_per_scale: u32,
    source_fn: fn(u32) -> String,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("full_name", &self.full_name)
            .finish_non_exhaustive()
    }
}

impl Benchmark {
    /// The kernel's assembly source at the given scale (outer iterations).
    pub fn source(&self, scale: u32) -> String {
        (self.source_fn)(scale)
    }

    /// Assembles the kernel at the given scale.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (which would be a bug in the kernel).
    pub fn program(&self, scale: u32) -> Result<Program, AsmError> {
        assemble(&self.source(scale))
    }

    /// A scale that comfortably exceeds `instrs` dynamic instructions, for
    /// harnesses that stop on an instruction budget.
    pub fn scale_for(&self, instrs: u64) -> u32 {
        let per = self.instrs_per_scale.max(1) as u64;
        (instrs / per + 2).min(u32::MAX as u64) as u32 * 2
    }
}

/// The full 15-benchmark suite, in the paper's Table 1/figure order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "comp",
            full_name: "compress",
            description: "LZW-style hashing over a byte stream",
            paper_input: "modified test.in (30000 elements)",
            paper_icount: "95M",
            table2: Table2Row {
                moves: 3.0,
                reassoc: 1.5,
                scadd: 3.8,
                total: 8.3,
            },
            instrs_per_scale: 16_500,
            source_fn: kernels::compress::source,
        },
        Benchmark {
            name: "gcc",
            full_name: "gcc",
            description: "symbol-table / expression-tree manipulation",
            paper_input: "jump.i",
            paper_icount: "157M",
            table2: Table2Row {
                moves: 6.4,
                reassoc: 2.2,
                scadd: 3.1,
                total: 11.7,
            },
            instrs_per_scale: 11900,
            source_fn: kernels::gcc::source,
        },
        Benchmark {
            name: "go",
            full_name: "go",
            description: "board-position evaluation on a 19x19 grid",
            paper_input: "2stone9.in",
            paper_icount: "151M",
            table2: Table2Row {
                moves: 2.5,
                reassoc: 0.7,
                scadd: 9.6,
                total: 12.8,
            },
            instrs_per_scale: 6600,
            source_fn: kernels::go::source,
        },
        Benchmark {
            name: "ijpeg",
            full_name: "ijpeg",
            description: "8x8 block transform and quantization",
            paper_input: "penguin.ppm",
            paper_icount: "500M",
            table2: Table2Row {
                moves: 4.6,
                reassoc: 2.1,
                scadd: 5.9,
                total: 12.6,
            },
            instrs_per_scale: 17100,
            source_fn: kernels::ijpeg::source,
        },
        Benchmark {
            name: "li",
            full_name: "li",
            description: "Lisp-style cons-cell list processing",
            paper_input: "train.lsp",
            paper_icount: "500M",
            table2: Table2Row {
                moves: 8.0,
                reassoc: 2.1,
                scadd: 1.3,
                total: 11.4,
            },
            instrs_per_scale: 2790,
            source_fn: kernels::li::source,
        },
        Benchmark {
            name: "m88k",
            full_name: "m88ksim",
            description: "instruction-set simulator of a toy ISA",
            paper_input: "dhry.test",
            paper_icount: "493M",
            table2: Table2Row {
                moves: 8.2,
                reassoc: 12.9,
                scadd: 1.2,
                total: 22.3,
            },
            instrs_per_scale: 1_600,
            source_fn: kernels::m88ksim::source,
        },
        Benchmark {
            name: "perl",
            full_name: "perl",
            description: "string hashing and associative-array probing",
            paper_input: "scrabbl.pl",
            paper_icount: "41M",
            table2: Table2Row {
                moves: 6.3,
                reassoc: 1.1,
                scadd: 3.3,
                total: 10.7,
            },
            instrs_per_scale: 1670,
            source_fn: kernels::perl::source,
        },
        Benchmark {
            name: "vor",
            full_name: "vortex",
            description: "object-database transaction processing",
            paper_input: "vortex.in",
            paper_icount: "214M",
            table2: Table2Row {
                moves: 9.4,
                reassoc: 3.9,
                scadd: 1.9,
                total: 15.2,
            },
            instrs_per_scale: 1_500,
            source_fn: kernels::vortex::source,
        },
        Benchmark {
            name: "ch",
            full_name: "gnuchess",
            description: "sliding-piece move generation (0x88 board)",
            paper_input: "(common UNIX application)",
            paper_icount: "119M",
            table2: Table2Row {
                moves: 3.4,
                reassoc: 10.4,
                scadd: 5.7,
                total: 19.5,
            },
            instrs_per_scale: 4_200,
            source_fn: kernels::chess::source,
        },
        Benchmark {
            name: "gs",
            full_name: "ghostscript",
            description: "fixed-point line rasterization",
            paper_input: "(common UNIX application)",
            paper_icount: "180M",
            table2: Table2Row {
                moves: 4.6,
                reassoc: 7.9,
                scadd: 1.9,
                total: 14.4,
            },
            instrs_per_scale: 10_000,
            source_fn: kernels::ghostscript::source,
        },
        Benchmark {
            name: "pgp",
            full_name: "pgp",
            description: "multi-precision (bignum) multiplication",
            paper_input: "(common UNIX application)",
            paper_icount: "322M",
            table2: Table2Row {
                moves: 7.9,
                reassoc: 4.0,
                scadd: 1.0,
                total: 12.9,
            },
            instrs_per_scale: 870,
            source_fn: kernels::pgp::source,
        },
        Benchmark {
            name: "plot",
            full_name: "gnuplot",
            description: "coordinate-transform and clipping pipeline",
            paper_input: "(common UNIX application)",
            paper_icount: "284M",
            table2: Table2Row {
                moves: 11.3,
                reassoc: 1.4,
                scadd: 2.3,
                total: 15.0,
            },
            instrs_per_scale: 2_300,
            source_fn: kernels::gnuplot::source,
        },
        Benchmark {
            name: "py",
            full_name: "python",
            description: "stack-based bytecode interpreter",
            paper_input: "(common UNIX application)",
            paper_icount: "220M",
            table2: Table2Row {
                moves: 6.3,
                reassoc: 2.8,
                scadd: 2.8,
                total: 11.9,
            },
            instrs_per_scale: 900,
            source_fn: kernels::python::source,
        },
        Benchmark {
            name: "ss",
            full_name: "sim-outorder",
            description: "event-driven simulator (queues, bit fields)",
            paper_input: "(common UNIX application)",
            paper_icount: "100M",
            table2: Table2Row {
                moves: 4.9,
                reassoc: 1.1,
                scadd: 3.1,
                total: 9.1,
            },
            instrs_per_scale: 1450,
            source_fn: kernels::simoutorder::source,
        },
        Benchmark {
            name: "tex",
            full_name: "tex",
            description: "dynamic-programming paragraph line breaking",
            paper_input: "(common UNIX application)",
            paper_icount: "164M",
            table2: Table2Row {
                moves: 3.1,
                reassoc: 0.6,
                scadd: 5.2,
                total: 8.9,
            },
            instrs_per_scale: 3260,
            source_fn: kernels::tex::source,
        },
    ]
}

/// Looks a benchmark up by its short or full name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite()
        .into_iter()
        .find(|b| b.name == name || b.full_name == name)
}

/// The suite's short names, in Table 1 / figure order. This is the
/// canonical enumeration campaign harnesses expand `"all"` against and the
/// order report tables sort their rows by.
#[must_use]
pub fn names() -> Vec<&'static str> {
    suite().iter().map(|b| b.name).collect()
}

/// Resolves a benchmark *selection spec* into concrete short names.
///
/// `"all"` expands to the full suite; anything else must match a short or
/// full benchmark name (full names are canonicalized to short ones).
///
/// # Errors
///
/// An explanatory message naming the offending token and listing the
/// available benchmarks.
pub fn select(specs: &[impl AsRef<str>]) -> Result<Vec<&'static str>, String> {
    let mut out = Vec::new();
    for spec in specs {
        let spec = spec.as_ref();
        if spec == "all" {
            out.extend(names());
        } else if let Some(b) = suite()
            .iter()
            .find(|b| b.name == spec || b.full_name == spec)
        {
            out.push(b.name);
        } else {
            return Err(format!(
                "unknown benchmark `{spec}` (expected `all` or one of: {})",
                names().join(", ")
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_rows_like_table_1() {
        assert_eq!(suite().len(), 15);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for b in suite() {
            assert!(seen.insert(b.name), "duplicate {}", b.name);
        }
    }

    #[test]
    fn every_kernel_assembles() {
        for b in suite() {
            b.program(2)
                .unwrap_or_else(|e| panic!("{} fails to assemble: {e}", b.name));
        }
    }

    #[test]
    fn lookup_by_either_name() {
        assert!(by_name("m88k").is_some());
        assert!(by_name("m88ksim").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn names_match_suite_order() {
        let n = names();
        assert_eq!(n.len(), 15);
        assert_eq!(n[0], "comp");
        assert_eq!(n[14], "tex");
    }

    #[test]
    fn select_expands_all_and_canonicalizes() {
        assert_eq!(select(&["all"]).unwrap().len(), 15);
        assert_eq!(select(&["m88ksim"]).unwrap(), ["m88k"]);
        assert!(select(&["nonesuch"]).unwrap_err().contains("nonesuch"));
    }

    #[test]
    fn table2_totals_are_consistent() {
        for b in suite() {
            let t = b.table2;
            let sum = t.moves + t.reassoc + t.scadd;
            assert!(
                (sum - t.total).abs() < 0.35,
                "{}: {} + {} + {} != {}",
                b.name,
                t.moves,
                t.reassoc,
                t.scadd,
                t.total
            );
        }
    }
}
