//! # tracefill-workloads
//!
//! The paper's 15-benchmark suite (SPECint95 plus common UNIX
//! applications, Table 1) reproduced as hand-written SSA assembly kernels,
//! plus tooling:
//!
//! * [`mod@suite`] — the benchmarks, each annotated with the paper's Table 2
//!   transformation densities it targets;
//! * [`kernels`] — the kernels themselves, one module per benchmark;
//! * [`mod@characterize`] — measures *realized* transformation densities by
//!   feeding a functional run's retire stream through the real fill unit;
//! * [`gen`] — a parameterized pattern-mix generator for ablations.
//!
//! We cannot run 100M–500M-instruction SPEC binaries, so each kernel is a
//! small program presenting the same *pattern densities* that drive the
//! paper's effects: register-move idioms, cross-block immediate chains,
//! shift+add address arithmetic, and branch-bias structure. See DESIGN.md
//! at the workspace root for the substitution argument.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod characterize;
pub mod gen;
pub mod kernels;
pub mod suite;

pub use characterize::{characterize, Characteristics};
pub use suite::{by_name, names, select, suite, Benchmark, Table2Row};
