//! Parameterized pattern-mix program generator.
//!
//! Complements the hand-written kernels: generates a loop whose body is a
//! seeded random mix of pattern blocks, each exercising one fill-unit
//! optimization. Used by ablation benches and tests that need controlled
//! densities rather than realistic programs.

use tracefill_isa::asm::{assemble, AsmError};
use tracefill_isa::Program;
use tracefill_util::SplitMix64;

/// Relative weights of the pattern blocks in the generated loop body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Register-move idiom blocks.
    pub moves: u32,
    /// Cross-block immediate-chain (reassociation) blocks.
    pub imm_chains: u32,
    /// Shift+add (scaled-add) address blocks.
    pub shift_adds: u32,
    /// Plain ALU blocks.
    pub alu: u32,
    /// Load/store blocks.
    pub memory: u32,
}

impl Default for PatternMix {
    /// A mix resembling a mid-suite integer benchmark.
    fn default() -> PatternMix {
        PatternMix {
            moves: 2,
            imm_chains: 2,
            shift_adds: 2,
            alu: 6,
            memory: 3,
        }
    }
}

/// Generates a program of roughly `blocks` pattern blocks per iteration,
/// looping `scale` times, deterministically from `seed`.
///
/// # Errors
///
/// Never in practice; the generator emits valid assembly (the error is
/// propagated so tests can show context if a template regresses).
pub fn generate(
    mix: &PatternMix,
    blocks: usize,
    scale: u32,
    seed: u64,
) -> Result<Program, AsmError> {
    let mut rng = SplitMix64::new(seed);
    let total = mix.moves + mix.imm_chains + mix.shift_adds + mix.alu + mix.memory;
    assert!(total > 0, "empty pattern mix");

    let mut body = String::new();
    for b in 0..blocks {
        let mut pick = rng.range_u32(0, total);
        // Temp registers rotate so blocks interleave without false deps.
        let r1 = 8 + (b % 6) as u32; // $t0..$t5
        let r2 = 8 + ((b + 3) % 6) as u32;
        if pick < mix.moves {
            body.push_str(&format!(
                "        move ${r1}, $s3\n        add  $s3, $s3, ${r1}\n"
            ));
            continue;
        }
        pick -= mix.moves;
        if pick < mix.imm_chains {
            let c1 = rng.range_u32(1, 16);
            let c2 = rng.range_u32(1, 16);
            body.push_str(&format!(
                r#"        addi ${r1}, $s3, {c1}
        bltz $s4, skip{b}        # never taken: creates the block boundary
skip{b}: addi ${r2}, ${r1}, {c2}
        add  $s3, $s3, ${r2}
"#
            ));
            continue;
        }
        pick -= mix.imm_chains;
        if pick < mix.shift_adds {
            let sh = rng.range_u32(1, 4);
            body.push_str(&format!(
                r#"        andi ${r1}, $s3, 63
        sll  ${r2}, ${r1}, {sh}
        add  ${r1}, $s0, ${r2}
        lw   ${r2}, 0(${r1})
        add  $s3, $s3, ${r2}
"#
            ));
            continue;
        }
        pick -= mix.shift_adds;
        if pick < mix.alu {
            let c = rng.range_u32(1, 64);
            body.push_str(&format!(
                "        xor  ${r1}, $s3, $s5\n        addi $s5, $s5, {c}\n        add  $s3, $s3, ${r1}\n"
            ));
            continue;
        }
        // memory block
        body.push_str(&format!(
            r#"        andi ${r1}, $s5, 60
        add  ${r2}, $s0, ${r1}
        sw   $s3, 0(${r2})
        lw   ${r1}, 0(${r2})
        add  $s3, $s3, ${r1}
"#
        ));
    }

    let src = format!(
        r#"
        .text
main:   li   $s7, {scale}
        la   $s0, gdata
        li   $s3, 1
        li   $s4, 1              # always positive: bltz never taken
        li   $s5, 0
gloop:
{body}
        addi $s7, $s7, -1
        bgtz $s7, gloop
        move $a0, $s3
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
        .data
gdata:  .space 512
"#
    );
    assemble(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;

    #[test]
    fn generated_programs_run_and_are_deterministic() {
        let p1 = generate(&PatternMix::default(), 24, 50, 7).unwrap();
        let p2 = generate(&PatternMix::default(), 24, 50, 7).unwrap();
        assert_eq!(p1, p2, "same seed must generate identical programs");
        let mut i = tracefill_isa::interp::Interp::new(&p1);
        i.run(10_000_000).unwrap();
    }

    #[test]
    fn mix_weights_steer_densities() {
        let heavy_moves = PatternMix {
            moves: 10,
            imm_chains: 0,
            shift_adds: 0,
            alu: 2,
            memory: 1,
        };
        let heavy_scadd = PatternMix {
            moves: 0,
            imm_chains: 0,
            shift_adds: 10,
            alu: 2,
            memory: 1,
        };
        let pm = generate(&heavy_moves, 24, 200, 1).unwrap();
        let ps = generate(&heavy_scadd, 24, 200, 1).unwrap();
        let cm = characterize(&pm, 40_000);
        let cs = characterize(&ps, 40_000);
        assert!(cm.moves > cs.moves);
        assert!(cs.scadd > cm.scadd);
        assert!(cm.moves > 0.05);
        assert!(cs.scadd > 0.05);
    }
}
