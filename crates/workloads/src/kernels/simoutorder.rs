//! `sim-outorder` — an event-driven simulator simulating itself.
//!
//! Dominant patterns: circular event-queue management (head/tail index
//! arithmetic with masking), bit-field extraction of packed event words,
//! and ready-list scans. Table 2 targets: ≈4.9% moves, ≈1.1%
//! reassociable, ≈3.1% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` rounds of enqueue/drain over a 64-entry
/// circular event queue.
pub fn source(scale: u32) -> String {
    let init = init_data("evsrc", 64, 0x55a0);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, evq            # circular queue, 64 words
        la   $s1, evsrc          # event source data
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # head
        li   $s4, 0              # tail
        li   $s5, 0              # simulated clock
        # enqueue 48 events: word = (latency << 8) | kind
        li   $t0, 0
enq:    sll  $t1, $t0, 2
        lwx  $t2, $s1, $t1       # raw source word
        andi $t3, $t2, 7         # kind
        srl  $t4, $t2, 3
        andi $t4, $t4, 63        # latency
        sll  $t5, $t4, 8
        or   $t5, $t5, $t3
        sll  $t7, $s4, 2
        andi $t7, $t7, 255       # wrap: the mask sits between the shift
        add  $t8, $s0, $t7       # and the add, so no scaled add forms
        sw   $t5, 0($t8)
        addi $s4, $s4, 1
        addi $t0, $t0, 1
        slti $t9, $t0, 48
        bnez $t9, enq
        # drain: pop each event, advance the clock, tally by kind
drain:  beq  $s3, $s4, drained
        sll  $t1, $s3, 2
        andi $t1, $t1, 255       # wrap
        add  $t2, $s0, $t1       # head slot
        lw   $t3, 0($t2)
        addi $s3, $s3, 1
        srl  $t4, $t3, 8         # latency
        andi $t5, $t3, 255      # kind
        add  $s5, $s5, $t4       # clock += latency
        move $t6, $t5            # kind copy (move idiom)
        beqz $t6, evnop
        andi $t7, $t6, 1
        beqz $t7, eveven
        add  $s2, $s2, $t4       # odd kinds bill their latency
        j    evnop
eveven: addi $s2, $s2, 2
evnop:  j    drain
drained:
        add  $s2, $s2, $s5
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
evq:    .space 256
evsrc:  .space 256
"#
    )
}
