//! `ijpeg` — 8×8 block transform and quantization over an image.
//!
//! Dominant patterns: two-level nested loops over 8×8 blocks with
//! `row*8+col` addressing, butterfly add/sub chains, and multiply-based
//! quantization. Table 2 targets: ≈4.6% moves, ≈2.1% reassociable, ≈5.9%
//! scaled adds. The paper reports ijpeg as the biggest winner from
//! instruction placement (+11%): the butterfly chains are long and
//! parallel, exactly what clustering helps.

use super::{init_data, EPILOGUE};

/// Generates the kernel with `scale` image passes (16 blocks each).
pub fn source(scale: u32) -> String {
    let init = init_data("image", 1024, 0x1fe6);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, image
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # block index (16 blocks)
block:  sll  $t0, $s3, 8         # block base = block * 64 words * 4
        add  $s4, $s0, $t0       # block pointer
        # Row-wise butterfly: a' = a+b, b' = a-b over pairs.
        li   $s5, 0              # row
row:    sll  $t1, $s5, 5         # row * 8 words * 4
        add  $t2, $s4, $t1       # row pointer (shift+add)
        lw   $t3, 0($t2)
        lw   $t4, 4($t2)
        lw   $t5, 8($t2)
        lw   $t6, 12($t2)
        add  $t7, $t3, $t4       # butterflies
        sub  $t8, $t3, $t4
        add  $t9, $t5, $t6
        sub  $t3, $t5, $t6
        add  $t4, $t7, $t9
        sub  $t5, $t7, $t9
        add  $t6, $t8, $t3
        sub  $t7, $t8, $t3
        sw   $t4, 0($t2)
        sw   $t5, 4($t2)
        sw   $t6, 8($t2)
        sw   $t7, 12($t2)
        lw   $t3, 16($t2)
        lw   $t4, 20($t2)
        lw   $t5, 24($t2)
        lw   $t6, 28($t2)
        add  $t7, $t3, $t4
        sub  $t8, $t3, $t4
        add  $t9, $t5, $t6
        sub  $t3, $t5, $t6
        add  $t4, $t7, $t9
        sub  $t5, $t7, $t9
        add  $t6, $t8, $t3
        sub  $t7, $t8, $t3
        sw   $t4, 16($t2)
        sw   $t5, 20($t2)
        sw   $t6, 24($t2)
        sw   $t7, 28($t2)
        addi $s5, $s5, 1
        slti $t8, $s5, 8
        bnez $t8, row
        # Quantize the block and accumulate energy.
        li   $s5, 0
quant:  sll  $t1, $s5, 2
        add  $t2, $s4, $t1       # element address (shift+add)
        lw   $t3, 0($t2)
        move $t9, $t3            # coefficient staging (move idiom)
        sra  $t4, $t9, 3         # cheap quantization
        mul  $t5, $t4, $t4
        srl  $t6, $t5, 8
        add  $s2, $s2, $t6
        sw   $t4, 0($t2)
        addi $s5, $s5, 1
        slti $t7, $s5, 64
        bnez $t7, quant
        addi $s3, $s3, 1
        slti $t0, $s3, 16
        bnez $t0, block
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
image:  .space 4096
"#
    )
}
