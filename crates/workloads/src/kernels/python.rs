//! `python` — a stack-based bytecode interpreter.
//!
//! Dominant patterns: opcode dispatch through a jump table (`jr` through
//! `lwx`), an evaluation stack in memory with ±4 pointer bumps around
//! every handler (cross-block immediate chains), and top-of-stack caching
//! moves. Table 2 targets: ≈6.3% moves, ≈2.8% reassociable, ≈2.8% scaled
//! adds.

use super::EPILOGUE;

/// Generates the kernel: `scale` executions of a 96-op bytecode program.
pub fn source(scale: u32) -> String {
    format!(
        r#"
        .text
main:   li   $s7, {scale}
        # Lay down threaded bytecode: ops cycle PUSH,PUSH2,ADD,DUP,XOR,
        # POPACC, stored premultiplied by 4 (threaded-code style).
        la   $t0, bcode
        li   $t1, 0
lay:    li   $t6, 6
        div  $t2, $t1, $t6
        mul  $t3, $t2, $t6
        sub  $t4, $t1, $t3       # t1 % 6
        sll  $t4, $t4, 2         # premultiplied handler offset
        sw   $t4, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        slti $t5, $t1, 96
        bnez $t5, lay

        li   $s2, 0              # checksum (accumulator)
outer:  la   $s0, bcode
        la   $s6, masks
        la   $s1, vstack
        addi $s1, $s1, 128       # stack pointer (grows down)
        la   $s4, handlers
        li   $s3, 0              # bytecode pc (byte offset)
        li   $s5, 1              # operand seed
dispatch:
        add  $t0, $s0, $s3
        lw   $t1, 0($t0)         # premultiplied opcode
        addi $s3, $s3, 4         # bytecode pc bump (chains across the
                                 # fast-path branch below)
        bnez $t1, slow           # inlined fast path for the hot opcode,
                                 # as real interpreter loops have
        addi $s5, $s5, 3         # PUSH inline: next operand
        move $t8, $s5            # operand staging (move idiom)
        addi $s1, $s1, -4        # push
        sw   $t8, 0($s1)
        j    next
slow:   lwx  $t3, $s4, $t1       # handler address (no shift needed)
        jr   $t3                 # indirect dispatch

hpush:  addi $s5, $s5, 3         # (unreachable via fast path, kept for
        move $t8, $s5            # table completeness)
        addi $s1, $s1, -4
        sw   $t8, 0($s1)
        j    next
hpush2: addi $s5, $s5, 5
        move $t8, $s5
        addi $s1, $s1, -4
        sw   $t8, 0($s1)
        j    next
hadd:   lw   $t4, 0($s1)         # pop two, push sum
        lw   $t5, 4($s1)
        addi $s1, $s1, 4
        add  $t6, $t4, $t5
        sw   $t6, 0($s1)
        j    next
hdup:   lw   $t4, 0($s1)         # duplicate TOS
        move $t5, $t4            # TOS cache (move idiom)
        addi $s1, $s1, -4
        sw   $t5, 0($s1)
        j    next
hxor:   lw   $t4, 0($s1)
        lw   $t5, 4($s1)
        addi $s1, $s1, 4
        xor  $t6, $t4, $t5
        andi $t7, $t6, 7
        sll  $t7, $t7, 2
        add  $t8, $s6, $t7       # mask table (shift+add)
        lw   $t9, 0($t8)
        xor  $t6, $t6, $t9
        sw   $t6, 0($s1)
        j    next
hpop:   lw   $t4, 0($s1)         # pop into the accumulator
        move $t5, $t4            # accumulator staging (move idiom)
        addi $s1, $s1, 4
        add  $s2, $s2, $t5
next:   slti $t7, $s3, 384       # 96 ops * 4
        bnez $t7, dispatch
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
masks:  .word 0x5a, 0xa5, 0x3c, 0xc3, 0x0f, 0xf0, 0x55, 0xaa
handlers:
        .word hpush, hpush2, hadd, hdup, hxor, hpop
bcode:  .space 384
vstack: .space 160
"#
    )
}
