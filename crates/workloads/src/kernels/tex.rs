//! `tex` — dynamic-programming paragraph line breaking.
//!
//! Dominant patterns: a triangular nested loop over break candidates with
//! two-level array indexing (costs and widths, shift+add addressing) and
//! a running-minimum compare chain. Table 2 targets: ≈3.1% moves, ≈0.6%
//! reassociable (the suite minimum), ≈5.2% scaled adds — and the paper
//! reports tex as scaled adds' biggest winner (+8%).

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` paragraphs of 48 boxes each.
pub fn source(scale: u32) -> String {
    let init = init_data("widths", 48, 0x7e80);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        # Clamp box widths to 1..=16.
        la   $t0, widths
        li   $t1, 48
clamp:  lw   $t2, 0($t0)
        andi $t2, $t2, 15
        addi $t2, $t2, 1
        sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bgtz $t1, clamp

        la   $s0, widths
        la   $s1, cost           # cost[i]: best cost ending line at box i
        li   $s2, 0              # checksum
outer:  sw   $zero, 0($s1)       # cost[0] = 0
        li   $s3, 1              # i: current box
iloop:  li   $s4, 0x7fff         # best = inf
        move $s5, $s3            # j walks back from i (move idiom)
        li   $s6, 0              # line width accumulator
jloop:  addi $s5, $s5, -1        # previous break candidate
        sll  $t0, $s5, 2
        lwx  $t1, $s0, $t0       # widths[j] (indexed, scaled upstream)
        add  $s6, $s6, $t1
        slti $t2, $s6, 33        # line width limit 32
        beqz $t2, jdone          # overfull: stop widening
        # badness = (32 - width)^2 + cost[j]
        li   $t3, 32
        sub  $t4, $t3, $s6
        mul  $t5, $t4, $t4
        sll  $t6, $s5, 2
        add  $t7, $s1, $t6       # &cost[j] (shift+add)
        lw   $t8, 0($t7)
        add  $t9, $t5, $t8
        slt  $t0, $t9, $s4
        beqz $t0, jnext
        move $s4, $t9            # new minimum (move idiom)
jnext:  bgtz $s5, jloop
jdone:  sll  $t1, $s3, 2
        add  $t2, $s1, $t1       # &cost[i] (shift+add)
        sw   $s4, 0($t2)
        add  $s2, $s2, $s4
        addi $s3, $s3, 1
        slti $t3, $s3, 48
        bnez $t3, iloop
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
widths: .space 192
cost:   .space 192
"#
    )
}
