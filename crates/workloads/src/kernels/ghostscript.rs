//! `ghostscript` — fixed-point line rasterization (Bresenham-style).
//!
//! Dominant pattern: error-accumulator updates with small constants on
//! both sides of the step-direction branch (a natural cross-block
//! reassociation source), plus framebuffer stores through computed
//! addresses. Table 2 targets: ≈4.6% moves, ≈7.9% reassociable, ≈1.9%
//! scaled adds.

use super::EPILOGUE;

/// Generates the kernel: `scale` batches of 32 rasterized lines.
pub fn source(scale: u32) -> String {
    format!(
        r#"
        .text
main:   li   $s7, {scale}
        la   $s0, fb             # framebuffer: 64x32 bytes
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # line index
line:   # fixed 2:1-slope segments (dx=32, dy=13), as a clipped path
        # renderer emits: the error updates are compile-time constants
        andi $t0, $s3, 15
        move $s4, $t0            # x = start column (move idiom)
        andi $t1, $s3, 7
        move $s5, $t1            # y = start row (move idiom)
        li   $s6, -6             # err = 2*dy - dx = 26 - 32
        li   $a0, 32             # steps
step:   # plot(x, y): fb[y*64 + x] += 1
        sll  $t3, $s5, 6
        add  $t4, $t3, $s4
        add  $t5, $s0, $t4
        lbu  $t6, 0($t5)
        addi $t6, $t6, 1
        sb   $t6, 0($t5)
        add  $s2, $s2, $t6
        bltz $s6, east
        # north-east step: y += 1, err += 2*(dy - dx) = -38
        addi $s5, $s5, 1
        addi $s6, $s6, -38       # constant err update (chains across
        j    estep               # the step branch: reassociable)
east:   move $t8, $t6            # pixel staging (move idiom, off the
        add  $s2, $s2, $t8       # critical error chain)
        addi $s6, $s6, 26        # err += 2*dy (constant chain)
estep:  addi $s4, $s4, 1         # x += 1 (chain across the branch)
        addi $a0, $a0, -1
        bgtz $a0, step
        addi $s3, $s3, 1
        slti $t9, $s3, 32
        bnez $t9, line
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
fb:     .space 4096
"#
    )
}
