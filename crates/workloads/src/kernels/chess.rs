//! `gnuchess` — sliding-piece move generation on a 0x88-style board.
//!
//! Dominant pattern: ray scans that repeatedly bump a square index by a
//! *constant* direction (`addi sq, sq, 16` and friends) with a
//! bounds/occupancy branch between every bump — exactly the cross-block
//! immediate chain reassociation collapses. Table 2 targets: ≈3.4% moves,
//! ≈10.4% reassociable (second only to m88ksim; the paper reports chess
//! +23% from reassociation alone), ≈5.7% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel with `scale` full move-generation sweeps.
///
/// The four rook directions are unrolled so each ray loop bumps the
/// square with a constant immediate, as compiled chess programs do.
pub fn source(scale: u32) -> String {
    let init = init_data("cboard", 32, 0xc4e5);
    // One ray loop per direction: sq += <imm> until off-board/occupied.
    let mut rays = String::new();
    for (tag, imm) in [("e", 1), ("w", -1), ("n", 16), ("s", -16)] {
        rays.push_str(&format!(
            r#"
        # --- ray {tag}: step {imm} ---
        move $s5, $s3            # ray cursor = sq (move idiom)
ray{tag}:  addi $s5, $s5, {imm}     # constant bump (reassociation chain)
        andi $t6, $s5, 0x88
        bnez $t6, end{tag}          # fell off the board
        add  $t8, $s0, $s5       # &board[cursor] (byte board)
        lbu  $t9, 0($t8)
        bnez $t9, cap{tag}
        addi $s2, $s2, 1         # quiet move
        j    ray{tag}
cap{tag}:  add  $s2, $s2, $t9       # capture scores by piece value
end{tag}:
"#
        ));
    }
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        # Sparsify the board (1 stone in ~16) and build the piece list,
        # as real move generators do.
        la   $t0, cboard
        la   $a2, plist
        li   $a3, 0              # piece count
        li   $t1, 0              # square
sparse: andi $t4, $t1, 0x88
        bnez $t4, clear          # off-board squares stay empty
        add  $t6, $t0, $t1       # byte board
        lbu  $t2, 0($t6)
        andi $t3, $t2, 15
        bnez $t3, clearw
        andi $t2, $t2, 3
        addi $t2, $t2, 1
        sb   $t2, 0($t6)
        sw   $t1, 0($a2)         # append to the piece list
        addi $a2, $a2, 4
        addi $a3, $a3, 1
        j    snext
clearw: sb   $zero, 0($t6)
clear:
snext:  addi $t1, $t1, 1
        slti $t7, $t1, 128
        bnez $t7, sparse

        la   $s0, cboard
        la   $s1, plist
        li   $s2, 0              # move count / checksum
outer:  li   $a1, 0              # piece-list index
sq:     sll  $t1, $a1, 2
        lwx  $s3, $s1, $t1       # square of this piece
{rays}
        addi $a1, $a1, 1
        slt  $t0, $a1, $a3
        bnez $t0, sq
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
cboard: .space 128
plist:  .space 128
"#
    )
}
