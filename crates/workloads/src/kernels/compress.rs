//! `compress` — LZW-style hashing over a byte stream.
//!
//! Dominant patterns: table hashing (shift/xor chains), hash-table probes
//! through scaled indices, and data-dependent hit/miss branches. Table 2
//! targets: ≈3% moves, ≈1.5% reassociable, ≈3.8% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel with `scale` outer passes over the input block.
pub fn source(scale: u32) -> String {
    let init = init_data("cinput", 256, 0x5ee1);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, cinput
        la   $s1, ctable
        li   $s2, 0              # checksum
        li   $s6, 0              # next code
outer:  li   $s4, 0              # byte position
        li   $s3, 0              # hash state
inner:  add  $t0, $s0, $s4
        lbu  $t1, 0($t0)         # next input byte
        sll  $t2, $s3, 4
        xor  $t2, $t2, $t1
        andi $s3, $t2, 1023      # hash
        sll  $t3, $s3, 2
        add  $t4, $s1, $t3       # bucket address (shift+add)
        lw   $t5, 0($t4)
        beq  $t5, $t1, hit
        # miss: install the symbol and emit a literal code
        sw   $t1, 0($t4)
        addi $s6, $s6, 1
        add  $s2, $s2, $t1
        j    cont
hit:    # hit: extend the phrase, emit nothing
        move $t6, $s3            # remember matched hash (move idiom)
        add  $s2, $s2, $t6
cont:   addi $s4, $s4, 1
        slti $t7, $s4, 1024
        bnez $t7, inner
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
cinput: .space 1024
ctable: .space 4096
"#
    )
}
