//! `gcc` — symbol-table and expression-tree manipulation.
//!
//! Dominant patterns: pointer-chasing binary-tree walks with highly
//! irregular compare branches, helper calls with argument moves, and
//! field accesses at small displacements. Table 2 targets: ≈6.4% moves,
//! ≈2.2% reassociable, ≈3.1% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel with `scale` passes of tree building + walking.
///
/// Tree nodes are 16-byte records: `key, left, right, flags`.
pub fn source(scale: u32) -> String {
    let init = init_data("gkeys", 128, 0x6cc1);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        li   $s2, 0              # checksum
outer:
        la   $s5, gseen
        # (Re)build a binary search tree from the key block.
        la   $s0, gnodes
        sw   $zero, 0($s0)       # root key
        sw   $zero, 4($s0)
        sw   $zero, 8($s0)
        sw   $zero, 12($s0)
        addi $s1, $s0, 16        # next free node
        la   $s3, gkeys
        addi $s3, $s3, 4         # key cursor
        li   $s4, 1              # keys inserted
insert: lw   $a0, 0($s3)         # key to insert
        addi $s3, $s3, 4         # cursor walk (immediate chain)
        andi $a0, $a0, 4095
        andi $t4, $a0, 63        # bloom-style seen filter
        sll  $t5, $t4, 2
        add  $t6, $s5, $t5       # filter slot (shift+add)
        lw   $t7, 0($t6)
        addi $t7, $t7, 1
        sw   $t7, 0($t6)
        move $a1, $s0            # root (argument move)
        jal  tins
        add  $s2, $s2, $v0
        addi $s4, $s4, 1
        slti $t2, $s4, 96
        bnez $t2, insert

        # Walk: count nodes with keys below a moving threshold.
        li   $s4, 0
walk:   sll  $t0, $s4, 5
        andi $a0, $t0, 4095      # threshold
        move $a1, $s0
        jal  tcount
        add  $s2, $s2, $v0
        addi $s4, $s4, 1
        slti $t2, $s4, 32
        bnez $t2, walk

        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}

# tins(key=$a0, node=$a1): BST insert; returns depth in $v0.
tins:   li   $v0, 0
tloop:  lw   $t0, 0($a1)         # node key
        addi $v0, $v0, 1
        slti $t9, $v0, 12        # depth cap keeps the tree bounded
        beqz $t9, tdone
        beq  $t0, $a0, tdone
        slt  $t1, $a0, $t0
        beqz $t1, tright
        lw   $t2, 4($a1)         # left child
        beqz $t2, tnewl
        move $a1, $t2
        j    tloop
tright: lw   $t2, 8($a1)         # right child
        beqz $t2, tnewr
        move $a1, $t2
        j    tloop
tnewl:  move $t3, $s1            # allocate (move idiom)
        sw   $a0, 0($t3)
        sw   $zero, 4($t3)
        sw   $zero, 8($t3)
        sw   $v0, 12($t3)
        sw   $t3, 4($a1)
        addi $s1, $s1, 16
        j    tdone
tnewr:  move $t3, $s1
        sw   $a0, 0($t3)
        sw   $zero, 4($t3)
        sw   $zero, 8($t3)
        sw   $v0, 12($t3)
        sw   $t3, 8($a1)
        addi $s1, $s1, 16
tdone:  jr   $ra

# tcount(limit=$a0, node=$a1): iterative leftmost-path scan.
tcount: li   $v0, 0
cloop:  beqz $a1, cdone
        lw   $t0, 0($a1)
        slt  $t1, $t0, $a0
        beqz $t1, cskip
        addi $v0, $v0, 1
cskip:  lw   $t2, 4($a1)
        beqz $t2, cright
        move $a1, $t2
        j    cloop
cright: lw   $a1, 8($a1)
        j    cloop
cdone:  jr   $ra

        .data
gkeys:  .space 512
gseen:  .space 256
gnodes: .space 32768
"#
    )
}
