//! `pgp` — multi-precision (bignum) arithmetic.
//!
//! Dominant patterns: schoolbook multiply inner loops built from
//! `mul`/`mulh` pairs with carry propagation through register copies,
//! plus modular folding. Table 2 targets: ≈7.9% moves, ≈4.0%
//! reassociable, ≈1.0% scaled adds (the suite minimum — bignum loops walk
//! pointers instead of scaling indices).

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` rounds of an 8-limb × 8-limb multiply.
pub fn source(scale: u32) -> String {
    let init = init_data("biga", 16, 0x1234);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, biga           # a: 8 limbs (and b right after)
        addi $s1, $s0, 32        # b
        la   $s3, prod           # product: 16 limbs
        li   $s2, 0              # checksum
outer:  # clear the product (unrolled memset, as compilers emit)
        move $t1, $s3            # cursor (move idiom)
        sw   $zero, 0($t1)
        sw   $zero, 4($t1)
        sw   $zero, 8($t1)
        sw   $zero, 12($t1)
        sw   $zero, 16($t1)
        sw   $zero, 20($t1)
        sw   $zero, 24($t1)
        sw   $zero, 28($t1)
        sw   $zero, 32($t1)
        sw   $zero, 36($t1)
        sw   $zero, 40($t1)
        sw   $zero, 44($t1)
        sw   $zero, 48($t1)
        sw   $zero, 52($t1)
        sw   $zero, 56($t1)
        sw   $zero, 60($t1)
        # schoolbook multiply
        li   $s4, 0              # i
        move $a2, $s3            # row base of the product (move idiom)
iloop:  sll  $t0, $s4, 2
        lwx  $t1, $s0, $t0       # a[i]
        move $a3, $s1            # b cursor (move idiom)
        move $t8, $a2            # product cursor
        li   $s6, 0              # carry
        # fully unrolled 8-limb inner row (fixed-size bignum)
        lw   $t3, 0($a3)         # b[0]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 0($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 0($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 4($a3)         # b[1]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 4($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 4($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 8($a3)         # b[2]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 8($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 8($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 12($a3)         # b[3]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 12($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 12($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 16($a3)         # b[4]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 16($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 16($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 20($a3)         # b[5]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 20($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 20($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 24($a3)         # b[6]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 24($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 24($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        lw   $t3, 28($a3)         # b[7]
        mul  $t4, $t1, $t3
        mulh $t5, $t1, $t3
        lw   $t9, 28($t8)
        add  $t4, $t4, $t9
        sltu $t9, $t4, $t9
        add  $t4, $t4, $s6
        sw   $t4, 28($t8)
        move $t6, $t5            # carry (move idiom)
        add  $s6, $t6, $t9
        # flush the final carry into prod[i+8]
        lw   $t2, 32($t8)
        add  $t2, $t2, $s6
        sw   $t2, 32($t8)
        addi $a2, $a2, 4         # next product row base
        addi $s4, $s4, 1
        slti $t3, $s4, 8
        bnez $t3, iloop
        # fold the product into the checksum
        li   $t0, 0
fold:   sll  $t1, $t0, 2
        lwx  $t2, $s3, $t1
        xor  $s2, $s2, $t2
        addi $s2, $s2, 1
        addi $t0, $t0, 1
        slti $t3, $t0, 16
        bnez $t3, fold
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
biga:   .space 64
prod:   .space 64
"#
    )
}
