//! `li` — Lisp-interpreter-style cons-cell list processing.
//!
//! Dominant patterns: `car`/`cdr` pointer chasing through 8-byte cells,
//! list construction, and recursive helpers with argument-register moves
//! (xlisp passes everything in registers). Table 2 targets: ≈8.0% moves,
//! ≈2.1% reassociable, ≈1.3% scaled adds.

use super::EPILOGUE;

/// Generates the kernel with `scale` build/sum/filter rounds.
pub fn source(scale: u32) -> String {
    format!(
        r#"
        .text
main:   li   $s7, {scale}
        li   $s2, 0              # checksum
outer:  la   $s1, heap           # reset the cons heap
        # Build a 64-element list of small integers: (63 62 ... 0).
        li   $a0, 0              # value counter
        li   $a1, 0              # nil
        li   $s4, 32
build:  move $t0, $s1            # allocate two cells (move idiom)
        sw   $a0, 0($t0)         # car = value
        sw   $a1, 4($t0)         # cdr = rest
        addi $t2, $a0, 1
        sw   $t2, 8($t0)         # second cell, unrolled
        sw   $t0, 12($t0)        # its cdr is the first cell
        addi $a1, $t0, 8         # list = second cell
        addi $s1, $s1, 16
        addi $a0, $a0, 2
        addi $s4, $s4, -1
        bgtz $s4, build
        move $s3, $a1            # save list head

        # (sum list): iterative car/cdr walk.
        move $a0, $s3
        jal  lsum
        add  $s2, $s2, $v0

        # (mapcar (lambda (x) (* x 3)) list), destructive.
        move $a0, $s3
        jal  lscale
        # (count-if odd? list)
        move $a0, $s3
        jal  lodd
        add  $s2, $s2, $v0
        # a second analysis pass: sum, scale, sum
        move $a0, $s3
        jal  lsum
        add  $s2, $s2, $v0
        move $a0, $s3
        jal  lscale
        move $a0, $s3
        jal  lsum
        xor  $s2, $s2, $v0
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}

# lsum(list=$a0) -> $v0: sum of cars.
lsum:   li   $v0, 0
suml:   beqz $a0, sumd
        lw   $t0, 0($a0)         # car
        add  $v0, $v0, $t0
        lw   $a0, 4($a0)         # cdr
        j    suml
sumd:   jr   $ra

# lscale(list=$a0): car *= 3, in place.
lscale: beqz $a0, scaled
        lw   $t0, 0($a0)
        move $t1, $t0            # copy before scaling (move idiom)
        sll  $t2, $t1, 1
        add  $t3, $t2, $t0       # x*3 = (x<<1)+x
        sw   $t3, 0($a0)
        lw   $a0, 4($a0)
        j    lscale
scaled: jr   $ra

# lodd(list=$a0) -> $v0: count of odd cars.
lodd:   li   $v0, 0
oddl:   beqz $a0, oddd
        lw   $t0, 0($a0)
        andi $t1, $t0, 1
        beqz $t1, odde
        addi $v0, $v0, 1
odde:   lw   $a0, 4($a0)
        j    oddl
oddd:   jr   $ra

        .data
heap:   .space 1024
"#
    )
}
