//! `vortex` — object-database transaction processing.
//!
//! Dominant patterns: method calls through small helpers with heavy
//! argument-register shuffling (vortex is the suite's call-density
//! outlier), record copies field by field, and validation branches.
//! Table 2 targets: ≈9.4% moves (the SPEC-side maximum), ≈3.9%
//! reassociable, ≈1.9% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` transactions over a 32-record store.
///
/// Records are 24-byte objects: `id, kind, a, b, sum, flags`.
pub fn source(scale: u32) -> String {
    let init = init_data("vstore", 192, 0x0b7e);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        # Normalize record ids/kinds.
        la   $t0, vstore
        li   $t1, 0
norm:   sw   $t1, 0($t0)         # id = index
        lw   $t2, 4($t0)
        andi $t2, $t2, 3
        sw   $t2, 4($t0)         # kind in 0..4
        addi $t0, $t0, 24
        addi $t1, $t1, 1
        slti $t3, $t1, 32
        bnez $t3, norm

        la   $s0, vstore
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # record index
txn:    # locate the record
        move $a0, $s3            # argument moves, vortex-style
        jal  vfind
        move $a0, $v0            # record pointer becomes the argument
        move $a1, $s3
        jal  vupdate             # preserves $a0
        add  $s2, $s2, $v0
        # copy it into the shadow log every 4th transaction
        andi $t0, $s3, 3
        bnez $t0, skiplog
        jal  vlog                # $a0 still holds the record
skiplog:
        addi $s3, $s3, 1
        slti $t1, $s3, 32
        bnez $t1, txn
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}

# vfind(index=$a0) -> $v0: address of record `index`.
vfind:  sll  $t1, $a0, 4
        sll  $t2, $a0, 3
        add  $t3, $t1, $t2       # index * 24
        la   $t4, vstore
        add  $v0, $t4, $t3
        jr   $ra

# vupdate(rec=$a0, salt=$a1) -> $v0: recompute the record's sum field.
vupdate:lw   $t0, 8($a0)         # a
        lw   $t1, 12($a0)        # b
        add  $t2, $t0, $t1
        add  $t2, $t2, $a1
        sw   $t2, 16($a0)        # sum
        lw   $t3, 4($a0)         # kind
        beqz $t3, vplain
        ori  $t4, $t3, 8
        sw   $t4, 20($a0)        # flags
        move $v0, $t2            # return sum (move idiom)
        jr   $ra
vplain: sw   $zero, 20($a0)
        add  $v0, $t0, $zero     # return a (also a move idiom)
        jr   $ra

# vlog(rec=$a0): copy the 24-byte record into the log slot 0.
vlog:   la   $t9, vlogbuf
        lw   $t0, 0($a0)
        sw   $t0, 0($t9)
        lw   $t1, 4($a0)
        sw   $t1, 4($t9)
        lw   $t2, 8($a0)
        sw   $t2, 8($t9)
        lw   $t3, 12($a0)
        sw   $t3, 12($t9)
        lw   $t4, 16($a0)
        sw   $t4, 16($t9)
        lw   $t5, 20($a0)
        sw   $t5, 20($t9)
        jr   $ra

        .data
vstore: .space 768
vlogbuf:.space 32
"#
    )
}
