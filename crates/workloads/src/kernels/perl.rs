//! `perl` — string hashing and associative-array probing.
//!
//! Dominant patterns: byte-wise string hash loops (`lbu`, multiply, add),
//! open-addressed hash probes with wrap-around, and inner string-compare
//! loops with early-out branches. Table 2 targets: ≈6.3% moves, ≈1.1%
//! reassociable, ≈3.3% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` rounds of hashing 32 eight-byte "words"
/// into a 256-slot table.
pub fn source(scale: u32) -> String {
    let init = init_data("pstr", 64, 0x9e71);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, pstr           # 32 keys x 8 bytes
        la   $s1, ptab           # 256-slot table of key indices
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # key index
key:    sll  $t0, $s3, 3
        add  $s4, $s0, $t0       # key pointer (shift+add)
        # hash the 8 bytes, fully unrolled: h = h*31 + c
        lbu  $t2, 0($s4)
        move $s5, $t2            # h = c0 (move idiom)
        lbu  $t2, 1($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 2($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 3($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 4($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 5($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 6($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        lbu  $t2, 7($s4)
        sll  $t3, $s5, 5
        sub  $t3, $t3, $s5
        add  $s5, $t3, $t2
        # probe the table linearly from h & 63
        andi $s5, $s5, 63
probe:  sll  $t5, $s5, 2
        add  $t6, $s1, $t5       # slot address (shift+add)
        lw   $t7, 0($t6)
        beqz $t7, install
        # occupied: compare stored key index's first byte with ours
        addi $t8, $t7, -1        # stored key index
        sll  $t8, $t8, 3
        add  $t8, $s0, $t8
        lbu  $t9, 0($t8)
        lbu  $t0, 0($s4)
        beq  $t9, $t0, found
        addi $s5, $s5, 1         # linear reprobe
        andi $s5, $s5, 63
        j    probe
install:addi $t1, $s3, 1
        move $t9, $t1            # entry staging (move idiom)
        sw   $t9, 0($t6)
        add  $s2, $s2, $s5
        j    next
found:  move $t2, $t7            # cache the hit (move idiom)
        add  $s2, $s2, $t2
next:   addi $s3, $s3, 1
        slti $t3, $s3, 32
        bnez $t3, key
        # wipe the table between passes (pointer walk, 4 slots per trip)
        move $t6, $s1
        li   $t4, 16
wipe:   sw   $zero, 0($t6)
        sw   $zero, 4($t6)
        sw   $zero, 8($t6)
        sw   $zero, 12($t6)
        addi $t6, $t6, 16
        addi $t4, $t4, -1
        bgtz $t4, wipe
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
pstr:   .space 256
ptab:   .space 256
"#
    )
}
