//! `go` — board-position evaluation on a 19×19 grid.
//!
//! Dominant pattern: dense 2-D array indexing (`row*19+col` style address
//! arithmetic via shift+add), neighbor scans with offset tables, and
//! data-dependent stone-color branches. Table 2 targets: ≈2.5% moves,
//! ≈0.7% reassociable, and the suite-leading ≈9.6% scaled adds.

use super::{init_data, EPILOGUE};

/// Generates the kernel with `scale` full-board evaluation sweeps.
pub fn source(scale: u32) -> String {
    let init = init_data("board", 361, 0x9090);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        # Quantize board cells to 0/1/2 (empty/black/white).
        la   $t0, board
        li   $t1, 361
quant:  lw   $t2, 0($t0)
        andi $t2, $t2, 3
        slti $t3, $t2, 3
        bnez $t3, qok
        li   $t2, 0
qok:    sw   $t2, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bgtz $t1, quant

        la   $s0, board
        li   $s2, 0              # checksum / evaluation
outer:  li   $s4, 20             # cell index (skip the border row)
cell:   sll  $t0, $s4, 2
        add  $t1, $s0, $t0       # &board[cell]  (shift+add)
        lw   $t2, 0($t1)
        beqz $t2, empty
        # occupied: check the 4 neighbors explicitly (compilers unroll
        # this in real go engines), counting liberties for this color
        li   $s6, 0              # liberties
        addi $t5, $s4, 1         # east
        sll  $t6, $t5, 2
        add  $t7, $s0, $t6       # &board[east] (shift+add)
        lw   $t8, 0($t7)
        bnez $t8, gonb1
        addi $s6, $s6, 1
gonb1:  addi $t5, $s4, -1        # west
        sll  $t6, $t5, 2
        add  $t7, $s0, $t6
        lw   $t8, 0($t7)
        bnez $t8, gonb2
        addi $s6, $s6, 1
gonb2:  addi $t5, $s4, 19        # south
        sll  $t6, $t5, 2
        add  $t7, $s0, $t6
        lw   $t8, 0($t7)
        bnez $t8, gonb3
        addi $s6, $s6, 1
gonb3:  addi $t5, $s4, -19       # north
        sll  $t6, $t5, 2
        add  $t7, $s0, $t6
        lw   $t8, 0($t7)
        bnez $t8, gonb4
        addi $s6, $s6, 1
gonb4:
        # score: stones with 1 liberty are in atari
        mul  $t3, $s6, $t2
        add  $s2, $s2, $t3
        slti $t4, $s6, 2
        beqz $t4, empty
        addi $s2, $s2, 7         # atari bonus
empty:  addi $s4, $s4, 1
        slti $t5, $s4, 340
        bnez $t5, cell
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
board:  .space 1524
"#
    )
}
