//! `gnuplot` — coordinate-transform and clipping pipeline.
//!
//! Dominant pattern: a staged transform pipeline that shuttles point
//! coordinates between pipeline-stage "slots" with register copies — this
//! is the suite's move-density maximum (Table 2: ≈11.3% moves) — plus
//! fixed-point scaling and window-clipping branches. Reassociable ≈1.4%,
//! scaled adds ≈2.3%.

use super::{init_data, EPILOGUE};

/// Generates the kernel: `scale` passes transforming 64 points.
pub fn source(scale: u32) -> String {
    let init = init_data("pts", 128, 0x7107);
    format!(
        r#"
        .text
main:   li   $s7, {scale}
{init}
        la   $s0, pts            # 64 (x, y) pairs
        la   $s1, plotted
        li   $s2, 0              # checksum
outer:  li   $s3, 0              # point index
pt:     sll  $t0, $s3, 3
        add  $t1, $s0, $t0       # &pts[i] (shift+add)
        lw   $t2, 0($t1)         # raw x
        lw   $t3, 4($t1)         # raw y
        andi $t2, $t2, 2047
        andi $t3, $t3, 2047
        # stage 1: world -> view (copy in, scale, copy out)
        move $t4, $t2            # vx = x     (move idiom)
        move $t5, $t3            # vy = y     (move idiom)
        sll  $t6, $t4, 1
        add  $t4, $t6, $t4       # vx *= 3
        sra  $t4, $t4, 2         # vx = vx*3/4
        sra  $t5, $t5, 1         # vy /= 2
        # stage 2: view -> screen with offsets
        addi $t4, $t4, 64
        addi $t5, $t5, 32
        move $t6, $t4            # sx (move idiom)
        move $t7, $t5            # sy (move idiom)
        # clip to the 0..1023 window
        slti $t8, $t6, 1024
        bnez $t8, xok
        li   $t6, 1023
xok:    slti $t8, $t7, 1024
        bnez $t8, yok
        li   $t7, 1023
yok:    # plot: bucket by screen row/16
        andi $t9, $t7, 0x3f0     # row*16 bits
        srl  $t9, $t9, 2         # word offset (no shift+add pair)
        add  $t9, $s1, $t9
        lw   $t8, 0($t9)
        addi $t8, $t8, 1
        sw   $t8, 0($t9)
        add  $s2, $s2, $t6
        add  $s2, $s2, $t7
        addi $s3, $s3, 1
        slti $t0, $s3, 64
        bnez $t0, pt
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
pts:    .space 512
plotted:.space 256
"#
    )
}
