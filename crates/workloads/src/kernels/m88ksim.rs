//! `m88ksim` — an instruction-set simulator simulating a toy ISA.
//!
//! Dominant patterns: a fetch/decode/dispatch loop whose decode extracts
//! bit fields, a memory-resident register file addressed by small
//! displacements, and — crucially — chains of small-constant `addi`
//! instructions (PC bumps and operand biasing) that *cross* the dispatch
//! branches within a packed trace segment. This is why the paper reports
//! m88ksim as reassociation's biggest winner (+23% from that one
//! optimization; 12.9% of its instructions reassociable — Table 2).

use super::EPILOGUE;

/// Generates the kernel: `scale` passes of a 96-"instruction" program for
/// a compact toy machine (a 15-instruction interpreter loop, so every
/// decode-to-handler immediate pair fits inside one trace segment).
pub fn source(scale: u32) -> String {
    format!(
        r#"
        .text
main:   li   $s7, {scale}
        # Encode the toy program: op in bits 8..9, operand in bits 0..7.
        la   $t0, tprog
        li   $t1, 0
        li   $t6, 37
enc:    andi $t2, $t1, 1
        sll  $t3, $t2, 8
        mul  $t4, $t1, $t6
        andi $t4, $t4, 255
        or   $t3, $t3, $t4
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        slti $t5, $t1, 96
        bnez $t5, enc

        li   $s2, 0              # checksum
outer:  la   $s0, tprog          # simulated text base
        la   $s1, tregs          # simulated register file (in memory)
        li   $s3, 0              # simulated PC (byte offset)
fetch:  add  $t0, $s0, $s3
        lw   $t1, 0($t0)         # fetch toy instruction
        addi $s3, $s3, 2         # first half of the PC bump (the decode
                                 # stage of the simulated pipeline)
        andi $t3, $t1, 255       # raw operand
        addi $t3, $t3, -64       # bias: every handler re-adjusts with its
                                 # own constant -> a reassociable pair
                                 # across the dispatch branches
        andi $t2, $t1, 256       # opcode bit
        beqz $t2, op0
op1:    addi $t5, $t3, 70        # imm1 = raw + 6
        lw   $t6, 4($s1)         # r1 += imm1
        add  $t6, $t6, $t5
        sw   $t6, 4($s1)
        j    done
op0:    addi $t5, $t3, 64        # imm0 = raw
        lw   $t6, 0($s1)         # r0 = r0 | imm0
        or   $t6, $t6, $t5
        sw   $t6, 0($s1)
done:   move $t9, $t6            # forward the written value (move idiom)
        addi $s3, $s3, 2         # second half of the PC bump (the commit
                                 # stage) - a serial recurrence that
                                 # reassociation collapses across blocks
        addi $t8, $t3, 12        # a second decode-relative offset that
        add  $s2, $s2, $t8       # chains with the bias across dispatch
        add  $s2, $s2, $t9
        slti $t7, $s3, 384      # 96 instructions * 4
        bnez $t7, fetch
        # accumulate the simulated register file into the checksum
        li   $t0, 0
acc:    sll  $t1, $t0, 2
        lwx  $t2, $s1, $t1
        add  $s2, $s2, $t2
        addi $t0, $t0, 1
        slti $t3, $t0, 4
        bnez $t3, acc
        addi $s7, $s7, -1
        bgtz $s7, outer
{EPILOGUE}
        .data
tprog:  .space 384
tregs:  .space 32
"#
    )
}
