//! The benchmark kernels, one module per Table 1 row.
//!
//! Each kernel is a hand-written SSA assembly program whose *instruction
//! mix* mirrors what the paper reports for the corresponding benchmark in
//! Table 2: the fraction of dynamic instructions that are register-move
//! idioms, cross-block reassociable immediate pairs, and shift+add
//! (scaled-add) pairs. The kernels are scaled by an iteration count so
//! harnesses can run any instruction budget, and each prints a checksum so
//! simulator and interpreter runs can be compared end to end.

pub mod chess;
pub mod compress;
pub mod gcc;
pub mod ghostscript;
pub mod gnuplot;
pub mod go;
pub mod ijpeg;
pub mod li;
pub mod m88ksim;
pub mod perl;
pub mod pgp;
pub mod python;
pub mod simoutorder;
pub mod tex;
pub mod vortex;

/// The standard pseudo-random data-initialization prologue: fills `words`
/// 32-bit words at `label` with an LCG stream seeded by `seed`. Kernels
/// splice this after their own `main:` setup.
pub(crate) fn init_data(label: &str, words: u32, seed: u32) -> String {
    format!(
        r#"
        # --- init {label}: {words} words of LCG data ---
        la   $t8, {label}
        li   $t9, {seed}
        li   $t7, {words}
init_{label}:
        li   $t6, 1103515245
        mul  $t9, $t9, $t6
        addi $t9, $t9, 12345
        srl  $t5, $t9, 8
        sw   $t5, 0($t8)
        addi $t8, $t8, 4
        addi $t7, $t7, -1
        bgtz $t7, init_{label}
"#
    )
}

/// The standard epilogue: print the checksum in `$s2` and exit.
pub(crate) const EPILOGUE: &str = r#"
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
