//! Workload characterization: measure how transformable a program's
//! dynamic instruction stream actually is.
//!
//! The retire stream from a functional run is fed through the real fill
//! unit (segment construction + all four optimization passes), so the
//! reported densities are exactly what the simulator's fill unit would
//! apply — the realized counterpart of the paper's Table 2.

use tracefill_isa::interp::Interp;
use tracefill_isa::Program;

/// Realized dynamic characteristics of a program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Characteristics {
    /// Dynamic instructions measured.
    pub instrs: u64,
    /// Fraction flagged as register moves by the fill unit.
    pub moves: f64,
    /// Fraction rewritten by reassociation.
    pub reassoc: f64,
    /// Fraction converted to scaled adds.
    pub scadd: f64,
    /// Fraction of conditional branches in the stream.
    pub branches: f64,
    /// Fraction of loads in the stream.
    pub loads: f64,
    /// Fraction of stores in the stream.
    pub stores: f64,
}

impl Characteristics {
    /// Total transformed fraction (Table 2's "Total" column).
    pub fn total(&self) -> f64 {
        self.moves + self.reassoc + self.scadd
    }
}

/// Runs `program` functionally for up to `max_instrs` instructions and
/// measures realized fill-unit transformation densities, skipping a
/// 4000-instruction warmup so one-time data-initialization prologues do
/// not skew the steady-state densities.
///
/// # Panics
///
/// Panics if the program faults (the kernels in this crate never do).
pub fn characterize(program: &Program, max_instrs: u64) -> Characteristics {
    characterize_after(program, 4_000, max_instrs)
}

/// [`characterize`] with no warmup (diagnostics).
pub fn characterize_from(program: &Program) -> Characteristics {
    characterize_after(program, 0, 100_000)
}

/// [`characterize`] with an explicit warmup prefix to skip.
///
/// # Panics
///
/// Panics if the program faults.
pub fn characterize_after(program: &Program, warmup: u64, max_instrs: u64) -> Characteristics {
    use tracefill_core::builder::{FillInput, SegmentBuilder};
    use tracefill_core::config::{ClusterConfig, FillConfig, OptConfig};
    use tracefill_core::opt;
    use tracefill_core::segment::SegEnd;

    let mut interp = Interp::new(program);
    let cfg = FillConfig::default();
    let opts = OptConfig::all();
    let clusters = ClusterConfig::default();
    let mut builder = SegmentBuilder::new();

    let mut instrs = 0u64;
    let mut branches = 0u64;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut skipped = 0u64;
    let mut counts = opt::OptCounts::default();

    let finalize = |builder: &mut SegmentBuilder, end: SegEnd, counts: &mut opt::OptCounts| {
        if let Some(mut seg) = builder.finalize(end) {
            counts.add(opt::apply_all(&mut seg, &opts, &clusters));
        }
    };

    while instrs < max_instrs {
        let r = interp.step().expect("characterized program must not fault");
        if r.halt.is_some() {
            break;
        }
        if skipped < warmup {
            skipped += 1;
            continue;
        }
        instrs += 1;
        branches += r.instr.op.is_cond_branch() as u64;
        loads += r.instr.op.is_load() as u64;
        stores += r.instr.op.is_store() as u64;

        let input = FillInput {
            pc: r.pc,
            instr: r.instr,
            taken: r.taken,
            promoted: None,
            fetch_miss_head: false,
        };
        if !builder.can_accept(&input, &cfg) {
            finalize(&mut builder, SegEnd::Full, &mut counts);
        }
        builder.push(input);
        if let Some(end) = builder.must_terminate_after(&input, &cfg) {
            finalize(&mut builder, end, &mut counts);
        }
    }
    finalize(&mut builder, SegEnd::Flushed, &mut counts);

    let n = instrs.max(1) as f64;
    Characteristics {
        instrs,
        moves: counts.moves as f64 / n,
        reassoc: counts.reassoc as f64 / n,
        scadd: counts.scadd as f64 / n,
        branches: branches as f64 / n,
        loads: loads as f64 / n,
        stores: stores as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn kernels_have_their_signature_densities() {
        let by = |name: &str| {
            let b = crate::suite::by_name(name).unwrap();
            let prog = b.program(b.scale_for(60_000)).unwrap();
            characterize(&prog, 60_000)
        };
        // m88ksim and chess lead on reassociation (paper: 12.9% / 10.4%).
        let m88k = by("m88k");
        let ch = by("ch");
        let tex = by("tex");
        let go = by("go");
        let plot = by("plot");
        assert!(
            m88k.reassoc > 0.02,
            "m88k reassoc {:.3} too low",
            m88k.reassoc
        );
        assert!(ch.reassoc > 0.02, "chess reassoc {:.3} too low", ch.reassoc);
        // go and tex lead on scaled adds (paper: 9.6% / 5.2%).
        assert!(go.scadd > 0.03, "go scadd {:.3} too low", go.scadd);
        assert!(tex.scadd > 0.02, "tex scadd {:.3} too low", tex.scadd);
        // gnuplot leads on moves (paper: 11.3%).
        assert!(plot.moves > 0.04, "plot moves {:.3} too low", plot.moves);
        // Ordering relations the paper reports.
        assert!(m88k.reassoc > go.reassoc);
        assert!(go.scadd > m88k.scadd);
        assert!(plot.moves > tex.moves);
    }

    #[test]
    fn every_kernel_transforms_something() {
        for b in suite() {
            let prog = b.program(b.scale_for(40_000)).unwrap();
            let c = characterize(&prog, 40_000);
            assert!(c.instrs > 5_000, "{}: only {} instrs", b.name, c.instrs);
            assert!(
                c.total() > 0.01,
                "{}: total transformed {:.4} too low",
                b.name,
                c.total()
            );
            // pgp's unrolled bignum rows are nearly branch-free.
            assert!(c.branches > 0.008, "{}: too few branches", b.name);
        }
    }
}
