//! Mechanism-level tests: each exercises one hard piece of the pipeline
//! and asserts on the statistics that prove the mechanism actually fired
//! (not just that the program produced the right answer).

use tracefill_core::config::OptConfig;
use tracefill_isa::asm::assemble;
use tracefill_isa::syscall::IoCtx;
use tracefill_sim::{RunExit, SimConfig, Simulator};

fn run(src: &str, cfg: SimConfig) -> Simulator {
    let prog = assemble(src).unwrap();
    let mut sim = Simulator::new(&prog, cfg);
    let exit = sim.run(50_000_000).unwrap();
    assert!(matches!(exit, RunExit::Exited(_)), "{exit:?}");
    sim
}

/// A data-dependent branch the predictor cannot learn: lots of recoveries.
const MISPREDICT_HEAVY: &str = r#"
        .text
main:   li   $s0, 4000
        li   $s1, 0
        li   $s2, 12345
loop:   li   $t9, 1103515245
        mul  $s2, $s2, $t9
        addi $s2, $s2, 12345
        srl  $t0, $s2, 13
        andi $t0, $t0, 1
        beqz $t0, skip          # effectively random direction
        addi $s1, $s1, 3
skip:   addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;

#[test]
fn mispredictions_recover_correctly_and_are_counted() {
    let sim = run(MISPREDICT_HEAVY, SimConfig::default());
    let s = sim.stats();
    // The random branch is ~50% mispredicted; overall rate must be high.
    assert!(
        s.mispredict_rate() > 0.10,
        "expected heavy misprediction, got {:.3}",
        s.mispredict_rate()
    );
    // Wrong-path work was fetched and squashed.
    assert!(s.squashed_uops > 1_000, "squashed {}", s.squashed_uops);
}

#[test]
fn inactive_issue_rescues_mispredictions() {
    let sim = run(MISPREDICT_HEAVY, SimConfig::default());
    assert!(
        sim.stats().inactive_rescues > 50,
        "expected inactive-issue rescues on a random branch, got {}",
        sim.stats().inactive_rescues
    );
    assert!(sim.stats().activated_uops > 0);
    assert!(sim.stats().discarded_inactive_uops > 0);

    // With inactive issue off, rescues are impossible and IPC drops.
    let prog = assemble(MISPREDICT_HEAVY).unwrap();
    let mut off = Simulator::new(
        &prog,
        SimConfig {
            inactive_issue: false,
            ..SimConfig::default()
        },
    );
    off.run(50_000_000).unwrap();
    assert_eq!(off.stats().inactive_rescues, 0);
}

#[test]
fn store_to_load_forwarding_fires() {
    let sim = run(
        r#"
        .text
main:   la   $s0, buf
        li   $s1, 2000
loop:   sw   $s1, 0($s0)
        lw   $t0, 0($s0)        # exact match: must forward
        add  $s2, $s2, $t0
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
        .data
buf:    .space 16
"#,
        SimConfig::default(),
    );
    // Forwarding is not directly counted in Stats, but the run completing
    // under oracle lockstep proves the forwarded values were correct; the
    // tight dependence also bounds IPC from below only if forwarding works
    // (a retire-wait per iteration would be several times slower).
    assert!(sim.stats().ipc() > 1.5, "ipc {:.3}", sim.stats().ipc());
}

#[test]
fn serializing_syscalls_drain_and_resume() {
    let sim = run(
        r#"
        .text
main:   li   $s0, 300
loop:   li   $v0, 5
        syscall                 # READ_INT: serializes every iteration
        add  $s1, $s1, $v0
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
        SimConfig::default(),
    );
    assert!(sim.stats().serialize_stall_cycles > 300);
    assert_eq!(sim.io().output, vec![0]); // empty input reads zero
}

#[test]
fn promotion_engages_on_biased_loop_branches() {
    let sim = run(
        r#"
        .text
main:   li   $s0, 5000
loop:   addi $s1, $s1, 1
        addi $s0, $s0, -1
        bgtz $s0, loop          # taken 4999 times consecutively
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
        SimConfig::default(),
    );
    // The run must complete exactly; promotion itself is visible through
    // the fill unit having seen promoted branches (mean segment length
    // grows since promoted branches do not consume prediction slots).
    assert_eq!(sim.io().output, vec![5000]);
}

#[test]
fn returns_predict_through_the_ras() {
    let sim = run(
        r#"
        .text
main:   li   $s0, 800
loop:   jal  helper
        jal  helper
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
helper: addi $s1, $s1, 1
        jr   $ra
"#,
        SimConfig::default(),
    );
    let s = sim.stats();
    assert!(s.indirects >= 1600);
    // Alternating return addresses: without a RAS nearly every return
    // would miss through the last-target buffer.
    assert!(
        (s.indirect_mispredicts as f64) < (s.indirects as f64) * 0.2,
        "{} of {} returns mispredicted",
        s.indirect_mispredicts,
        s.indirects
    );
}

#[test]
fn move_elimination_frees_functional_units() {
    let src = r#"
        .text
main:   li   $s0, 3000
loop:   move $t0, $s1
        move $t1, $t0
        move $t2, $t1
        add  $s1, $s1, $t2
        addi $s0, $s0, -1
        bgtz $s0, loop
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
    let base = run(src, SimConfig::default());
    let opt = run(src, SimConfig::with_opts(OptConfig::only_moves()));
    // A third of the loop is moves: with marking they vanish from the FU
    // stream entirely.
    assert!(opt.stats().retired_moves > 8_000);
    assert!(
        opt.stats().fu_executed < base.stats().fu_executed,
        "moves still occupied FUs: {} vs {}",
        opt.stats().fu_executed,
        base.stats().fu_executed
    );
}

#[test]
fn io_streams_flow_through_the_pipeline() {
    let prog = assemble(
        r#"
        .text
main:   li   $s0, 4
loop:   li   $v0, 5
        syscall
        move $a0, $v0
        li   $v0, 1
        syscall                 # echo input to output
        addi $s0, $s0, -1
        bgtz $s0, loop
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
    )
    .unwrap();
    let mut sim = Simulator::with_io(
        &prog,
        SimConfig::with_opts(OptConfig::all()),
        IoCtx::with_input([11, 22, 33, 44]),
    );
    sim.run(10_000_000).unwrap();
    assert_eq!(sim.io().output, vec![11, 22, 33, 44]);
}

#[test]
fn deep_recursion_exercises_checkpoint_and_ras_depth() {
    let sim = run(
        r#"
        .text
main:   li   $a0, 60            # recursion depth beyond the 32-entry RAS
        jal  down
        move $a0, $v1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
down:   blez $a0, base
        addi $sp, $sp, -8
        sw   $ra, 0($sp)
        addi $a0, $a0, -1
        jal  down
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        addi $v1, $v1, 1
        jr   $ra
base:   li   $v1, 0
        jr   $ra
"#,
        SimConfig::default(),
    );
    assert_eq!(sim.io().output, vec![60]);
}
