use tracefill_isa::asm::assemble;
use tracefill_sim::{RunExit, SimConfig, Simulator};

#[test]
fn loop_program_runs() {
    let prog = assemble(
        r#"
        .text
main:   li   $t0, 100
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
    )
    .unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::default());
    let exit = sim.run(1_000_000).unwrap();
    eprintln!(
        "exit={exit:?} cycles={} retired={} ipc={:.3} out={:?}",
        sim.cycle(),
        sim.stats().retired,
        sim.stats().ipc(),
        sim.io().output
    );
    assert!(matches!(exit, RunExit::Exited(_)));
    assert_eq!(sim.io().output, vec![5050]);
}
