//! End-to-end correctness: diverse programs × every machine configuration.
//!
//! Every run executes with oracle lockstep enabled, so completing at all
//! means every retired register write, store, branch direction and
//! indirect target matched the functional interpreter — under wrong-path
//! execution, inactive issue, checkpoint repair and all four fill-unit
//! optimizations.

use tracefill_core::config::OptConfig;
use tracefill_isa::asm::assemble;
use tracefill_isa::syscall::IoCtx;
use tracefill_isa::Program;
use tracefill_sim::{RunExit, SimConfig, Simulator};

/// Recursive fib: deep call/return chains exercise the RAS and `jr`.
const FIB: &str = r#"
        .text
main:   li   $a0, 12
        jal  fib
        move $a0, $v1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fib:    slti $t0, $a0, 2
        beqz $t0, rec
        move $v1, $a0
        jr   $ra
rec:    addi $sp, $sp, -12
        sw   $ra, 0($sp)
        sw   $a0, 4($sp)
        addi $a0, $a0, -1
        jal  fib
        sw   $v1, 8($sp)
        lw   $a0, 4($sp)
        addi $a0, $a0, -2
        jal  fib
        lw   $t1, 8($sp)
        add  $v1, $v1, $t1
        lw   $ra, 0($sp)
        addi $sp, $sp, 12
        jr   $ra
"#;

/// Bubble sort: data-dependent branches, heavy load/store aliasing.
const SORT: &str = r#"
        .text
main:   la   $s0, arr
        li   $s1, 24            # n
        li   $t9, 7919
        li   $t0, 0             # fill with pseudo-random values
fill:   mul  $t1, $t0, $t9
        andi $t1, $t1, 1023
        sll  $t2, $t0, 2
        add  $t3, $s0, $t2
        sw   $t1, 0($t3)
        addi $t0, $t0, 1
        blt  $t0, $s1, fill

        li   $t0, 0             # outer
outer:  li   $t1, 0             # inner
inner:  sll  $t2, $t1, 2
        add  $t3, $s0, $t2
        lw   $t4, 0($t3)
        lw   $t5, 4($t3)
        ble  $t4, $t5, noswap
        sw   $t5, 0($t3)
        sw   $t4, 4($t3)
noswap: addi $t1, $t1, 1
        addi $t6, $s1, -2
        ble  $t1, $t6, inner
        addi $t0, $t0, 1
        blt  $t0, $s1, outer

        li   $t0, 0             # print checksum of sorted array
        li   $t7, 0
chk:    sll  $t2, $t0, 2
        lwx  $t4, $s0, $t2
        mul  $t5, $t4, $t0
        add  $t7, $t7, $t5
        addi $t0, $t0, 1
        blt  $t0, $s1, chk
        move $a0, $t7
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        .data
arr:    .space 128
"#;

/// Jump-table dispatch: indirect jumps through a table (interpreter-like).
const DISPATCH: &str = r#"
        .text
main:   li   $s0, 0             # accumulator
        li   $s1, 40            # iterations
        la   $s2, table
loop:   andi $t0, $s1, 3        # op = i % 4
        sll  $t1, $t0, 2
        lwx  $t2, $s2, $t1
        jr   $t2
op0:    addi $s0, $s0, 3
        j    next
op1:    sll  $s0, $s0, 1
        andi $s0, $s0, 0xffff
        j    next
op2:    addi $s0, $s0, -1
        j    next
op3:    xori $s0, $s0, 0x5a
        j    next
next:   addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        .data
table:  .word op0, op1, op2, op3
"#;

/// Store-to-load forwarding and partial-overlap hazards.
const ALIAS: &str = r#"
        .text
main:   la   $s0, buf
        li   $s1, 64
        li   $t7, 0
loop:   andi $t0, $s1, 15
        sll  $t1, $t0, 2
        add  $t2, $s0, $t1
        sw   $s1, 0($t2)        # word store
        lw   $t3, 0($t2)        # exact-match forward
        sb   $s1, 1($t2)        # byte store into the same word
        lw   $t4, 0($t2)        # partial overlap: must wait for retire
        lbu  $t5, 1($t2)
        add  $t7, $t7, $t3
        add  $t7, $t7, $t4
        add  $t7, $t7, $t5
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $t7
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        .data
buf:    .space 64
"#;

/// Optimization-pattern-dense kernel: moves, immediate chains, shift+add.
const PATTERNS: &str = r#"
        .text
main:   li   $s1, 300
        la   $s0, data
        li   $s3, 0
loop:   andi $t0, $s1, 31
        sll  $t1, $t0, 2        # scaled add fodder
        add  $t2, $s0, $t1
        lw   $t3, 0($t2)
        move $t4, $t3           # move idiom
        addi $t5, $t4, 4        # immediate chain
        addi $t6, $t5, 4
        addi $t7, $t6, 8
        add  $s3, $s3, $t7
        sw   $s3, 0($t2)
        move $a1, $s3
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s3
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        .data
data:   .space 128
"#;

/// Input-driven program: READ_INT / serialization under speculation.
const INPUTS: &str = r#"
        .text
main:   li   $s0, 0
        li   $s1, 5
loop:   li   $v0, 5
        syscall                 # read
        add  $s0, $s0, $v0
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;

fn reference_output(prog: &Program, input: &[u32]) -> Vec<u32> {
    let mut i =
        tracefill_isa::interp::Interp::with_io(prog, IoCtx::with_input(input.iter().copied()));
    i.run(10_000_000).expect("reference run exits");
    i.io().output.clone()
}

fn configs() -> Vec<(&'static str, SimConfig)> {
    let mut v = vec![
        ("baseline", SimConfig::default()),
        ("moves", SimConfig::with_opts(OptConfig::only_moves())),
        ("reassoc", SimConfig::with_opts(OptConfig::only_reassoc())),
        ("scadd", SimConfig::with_opts(OptConfig::only_scadd())),
        (
            "placement",
            SimConfig::with_opts(OptConfig::only_placement()),
        ),
        ("all", SimConfig::with_opts(OptConfig::all())),
    ];
    let mut lat10 = SimConfig::with_opts(OptConfig::all());
    lat10.fill.latency = 10;
    v.push(("all+lat10", lat10));
    let mut nopack = SimConfig::default();
    nopack.fill.packing = false;
    v.push(("nopack", nopack));
    let mut noinactive = SimConfig::with_opts(OptConfig::all());
    noinactive.inactive_issue = false;
    v.push(("noinactive", noinactive));
    let mut nopromo = SimConfig::default();
    nopromo.fill.promotion = false;
    v.push(("nopromo", nopromo));
    let mut with_cse = OptConfig::all();
    with_cse.cse = true;
    v.push(("all+cse", SimConfig::with_opts(with_cse)));
    let mut tiny_tc = SimConfig::with_opts(OptConfig::all());
    tiny_tc.tcache.entries = 16;
    tiny_tc.tcache.ways = 2;
    v.push(("tinytc", tiny_tc));
    v
}

fn check_program(name: &str, src: &str, input: &[u32]) {
    let prog = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let expect = reference_output(&prog, input);
    for (cname, cfg) in configs() {
        let mut sim = Simulator::with_io(&prog, cfg, IoCtx::with_input(input.iter().copied()));
        let exit = sim
            .run(20_000_000)
            .unwrap_or_else(|e| panic!("{name}/{cname}: {e}"));
        assert!(
            matches!(exit, RunExit::Exited(_)),
            "{name}/{cname}: did not exit ({exit:?})"
        );
        assert_eq!(sim.io().output, expect, "{name}/{cname}: output mismatch");
        assert!(sim.stats().retired > 0);
    }
}

#[test]
fn fib_under_all_configs() {
    check_program("fib", FIB, &[]);
}

#[test]
fn sort_under_all_configs() {
    check_program("sort", SORT, &[]);
}

#[test]
fn dispatch_under_all_configs() {
    check_program("dispatch", DISPATCH, &[]);
}

#[test]
fn alias_under_all_configs() {
    check_program("alias", ALIAS, &[]);
}

#[test]
fn patterns_under_all_configs() {
    check_program("patterns", PATTERNS, &[]);
}

#[test]
fn inputs_under_all_configs() {
    check_program("inputs", INPUTS, &[3, 1, 4, 1, 5]);
}

#[test]
fn optimizations_do_not_hurt_patterns_kernel() {
    let prog = assemble(PATTERNS).unwrap();
    let mut base = Simulator::new(&prog, SimConfig::default());
    base.run(10_000_000).unwrap();
    let mut opt = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
    opt.run(10_000_000).unwrap();
    let (b, o) = (base.stats().ipc(), opt.stats().ipc());
    assert!(
        o > b * 0.98,
        "optimized IPC {o:.3} should not regress below baseline {b:.3}"
    );
    // The kernel is dense in optimizable patterns; expect a visible win.
    assert!(
        o > b * 1.02,
        "optimized IPC {o:.3} should beat baseline {b:.3} on this kernel"
    );
    assert!(opt.stats().retired_moves > 0);
    assert!(opt.stats().retired_scadd > 0);
}

#[test]
fn trace_cache_supplies_most_instructions_in_loops() {
    let prog = assemble(PATTERNS).unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::default());
    sim.run(10_000_000).unwrap();
    assert!(
        sim.stats().tc_fraction() > 0.5,
        "tc fraction {:.3} too low",
        sim.stats().tc_fraction()
    );
    assert!(sim.tcache_stats().hits > 0);
}
