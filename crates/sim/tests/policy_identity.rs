//! Adaptive-policy safety net: the controller and replacement-policy
//! plumbing must be invisible when pinned to the legacy configuration, and
//! must stay functionally correct (oracle-clean) when actually adapting.

use tracefill_core::config::{
    ControllerConfig, ControllerMode, OptConfig, PassMask, ReplacementKind,
};
use tracefill_sim::{SimConfig, Simulator};

fn run_counts(cfg: SimConfig, bench: &str, instrs: u64) -> (u64, u64, u64, u64, u64) {
    let b = tracefill_workloads::by_name(bench).unwrap();
    let prog = b.program(b.scale_for(instrs * 2)).unwrap();
    let mut sim = Simulator::new(&prog, cfg);
    // A lockstep divergence (or strict-verify failure) comes back as Err.
    sim.run_instrs(instrs)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    let tc = sim.tcache_stats();
    (
        sim.cycle(),
        sim.stats().retired,
        tc.hits,
        tc.misses,
        tc.evictions,
    )
}

/// The identity property from the issue: `Static(all)` + LRU must be
/// bit-for-bit the current simulator — same cycles, same retirement, same
/// trace-cache traffic — across the whole workload suite.
#[test]
fn static_all_plus_lru_is_bit_identical_to_baseline() {
    for bench in tracefill_workloads::names() {
        let baseline = run_counts(SimConfig::with_opts(OptConfig::all()), bench, 4_000);

        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.fill.controller = ControllerConfig {
            mode: ControllerMode::Static(PassMask::ALL),
            epoch_fills: 64,
            seed: 0,
        };
        cfg.tcache.policy = ReplacementKind::Lru;
        let pinned = run_counts(cfg, bench, 4_000);

        assert_eq!(
            baseline, pinned,
            "{bench}: Static(all)+LRU must not perturb the machine"
        );
    }
}

/// Adaptive controllers change *which* passes run per epoch, never *what*
/// the program computes: with the lockstep oracle and strict segment
/// verification on (the `SimConfig::default()` posture), adaptive runs must
/// finish with zero divergences.
#[test]
fn adaptive_controllers_are_oracle_clean() {
    let modes = [
        ControllerMode::EpsilonGreedy { epsilon_milli: 250 },
        ControllerMode::Ucb { c_milli: 1414 },
    ];
    for mode in modes {
        for bench in ["m88k", "comp", "ijpeg"] {
            let mut cfg = SimConfig::with_opts(OptConfig::all());
            assert!(cfg.oracle_check && cfg.fill.strict_verify);
            cfg.fill.controller = ControllerConfig {
                mode,
                epoch_fills: 16, // small epochs: force many arm switches
                seed: 7,
            };
            let (cycles, retired, ..) = run_counts(cfg, bench, 6_000);
            assert!(retired >= 6_000, "{bench} under {mode:?}");
            assert!(cycles > 0);
        }
    }
}

/// Alternate replacement policies reorder evictions but never correctness:
/// SRRIP and TRRIP runs stay oracle-clean and still hit in the cache.
#[test]
fn alternate_replacement_policies_are_oracle_clean() {
    for policy in [ReplacementKind::Srrip, ReplacementKind::Trrip] {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.tcache.policy = policy;
        let (_, retired, hits, ..) = run_counts(cfg, "m88k", 6_000);
        assert!(retired >= 6_000, "{policy:?}");
        assert!(hits > 0, "{policy:?}: trace cache never hit");
    }
}

/// Same seed, same trajectory: an adaptive run is fully deterministic.
#[test]
fn adaptive_runs_are_deterministic() {
    let mk = || {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.fill.controller = ControllerConfig {
            mode: ControllerMode::EpsilonGreedy { epsilon_milli: 250 },
            epoch_fills: 16,
            seed: 42,
        };
        cfg.tcache.policy = ReplacementKind::Trrip;
        cfg
    };
    let a = run_counts(mk(), "comp", 5_000);
    let b = run_counts(mk(), "comp", 5_000);
    assert_eq!(a, b);
}
