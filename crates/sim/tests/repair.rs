//! Self-repair acceptance: divergence containment, architectural
//! restoration, the escalation ladder, determinism, and the off-switch
//! identity guarantee.
//!
//! * with self-repair armed, fault campaigns that are *fatal* on the
//!   stock machine complete cleanly — and end bit-identical to the ISA
//!   interpreter (registers, memory, output, halt) for every
//!   optimization set;
//! * the first offense attributed to a real pass climbs the ladder when
//!   the thresholds say so;
//! * same seed + same plan ⇒ byte-identical repair JSON;
//! * a clean self-repair-on run is byte-identical to a plain run.

use tracefill_core::config::OptConfig;
use tracefill_isa::interp::Interp;
use tracefill_isa::ArchReg;
use tracefill_sim::{FaultKind, FaultPlan, SimConfig, Simulator};
use tracefill_workloads::gen::{generate, PatternMix};

/// Every optimization set the paper evaluates (plus the CSE extension).
fn opt_sets() -> Vec<(&'static str, OptConfig)> {
    let one = |f: fn(&mut OptConfig)| {
        let mut o = OptConfig::none();
        f(&mut o);
        o
    };
    vec![
        ("none", OptConfig::none()),
        ("moves", one(|o| o.moves = true)),
        ("reassoc", one(|o| o.reassoc = true)),
        ("scadd", one(|o| o.scadd = true)),
        ("placement", one(|o| o.placement = true)),
        ("cse", one(|o| o.cse = true)),
        ("all", OptConfig::all()),
        ("all+cse", {
            let mut o = OptConfig::all();
            o.cse = true;
            o
        }),
    ]
}

/// A self-repair configuration whose fault plan strikes the trace-cache
/// read path, bypassing the fill-side verifier — without repair, these
/// plans end in fatal divergences.
fn repair_cfg(opts: OptConfig, plan_seed: u64) -> SimConfig {
    let mut cfg = SimConfig::with_opts(opts);
    cfg.fill.strict_verify = false;
    cfg.self_repair.enabled = true;
    cfg.fault_plan = Some(FaultPlan::generate(
        plan_seed,
        16,
        64,
        &[FaultKind::BitFlipLookup, FaultKind::CorruptImm],
    ));
    cfg
}

#[test]
fn repaired_runs_end_architecturally_identical_to_the_interpreter() {
    // Satellite property: after forced divergence + repair, architectural
    // state (registers and every touched memory location) is bit-identical
    // to the interpreter at the replay point — for every opt set. The run
    // completing and matching at halt subsumes every intermediate replay
    // point: each repair restores from the interpreter, and every
    // subsequent retirement is oracle-checked.
    let mut total_repairs = 0u64;
    for seed in 1..=2u64 {
        let prog = generate(&PatternMix::default(), 24, 60, seed).unwrap();
        let mut oracle = Interp::new(&prog);
        let halt = oracle.run(10_000_000).expect("interpreter must halt");
        for (label, opts) in opt_sets() {
            let mut sim = Simulator::new(&prog, repair_cfg(opts, seed * 7 + 5));
            sim.run(50_000_000).unwrap_or_else(|e| {
                panic!("seed {seed} opts={label}: self-repair must contain faults:\n{e}")
            });
            total_repairs += sim.repairs().len() as u64;
            assert_eq!(sim.halted(), Some(halt), "seed {seed} opts={label}: halt");
            assert_eq!(
                sim.io().output,
                oracle.io().output,
                "seed {seed} opts={label}: output stream"
            );
            for r in ArchReg::all() {
                assert_eq!(
                    sim.arch_reg(r),
                    oracle.reg(r),
                    "seed {seed} opts={label}: final value of {r}"
                );
            }
            if let Some(addr) = sim.mem().diff(oracle.mem()) {
                panic!("seed {seed} opts={label}: memory differs at {addr:#010x}");
            }
        }
    }
    assert!(
        total_repairs > 0,
        "the campaign must actually force repairs, or this test proves nothing"
    );
}

#[test]
fn self_repair_contains_what_the_fatal_path_reports() {
    // The exact plan the fatal-path acceptance test uses (seed 5): without
    // self-repair it aborts with a divergence; with it, the run completes
    // and the report carries the same attribution.
    let prog = generate(&PatternMix::default(), 24, 200, 11).unwrap();
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.fill.strict_verify = false;
    cfg.fault_plan = Some(FaultPlan::generate(
        5,
        16,
        64,
        &[FaultKind::BitFlipLookup, FaultKind::CorruptImm],
    ));
    let mut fatal = Simulator::new(&prog, cfg.clone());
    fatal
        .run(50_000_000)
        .expect_err("without repair this plan is fatal");

    cfg.self_repair.enabled = true;
    let mut sim = Simulator::new(&prog, cfg);
    sim.run(50_000_000)
        .unwrap_or_else(|e| panic!("self-repair must contain the divergence:\n{e}"));
    assert!(
        !sim.repairs().is_empty(),
        "the contained failure is recorded"
    );
    let ev = &sim.repairs()[0];
    assert!(ev.cycle > 0 && !ev.expected.is_empty() && !ev.actual.is_empty());
    let src = ev
        .provenance
        .as_ref()
        .expect("the event names the offending segment");
    assert!(src.fault.is_some(), "the injected-fault note rides along");
    // The availability counters surface in the metrics registry.
    let m = sim.report().metrics;
    assert_eq!(m.counter("repair.total"), sim.repairs().len() as u64);
    assert!(
        m.counter("repair.invalidated") > 0,
        "offender left the cache"
    );
}

#[test]
fn first_attributed_offense_climbs_the_ladder() {
    let prog = generate(&PatternMix::default(), 24, 200, 11).unwrap();
    let mut cfg = repair_cfg(OptConfig::all(), 5);
    cfg.self_repair.quarantine_after = 1;
    cfg.self_repair.disable_after = 2;
    let mut sim = Simulator::new(&prog, cfg);
    sim.run(50_000_000).expect("contained");
    // The first repair whose segment was touched by real passes must
    // quarantine every one of them (threshold 1).
    if let Some(ev) = sim
        .repairs()
        .iter()
        .find(|e| e.provenance.as_ref().is_some_and(|p| !p.passes.is_empty()))
    {
        assert!(
            !ev.escalations.is_empty(),
            "threshold-1 ladder must escalate on the first attributed offense: {ev}"
        );
    }
    // The ladder's final state serializes into the report.
    let report = sim.repair_report();
    let text = report.to_json().dump();
    assert!(text.contains("\"ladder\""), "{text}");
    assert!(text.contains("\"repairs\""), "{text}");
}

#[test]
fn repair_reports_are_byte_identical_across_runs() {
    let prog = generate(&PatternMix::default(), 24, 120, 13).unwrap();
    let run = || {
        let mut sim = Simulator::new(&prog, repair_cfg(OptConfig::all(), 41));
        let exit = sim.run(50_000_000).map_err(|e| e.to_string());
        (
            format!("{exit:?}"),
            sim.repair_report().to_json().dump(),
            sim.report().to_json().dump(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "exit state must be deterministic");
    assert_eq!(a.1, b.1, "repair JSON must be byte-identical");
    assert_eq!(a.2, b.2, "the full report JSON must be byte-identical");
}

#[test]
fn clean_self_repair_runs_are_byte_identical_to_plain_runs() {
    // The identity guarantee: arming self-repair on a healthy machine
    // changes nothing — not one simulated quantity, not one report byte.
    let prog = generate(&PatternMix::default(), 24, 120, 17).unwrap();
    let run = |self_repair: bool| {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.self_repair.enabled = self_repair;
        let mut sim = Simulator::new(&prog, cfg);
        sim.run(50_000_000).expect("clean run");
        (
            sim.stats().cycles,
            sim.stats().retired,
            sim.report().to_json().dump(),
        )
    };
    let plain = run(false);
    let armed = run(true);
    assert_eq!(plain.0, armed.0, "cycle count");
    assert_eq!(plain.1, armed.1, "retired count");
    assert_eq!(plain.2, armed.2, "report JSON must be byte-identical");
}
