//! The pipeline event trace: end-to-end coverage of every event kind.

use tracefill_sim::tracelog::Event;
use tracefill_sim::{SimConfig, Simulator};

#[test]
fn trace_captures_the_full_pipeline_lifecycle() {
    let prog = tracefill_isa::asm::assemble(
        r#"
        .text
main:   li   $s0, 4000
        li   $s1, 0
        li   $s2, 12345
loop:   li   $t9, 1103515245
        mul  $s2, $s2, $t9
        addi $s2, $s2, 12345
        srl  $t0, $s2, 13
        andi $t0, $t0, 1
        beqz $t0, skip          # effectively random: forces recoveries
        addi $s1, $s1, 3
skip:   addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
    )
    .unwrap();
    let cfg = SimConfig {
        trace_depth: 2_000_000,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&prog, cfg);
    sim.run(10_000_000).unwrap();

    let mut fetches = 0;
    let mut tc_fetches = 0;
    let mut issues = 0;
    let mut executes = 0;
    let mut completes = 0;
    let mut retires = 0;
    let mut recovers = 0;
    let mut activates = 0;
    let mut last_cycle = 0;
    for (cycle, e) in sim.trace().events() {
        assert!(cycle >= last_cycle, "events must be time-ordered");
        last_cycle = cycle;
        match e {
            Event::Fetch { tc, .. } => {
                fetches += 1;
                tc_fetches += tc as u32;
            }
            Event::Issue { .. } => issues += 1,
            Event::Execute { done, .. } => {
                assert!(done > cycle, "execution must take at least a cycle");
                executes += 1;
            }
            Event::Complete { .. } => completes += 1,
            Event::Retire { .. } => retires += 1,
            Event::Recover { .. } => recovers += 1,
            Event::Activate { .. } => activates += 1,
            Event::Repair { .. } => panic!("clean run must not repair"),
        }
    }
    assert!(fetches > 100);
    assert!(tc_fetches > 0, "trace cache never supplied a bundle");
    assert!(issues >= retires, "cannot retire more than was issued");
    assert!(executes > 0 && completes > 0);
    assert_eq!(retires as u64, sim.stats().retired);
    assert!(recovers > 0, "the random branch must cause recoveries");
    // Whether rescues occur depends on where the divergent branch falls
    // within its segment; this program is known to produce them.
    assert!(activates > 0, "inactive issue must rescue at least once");

    // The renderer produces one line per event and mentions each kind.
    let text = sim.trace().render();
    assert_eq!(text.lines().count(), sim.trace().len());
    for needle in [
        "fetch", "issue", "execute", "complete", "retire", "recover", "activate",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in render");
    }
}

#[test]
fn tracing_does_not_change_timing() {
    let prog = tracefill_workloads::by_name("ijpeg")
        .unwrap()
        .program(20)
        .unwrap();
    let run = |depth| {
        let cfg = SimConfig {
            trace_depth: depth,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&prog, cfg);
        sim.run_instrs(50_000).unwrap();
        sim.cycle()
    };
    assert_eq!(run(0), run(4096), "tracing must be timing-transparent");
}
