//! Segment-lifetime-ledger guarantees: the ledger is purely
//! observational (ledger-on runs are bit-identical to ledger-off runs),
//! its attribution conserves the machine's own retire counters, its
//! accounting agrees with the cache and policy statistics, and its
//! report is byte-deterministic.

use tracefill_core::config::{OptConfig, ReplacementKind};
use tracefill_sim::{SimConfig, Simulator};
use tracefill_util::Json;

const BUDGET: u64 = 4_000;

fn run(bench: &str, mut cfg: SimConfig, ledger: bool) -> Simulator {
    cfg.ledger = ledger;
    let b = tracefill_workloads::by_name(bench).unwrap();
    let prog = b.program(b.scale_for(BUDGET * 2)).unwrap();
    let mut sim = Simulator::new(&prog, cfg);
    sim.run_instrs(BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    sim
}

/// The identity property from the issue: enabling the ledger must not
/// perturb the machine — same cycles, same stats, same CPI stack, same
/// trace-cache traffic — across the whole suite, and a ledger-off run
/// must not leak `ledger.*` keys into its report.
#[test]
fn ledger_off_and_on_are_bit_identical() {
    for bench in tracefill_workloads::names() {
        let off = run(bench, SimConfig::with_opts(OptConfig::all()), false);
        let on = run(bench, SimConfig::with_opts(OptConfig::all()), true);
        assert_eq!(off.cycle(), on.cycle(), "{bench}: cycles");
        assert_eq!(off.stats(), on.stats(), "{bench}: stats");
        assert_eq!(off.tcache_stats(), on.tcache_stats(), "{bench}: tcache");
        let (roff, ron) = (off.report(), on.report());
        assert_eq!(roff.cpi.to_json().dump(), ron.cpi.to_json().dump());
        assert!(
            roff.metrics
                .counters()
                .all(|(k, _)| !k.starts_with("ledger.")),
            "{bench}: ledger-off report must carry no ledger keys"
        );
        // Every non-ledger metric agrees between the two runs.
        for (k, v) in ron.metrics.counters() {
            if !k.starts_with("ledger.") {
                assert_eq!(roff.metrics.counter(k), v, "{bench}: metric {k}");
            }
        }
        assert!(!off.ledger().enabled());
        assert!(off.ledger().is_empty());
    }
}

/// Conservation: ≥ 99% of trace-cache-served retired uops must map back
/// to a ledgered segment. (In practice the attribution is exact — every
/// trace-cache uop carries its segment.)
#[test]
fn ledger_attribution_conserves_retired_from_tc() {
    for bench in tracefill_workloads::names() {
        let sim = run(bench, SimConfig::with_opts(OptConfig::all()), true);
        let from_tc = sim.stats().retired_from_tc;
        let attributed = sim.ledger().attributed_retired();
        assert!(
            attributed * 100 >= from_tc * 99,
            "{bench}: only {attributed}/{from_tc} tc-retired uops attributed"
        );
        assert!(
            attributed <= from_tc,
            "{bench}: attribution over-counts ({attributed} > {from_tc})"
        );
    }
}

/// The ledger's eviction/hit accounting agrees with both the trace
/// cache's statistics and the replacement policy's own counters.
#[test]
fn ledger_cache_and_policy_accounting_agree() {
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::Srrip,
        ReplacementKind::Trrip,
    ] {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.tcache.policy = kind;
        let sim = run("m88k", cfg, true);
        let tc = sim.tcache_stats();
        let pc = sim.tcache_policy_counters();
        assert_eq!(pc.hits, tc.hits, "{}: policy vs cache hits", kind.name());
        assert_eq!(
            pc.evictions,
            tc.evictions,
            "{}: policy vs cache evictions",
            kind.name()
        );
        let led = sim.ledger();
        let conflict = led
            .records()
            .filter(|r| matches!(r.evicted, Some((_, tracefill_core::EvictCause::Conflict))))
            .count() as u64;
        let refresh = led
            .records()
            .filter(|r| matches!(r.evicted, Some((_, tracefill_core::EvictCause::Refresh))))
            .count() as u64;
        let hits: u64 = led.records().map(|r| r.hits).sum();
        assert_eq!(conflict, tc.evictions, "{}: ledger conflicts", kind.name());
        assert_eq!(refresh, tc.refreshes, "{}: ledger refreshes", kind.name());
        assert_eq!(hits, tc.hits, "{}: ledger hits", kind.name());
        // Every cached fill is ledgered.
        assert_eq!(led.len() as u64, tc.fills, "{}: ledger fills", kind.name());
    }
}

/// Same configuration ⇒ byte-identical ledger report, and the report's
/// totals agree with the exported `ledger.*` metrics.
#[test]
fn ledger_report_is_byte_deterministic() {
    let a = run("m88k", SimConfig::with_opts(OptConfig::all()), true);
    let b = run("m88k", SimConfig::with_opts(OptConfig::all()), true);
    let ra = a.ledger().report(a.cycle(), 5).dump_pretty(2);
    let rb = b.ledger().report(b.cycle(), 5).dump_pretty(2);
    assert_eq!(ra, rb);
    let rep = a.ledger().report(a.cycle(), 5);
    let metrics = a.report().metrics;
    assert_eq!(
        rep.get("segments").and_then(Json::as_u64),
        Some(metrics.counter("ledger.segments"))
    );
    assert_eq!(
        rep.get("uops_retired").and_then(Json::as_u64),
        Some(metrics.counter("ledger.uops_retired"))
    );
    assert!(rep.get("segments").and_then(Json::as_u64).unwrap() > 0);
}

/// The ledger-enriched Chrome trace carries one `segment` span per
/// ledgered segment on its own (pid 1) track.
#[test]
fn chrome_trace_gains_segment_tracks() {
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.trace_depth = 4096;
    let sim = run("m88k", cfg, true);
    let base = sim.trace().to_chrome_trace();
    let enriched = sim
        .trace()
        .to_chrome_trace_with_ledger(sim.ledger(), sim.cycle());
    let n_base = base
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .len();
    let events = enriched.get("traceEvents").and_then(Json::as_arr).unwrap();
    let seg_spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("segment"))
        .collect();
    assert_eq!(events.len(), n_base + sim.ledger().len());
    assert_eq!(seg_spans.len(), sim.ledger().len());
    for s in seg_spans {
        assert_eq!(s.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(s.get("pid").and_then(Json::as_u64), Some(1));
        assert!(s.get("dur").and_then(Json::as_u64).unwrap() >= 1);
    }
}
