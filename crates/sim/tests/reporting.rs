//! Reports, serialization and diagnostic surfaces.

use tracefill_core::config::OptConfig;
use tracefill_sim::{SimConfig, Simulator};

fn small_sim() -> Simulator {
    let prog = tracefill_isa::asm::assemble(
        r#"
        .text
main:   li   $s0, 400
loop:   andi $t0, $s0, 7
        sll  $t1, $t0, 2
        add  $s1, $s1, $t1
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
    )
    .unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
    sim.run(10_000_000).unwrap();
    sim
}

#[test]
fn report_serializes_to_json_and_back() {
    let sim = small_sim();
    let report = sim.report();
    let text = report.to_json().dump();
    let back = tracefill_util::Json::parse(&text).unwrap();
    let stats = tracefill_sim::Stats::from_json(back.get("stats").unwrap());
    assert_eq!(stats.retired, report.stats.retired);
    assert_eq!(stats.cycles, report.stats.cycles);
    assert_eq!(
        back.get("tcache")
            .and_then(|t| t.get("hits"))
            .and_then(|v| v.as_u64()),
        Some(report.tcache.hits)
    );
    assert_eq!(
        back.get("fill_segments").and_then(|v| v.as_u64()),
        Some(report.fill_segments)
    );
}

#[test]
fn report_json_is_deterministic() {
    let a = small_sim().report().to_json().dump();
    let b = small_sim().report().to_json().dump();
    assert_eq!(a, b, "same run must produce byte-identical JSON");
    for key in [
        "\"stats\"",
        "\"tcache\"",
        "\"caches\"",
        "\"mean_segment_len\"",
    ] {
        assert!(a.contains(key), "missing {key} in {a}");
    }
}

#[test]
fn stats_are_internally_consistent() {
    let sim = small_sim();
    let s = sim.stats();
    assert!(s.retired > 0);
    assert!(s.cycles > 0);
    assert!(s.retired_from_tc <= s.retired);
    assert!(s.retired_moves + s.retired_reassoc + s.retired_scadd <= s.retired);
    assert!(s.bypass_delayed <= s.fu_executed);
    assert!(s.fu_executed <= s.retired);
    assert!(s.branch_mispredicts <= s.branches);
    assert!(s.indirect_mispredicts <= s.indirects);
    assert!(s.inactive_rescues <= s.branch_mispredicts);
    // Rates are well-formed probabilities.
    for rate in [
        s.ipc() / 16.0, // IPC bounded by fetch width
        s.transformed_fraction(),
        s.bypass_delay_fraction(),
        s.mispredict_rate(),
        s.tc_fraction(),
    ] {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of bounds");
    }
}

#[test]
fn cpi_stack_is_conservative_and_complete() {
    let sim = small_sim();
    let s = sim.stats();
    let cpi = sim.cpi();
    // Exact slot identity: every commit slot of every cycle is accounted.
    assert!(
        cpi.check_complete(),
        "sum of stack components {} != cycles {} x width {}",
        cpi.total_slots(),
        cpi.cycles,
        cpi.width
    );
    assert_eq!(cpi.cycles, s.cycles, "cpi stack covers every cycle");
    assert_eq!(cpi.base, s.retired, "base slots are exactly retirements");
    assert!(
        (cpi.ipc_from_base() - s.ipc()).abs() < 1e-9,
        "base must reproduce IPC: {} vs {}",
        cpi.ipc_from_base(),
        s.ipc()
    );
    // CPI contributions sum to the run's CPI.
    let total_cpi: f64 = cpi.cpi_of(cpi.base)
        + cpi
            .stall_slots()
            .iter()
            .map(|&(_, v)| cpi.cpi_of(v))
            .sum::<f64>();
    let run_cpi = s.cycles as f64 / s.retired as f64;
    assert!(
        (total_cpi - run_cpi).abs() < 1e-9,
        "stack CPI {total_cpi} != run CPI {run_cpi}"
    );
}

#[test]
fn fill_telemetry_reports_accepts_and_rejects() {
    let sim = small_sim();
    let report = sim.report();
    let m = &report.metrics;
    // Accepts are the single source of truth for Table 2: they agree with
    // the fill unit's build-time counts.
    let fill = sim.fill_stats();
    assert_eq!(m.counter("fill.moves.accept"), fill.opts.moves);
    assert_eq!(m.counter("fill.reassoc.accept"), fill.opts.reassoc);
    assert_eq!(m.counter("fill.scadd.accept"), fill.opts.scadd);
    assert_eq!(
        m.counter("fill.placement.accept"),
        fill.opts.placed_segments
    );
    // The workload's loop rebuilds segments; some candidates must have
    // been examined and rejected with a recorded reason.
    let rejects: u64 = m
        .counters_with_prefix("fill.reassoc.reject.")
        .chain(m.counters_with_prefix("fill.scadd.reject."))
        .map(|(_, v)| v)
        .sum();
    assert!(rejects > 0, "expected recorded reject reasons");
    // Retire-time mirrors consumed by the Table 2 path.
    assert_eq!(m.counter("retire.moves"), report.stats.retired_moves);
    assert_eq!(m.counter("retire.total"), report.stats.retired);
    // Distributions exist and are populated.
    let seg_len = m
        .histogram("fill.segment_len")
        .expect("segment-length histogram");
    assert_eq!(seg_len.count(), report.fill_segments);
    let occ = m
        .histogram("sim.window_occupancy")
        .expect("occupancy histogram");
    assert_eq!(occ.count(), report.stats.cycles);
}

#[test]
fn report_json_roundtrips_through_from_json() {
    let sim = small_sim();
    let report = sim.report();
    let text = report.to_json().dump();
    let back = tracefill_sim::Report::from_json(&tracefill_util::Json::parse(&text).unwrap());
    // Round trip is lossless: re-serializing produces identical bytes.
    assert_eq!(back.to_json().dump(), text);
    assert_eq!(back.stats, report.stats);
    assert_eq!(back.cpi, report.cpi);
    assert_eq!(
        back.metrics.counter("fill.moves.accept"),
        report.metrics.counter("fill.moves.accept")
    );
}

#[test]
fn dump_window_is_renderable_midflight() {
    let prog = tracefill_workloads::by_name("m88k")
        .unwrap()
        .program(50)
        .unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::default());
    sim.run_instrs(5_000).unwrap();
    let dump = sim.dump_window(12);
    assert!(dump.contains("cycle"));
    // At least the window header plus some uops.
    assert!(dump.lines().count() >= 2, "{dump}");
}

#[test]
fn fill_and_tcache_stats_are_exposed() {
    let sim = small_sim();
    let fill = sim.fill_stats();
    assert!(fill.segments > 0);
    assert!(fill.mean_segment_len() > 1.0);
    assert!(fill.opts.transformed_instrs() > 0);
    let tc = sim.tcache_stats();
    assert!(tc.fills >= fill.segments - 1); // every finalized segment is offered
    assert!(tc.hit_rate() > 0.0);
}
