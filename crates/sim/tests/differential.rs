//! Randomized differential testing against the functional oracle, plus
//! the fault-injection acceptance paths.
//!
//! * seeded random workloads × every optimization set must finish with the
//!   exact architectural state (registers, memory, output) the ISA
//!   interpreter computes — with the lockstep oracle *and* strict segment
//!   verification armed the whole way;
//! * a deliberately corrupted immediate must produce a structured
//!   [`DivergenceReport`] naming the faulted trace segment;
//! * strict mode must catch fill-side corruption at the cache boundary
//!   before it retires;
//! * fault injection must be bit-identical given the same seed.

use tracefill_core::config::OptConfig;
use tracefill_isa::interp::Interp;
use tracefill_isa::ArchReg;
use tracefill_sim::{FaultKind, FaultPlan, SimConfig, Simulator};
use tracefill_workloads::gen::{generate, PatternMix};

/// Every optimization set the paper evaluates (plus the CSE extension).
fn opt_sets() -> Vec<(&'static str, OptConfig)> {
    let one = |f: fn(&mut OptConfig)| {
        let mut o = OptConfig::none();
        f(&mut o);
        o
    };
    vec![
        ("none", OptConfig::none()),
        ("moves", one(|o| o.moves = true)),
        ("reassoc", one(|o| o.reassoc = true)),
        ("scadd", one(|o| o.scadd = true)),
        ("placement", one(|o| o.placement = true)),
        ("cse", one(|o| o.cse = true)),
        ("all", OptConfig::all()),
        ("all+cse", {
            let mut o = OptConfig::all();
            o.cse = true;
            o
        }),
    ]
}

/// Runs `prog` through the pipeline (oracle + strict verify on) and through
/// the interpreter, then compares the complete architectural state.
fn assert_matches_interp(prog: &tracefill_isa::Program, label: &str, seed: u64) {
    let mut oracle = Interp::new(prog);
    let halt = oracle.run(10_000_000).expect("interpreter must halt");

    let mut sim = Simulator::new(prog, SimConfig::with_opts(opt_sets_lookup(label)));
    sim.run(50_000_000).unwrap_or_else(|e| {
        panic!("seed {seed} opts={label}: pipeline diverged:\n{e}");
    });

    assert_eq!(
        sim.halted(),
        Some(halt),
        "seed {seed} opts={label}: halt state"
    );
    assert_eq!(
        sim.io().output,
        oracle.io().output,
        "seed {seed} opts={label}: output stream"
    );
    for r in ArchReg::all() {
        assert_eq!(
            sim.arch_reg(r),
            oracle.reg(r),
            "seed {seed} opts={label}: final value of {r}"
        );
    }
    if let Some(addr) = sim.mem().diff(oracle.mem()) {
        panic!("seed {seed} opts={label}: memory differs at {addr:#010x}");
    }
}

fn opt_sets_lookup(label: &str) -> OptConfig {
    opt_sets()
        .into_iter()
        .find(|(l, _)| *l == label)
        .map(|(_, o)| o)
        .unwrap()
}

#[test]
fn randomized_workloads_match_interp_under_every_opt_set() {
    for seed in 1..=4u64 {
        // Vary the mix with the seed so different seeds stress different
        // optimization passes.
        let mix = PatternMix {
            moves: 1 + (seed % 3) as u32,
            imm_chains: 1 + ((seed >> 2) % 3) as u32,
            shift_adds: 1 + ((seed >> 4) % 3) as u32,
            alu: 4,
            memory: 2,
        };
        let prog = generate(&mix, 24, 30, seed).unwrap();
        for (label, _) in opt_sets() {
            assert_matches_interp(&prog, label, seed);
        }
    }
}

#[test]
fn corrupted_immediate_produces_attributed_divergence_report() {
    let prog = generate(&PatternMix::default(), 24, 200, 11).unwrap();
    // Read-path strikes bypass the fill-side verifier entirely, so the
    // oracle is the only checker left — exactly the layer under test.
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.fill.strict_verify = false;
    cfg.fault_plan = Some(FaultPlan::generate(
        5,
        16,
        64,
        &[FaultKind::BitFlipLookup, FaultKind::CorruptImm],
    ));
    let mut sim = Simulator::new(&prog, cfg);
    let err = sim
        .run(50_000_000)
        .expect_err("a corrupted immediate must not retire silently");
    let rep = err
        .divergence()
        .expect("the error must be a structured divergence report");
    assert!(rep.cycle > 0);
    assert!(!rep.expected.is_empty() && !rep.actual.is_empty());
    let src = rep
        .provenance
        .as_ref()
        .expect("the report must name the originating trace segment");
    assert!(
        src.fault.is_some(),
        "the segment's provenance must carry the injected-fault note, got {src:?}"
    );
    assert!(
        !rep.recent.is_empty(),
        "the retired-instruction ring must be populated"
    );
    // The report serializes for machine consumption.
    let js = rep.to_json().dump();
    assert!(js.contains("\"kind\""));
}

#[test]
fn strict_mode_catches_fill_side_corruption_at_the_cache_boundary() {
    let prog = generate(&PatternMix::default(), 24, 200, 3).unwrap();
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.fault_plan = Some(FaultPlan::generate(
        9,
        12,
        48,
        &[FaultKind::CorruptImm, FaultKind::BitFlipFill],
    ));
    let mut sim = Simulator::new(&prog, cfg);
    // Strict mode drops corrupted segments before they can retire, so the
    // run completes *correctly*…
    let mut oracle = Interp::new(&prog);
    let halt = oracle.run(10_000_000).unwrap();
    sim.run(50_000_000).unwrap_or_else(|e| {
        panic!("strict mode should contain fill-side corruption:\n{e}");
    });
    assert_eq!(sim.halted(), Some(halt));
    assert_eq!(sim.io().output, oracle.io().output);
    // …and the detections are visible in the metrics.
    assert!(sim.faults_fired() > 0, "the plan must actually fire");
    assert!(
        sim.report().metrics.counter("fault.detected.fill_verify") > 0,
        "strict verification must report the dropped segments"
    );
}

#[test]
fn fault_injection_is_bit_identical_given_the_same_seed() {
    let prog = generate(&PatternMix::default(), 24, 100, 17).unwrap();
    let run = |seed: u64| {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.fill.strict_verify = false;
        cfg.oracle_check = false; // measure, do not abort
        cfg.fault_plan = Some(FaultPlan::generate(seed, 8, 256, &FaultKind::ALL));
        let mut sim = Simulator::new(&prog, cfg);
        let exit = sim.run(50_000_000).map_err(|e| e.to_string());
        (
            format!("{exit:?}"),
            sim.faults_fired(),
            sim.io().output.clone(),
            sim.report().to_json().dump(),
        )
    };
    let a = run(21);
    let b = run(21);
    assert_eq!(a.0, b.0, "exit state must be deterministic");
    assert_eq!(a.1, b.1, "fired-fault count must be deterministic");
    assert_eq!(a.2, b.2, "output stream must be deterministic");
    assert_eq!(a.3, b.3, "the full report JSON must be byte-identical");
    let c = run(22);
    assert_ne!(
        (a.1, &a.3),
        (c.1, &c.3),
        "a different seed should perturb the run (plan or report)"
    );
}

#[test]
fn dropped_and_stalled_segments_never_corrupt_architecture() {
    // Drop/stall faults are pure performance events; under the oracle the
    // run must still complete with correct state.
    let prog = generate(&PatternMix::default(), 24, 120, 29).unwrap();
    let mut oracle = Interp::new(&prog);
    let halt = oracle.run(10_000_000).unwrap();
    let mut cfg = SimConfig::with_opts(OptConfig::all());
    cfg.fault_plan = Some(FaultPlan::generate(
        31,
        10,
        64,
        &[FaultKind::DropSegment, FaultKind::StallFill],
    ));
    let mut sim = Simulator::new(&prog, cfg);
    sim.run(50_000_000)
        .unwrap_or_else(|e| panic!("drop/stall must be architecturally invisible:\n{e}"));
    assert_eq!(sim.halted(), Some(halt));
    assert_eq!(sim.io().output, oracle.io().output);
}
