//! Structured divergence reporting for the lockstep oracle.
//!
//! The simulator drives the functional interpreter
//! ([`tracefill_isa::interp::Interp`]) in lockstep at retirement: every
//! retired instruction's PC, destination write, memory effect and control
//! flow are compared against the interpreter's ground truth. When they
//! disagree, the run aborts with a [`DivergenceReport`] instead of a bare
//! mismatch string: the report carries the divergence site, the expected
//! and observed effects, a ring buffer of the last N retirements
//! ([`RetireEcho`]) and — when the diverging instruction was fetched from
//! the trace cache — the provenance of the originating segment
//! ([`SegSource`]): its fill-unit id, which optimization passes rewrote
//! it, and any injected-fault note. This is what lets a corrupted trace
//! line be attributed to the exact segment (and pass set) that produced
//! it.

use std::fmt;
use tracefill_core::segment::Segment;
use tracefill_isa::Instr;
use tracefill_util::Json;

/// One retired instruction echoed into the divergence ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetireEcho {
    /// Cycle of retirement.
    pub cycle: u64,
    /// Retire sequence number (0-based).
    pub seq: u64,
    /// PC.
    pub pc: u32,
    /// The architectural instruction.
    pub instr: Instr,
    /// Whether it was fetched from the trace cache.
    pub from_tc: bool,
    /// Fill-unit id of the originating segment, if fetched from the TC.
    pub seg_id: Option<u64>,
}

impl fmt::Display for RetireEcho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>8} seq {:>8} {:#010x} `{}`",
            self.cycle, self.seq, self.pc, self.instr
        )?;
        match self.seg_id {
            Some(id) => write!(f, "  [tc seg#{id}]"),
            None if self.from_tc => write!(f, "  [tc]"),
            None => write!(f, "  [ic]"),
        }
    }
}

/// Provenance of the trace segment a diverging instruction came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegSource {
    /// Fill-unit id of the segment.
    pub seg_id: u64,
    /// Segment start address.
    pub start_pc: u32,
    /// Number of instruction slots.
    pub len: usize,
    /// Optimization passes that transformed the segment.
    pub passes: Vec<&'static str>,
    /// Injected-fault note, if the segment was deliberately corrupted.
    pub fault: Option<String>,
}

impl SegSource {
    /// Extracts provenance from a segment.
    pub fn of(seg: &Segment) -> SegSource {
        SegSource {
            seg_id: seg.provenance.seg_id,
            start_pc: seg.start_pc,
            len: seg.slots.len(),
            passes: seg.provenance.passes(),
            fault: seg.provenance.fault.clone(),
        }
    }
}

impl fmt::Display for SegSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seg#{} @{:#010x} len={} passes=[{}]",
            self.seg_id,
            self.start_pc,
            self.len,
            self.passes.join(",")
        )?;
        if let Some(fault) = &self.fault {
            write!(f, " fault={fault}")?;
        }
        Ok(())
    }
}

/// A structured lockstep-divergence report: everything needed to attribute
/// a wrong retirement to its cause without rerunning the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Cycle of the divergence.
    pub cycle: u64,
    /// Retire sequence number of the diverging instruction.
    pub seq: u64,
    /// PC at the divergence site.
    pub pc: u32,
    /// What diverged: `stream`, `register-effect`, `store-effect`,
    /// `branch-direction`, `indirect-target`, `syscall` or
    /// `segment-verify`.
    pub kind: &'static str,
    /// The oracle's expectation.
    pub expected: String,
    /// What the pipeline produced.
    pub actual: String,
    /// The last N retirements, oldest first (the diverging instruction is
    /// last when it got far enough to be echoed).
    pub recent: Vec<RetireEcho>,
    /// Provenance of the originating trace segment, when the diverging
    /// instruction was supplied by the trace cache.
    pub provenance: Option<SegSource>,
}

impl DivergenceReport {
    /// Serializes the report for machine consumption (`tracefill verify`).
    pub fn to_json(&self) -> Json {
        let mut v = Json::object()
            .with("cycle", self.cycle)
            .with("seq", self.seq)
            .with("pc", u64::from(self.pc))
            .with("kind", self.kind)
            .with("expected", self.expected.as_str())
            .with("actual", self.actual.as_str());
        if let Some(p) = &self.provenance {
            v = v.with(
                "segment",
                Json::object()
                    .with("seg_id", p.seg_id)
                    .with("start_pc", u64::from(p.start_pc))
                    .with("len", p.len)
                    .with(
                        "passes",
                        Json::Arr(p.passes.iter().map(|s| Json::from(*s)).collect()),
                    )
                    .with(
                        "fault",
                        p.fault.as_deref().map(Json::from).unwrap_or(Json::Null),
                    ),
            );
        }
        v = v.with(
            "recent",
            Json::Arr(
                self.recent
                    .iter()
                    .map(|e| {
                        Json::object()
                            .with("cycle", e.cycle)
                            .with("seq", e.seq)
                            .with("pc", u64::from(e.pc))
                            .with("instr", e.instr.to_string())
                            .with("from_tc", e.from_tc)
                            .with("seg_id", e.seg_id.map(Json::from).unwrap_or(Json::Null))
                    })
                    .collect(),
            ),
        );
        v
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lockstep divergence ({}) at cycle {}, seq {}, pc {:#010x}",
            self.kind, self.cycle, self.seq, self.pc
        )?;
        writeln!(f, "  expected: {}", self.expected)?;
        writeln!(f, "  actual:   {}", self.actual)?;
        match &self.provenance {
            Some(p) => writeln!(f, "  segment:  {p}")?,
            None => writeln!(f, "  segment:  (not a trace-cache fetch)")?,
        }
        if !self.recent.is_empty() {
            writeln!(f, "  last {} retirements:", self.recent.len())?;
            for e in &self.recent {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracefill_isa::instr::NOP;

    fn sample() -> DivergenceReport {
        DivergenceReport {
            cycle: 123,
            seq: 45,
            pc: 0x40_0010,
            kind: "register-effect",
            expected: "$t0 = 0x5".to_string(),
            actual: "$t0 = 0x6".to_string(),
            recent: vec![RetireEcho {
                cycle: 122,
                seq: 44,
                pc: 0x40_000c,
                instr: NOP,
                from_tc: true,
                seg_id: Some(7),
            }],
            provenance: Some(SegSource {
                seg_id: 7,
                start_pc: 0x40_0000,
                len: 5,
                passes: vec!["moves", "reassoc"],
                fault: Some("corrupt-imm slot=2".to_string()),
            }),
        }
    }

    #[test]
    fn display_names_segment_and_fault() {
        let text = sample().to_string();
        assert!(text.contains("register-effect"), "{text}");
        assert!(text.contains("seg#7"), "{text}");
        assert!(text.contains("passes=[moves,reassoc]"), "{text}");
        assert!(text.contains("corrupt-imm"), "{text}");
        assert!(text.contains("last 1 retirements"), "{text}");
    }

    #[test]
    fn json_round_shape() {
        let v = sample().to_json();
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some("register-effect")
        );
        let seg = v.get("segment").expect("segment present");
        assert_eq!(seg.get("seg_id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            seg.get("passes").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            v.get("recent").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
    }
}
