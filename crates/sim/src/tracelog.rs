//! Pipeline event tracing.
//!
//! When enabled ([`SimConfig::trace_depth`] > 0), the simulator records
//! one event per pipeline transition into a bounded ring buffer. The log
//! is the tool for answering "why did this instruction wait six cycles?"
//! without printf-debugging the pipeline — pair it with
//! [`Simulator::dump_window`] for a full picture.
//!
//! Tracing is off by default and costs one predictable branch per event
//! site when disabled.
//!
//! [`SimConfig::trace_depth`]: crate::config::SimConfig::trace_depth
//! [`Simulator::dump_window`]: crate::Simulator::dump_window

use std::collections::VecDeque;
use std::fmt;

/// What happened to a uop (or to the machine) at one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A bundle of `count` instructions was fetched at `pc` (from the
    /// trace cache if `tc`).
    Fetch {
        /// Fetch address.
        pc: u32,
        /// Instructions delivered.
        count: u8,
        /// Source was the trace cache.
        tc: bool,
    },
    /// A uop entered the window (renamed/dispatched).
    Issue {
        /// The uop.
        uop: u64,
        /// Its PC.
        pc: u32,
        /// Functional unit (issue slot).
        fu: u8,
        /// Issued inactively (shadow).
        inactive: bool,
    },
    /// A uop began execution on its functional unit.
    Execute {
        /// The uop.
        uop: u64,
        /// Completion cycle.
        done: u64,
    },
    /// A uop's result became visible.
    Complete {
        /// The uop.
        uop: u64,
    },
    /// A uop retired.
    Retire {
        /// The uop.
        uop: u64,
        /// Its PC.
        pc: u32,
    },
    /// Misprediction recovery squashed everything younger than `anchor`.
    Recover {
        /// The branch recovery restarted from.
        anchor: u64,
        /// New fetch address.
        redirect: u32,
    },
    /// A shadow (inactive-issue) context was activated.
    Activate {
        /// The divergence branch.
        anchor: u64,
        /// Uops promoted into the window.
        count: u32,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Fetch { pc, count, tc } => write!(
                f,
                "fetch   {pc:#010x} x{count} [{}]",
                if tc { "tcache" } else { "icache" }
            ),
            Event::Issue {
                uop,
                pc,
                fu,
                inactive,
            } => write!(
                f,
                "issue   u{uop} pc={pc:#010x} fu={fu}{}",
                if inactive { " (inactive)" } else { "" }
            ),
            Event::Execute { uop, done } => write!(f, "execute u{uop} done@{done}"),
            Event::Complete { uop } => write!(f, "complete u{uop}"),
            Event::Retire { uop, pc } => write!(f, "retire  u{uop} pc={pc:#010x}"),
            Event::Recover { anchor, redirect } => {
                write!(f, "recover @u{anchor} -> {redirect:#010x}")
            }
            Event::Activate { anchor, count } => {
                write!(f, "activate shadow @u{anchor} ({count} uops)")
            }
        }
    }
}

/// A bounded ring buffer of timestamped pipeline events.
#[derive(Debug, Default)]
pub struct TraceLog {
    depth: usize,
    events: VecDeque<(u64, Event)>,
}

impl TraceLog {
    /// Creates a log keeping the most recent `depth` events (0 disables).
    pub fn new(depth: usize) -> TraceLog {
        TraceLog {
            depth,
            events: VecDeque::with_capacity(depth.min(4096)),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Records one event at `cycle`.
    #[inline]
    pub fn push(&mut self, cycle: u64, event: Event) {
        if self.depth == 0 {
            return;
        }
        if self.events.len() == self.depth {
            self.events.pop_front();
        }
        self.events.push_back((cycle, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.events.iter().copied()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the retained events as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (cycle, e) in self.events() {
            let _ = writeln!(s, "[{cycle:>8}] {e}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        assert!(!log.enabled());
        log.push(1, Event::Complete { uop: 1 });
        assert!(log.is_empty());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut log = TraceLog::new(3);
        for i in 0..10 {
            log.push(i, Event::Complete { uop: i });
        }
        let kept: Vec<u64> = log.events().map(|(c, _)| c).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut log = TraceLog::new(8);
        log.push(
            5,
            Event::Fetch {
                pc: 0x400000,
                count: 16,
                tc: true,
            },
        );
        log.push(
            6,
            Event::Issue {
                uop: 3,
                pc: 0x400000,
                fu: 2,
                inactive: false,
            },
        );
        log.push(
            9,
            Event::Recover {
                anchor: 3,
                redirect: 0x400040,
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("tcache"));
        assert!(text.contains("recover @u3"));
    }
}
