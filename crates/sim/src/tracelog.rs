//! Pipeline event tracing.
//!
//! When enabled ([`SimConfig::trace_depth`] > 0), the simulator records
//! one event per pipeline transition into a bounded ring buffer. The log
//! is the tool for answering "why did this instruction wait six cycles?"
//! without printf-debugging the pipeline — pair it with
//! [`Simulator::dump_window`] for a full picture.
//!
//! Tracing is off by default and costs one predictable branch per event
//! site when disabled.
//!
//! [`SimConfig::trace_depth`]: crate::config::SimConfig::trace_depth
//! [`Simulator::dump_window`]: crate::Simulator::dump_window

use std::collections::VecDeque;
use std::fmt;
use tracefill_util::Json;

/// What happened to a uop (or to the machine) at one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A bundle of `count` instructions was fetched at `pc` (from the
    /// trace cache if `tc`).
    Fetch {
        /// Fetch address.
        pc: u32,
        /// Instructions delivered.
        count: u8,
        /// Source was the trace cache.
        tc: bool,
    },
    /// A uop entered the window (renamed/dispatched).
    Issue {
        /// The uop.
        uop: u64,
        /// Its PC.
        pc: u32,
        /// Functional unit (issue slot).
        fu: u8,
        /// Issued inactively (shadow).
        inactive: bool,
    },
    /// A uop began execution on its functional unit.
    Execute {
        /// The uop.
        uop: u64,
        /// Completion cycle.
        done: u64,
    },
    /// A uop's result became visible.
    Complete {
        /// The uop.
        uop: u64,
    },
    /// A uop retired.
    Retire {
        /// The uop.
        uop: u64,
        /// Its PC.
        pc: u32,
    },
    /// Misprediction recovery squashed everything younger than `anchor`.
    Recover {
        /// The branch recovery restarted from.
        anchor: u64,
        /// New fetch address.
        redirect: u32,
    },
    /// A shadow (inactive-issue) context was activated.
    Activate {
        /// The divergence branch.
        anchor: u64,
        /// Uops promoted into the window.
        count: u32,
    },
    /// Self-repair contained a divergence: full squash, architectural
    /// restore from the oracle, and a redirect down the conventional path.
    Repair {
        /// PC at the divergence site.
        pc: u32,
        /// New fetch address (the oracle's next PC).
        redirect: u32,
    },
}

impl Event {
    /// The event's kind tag, as used in the machine-readable exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Fetch { .. } => "fetch",
            Event::Issue { .. } => "issue",
            Event::Execute { .. } => "execute",
            Event::Complete { .. } => "complete",
            Event::Retire { .. } => "retire",
            Event::Recover { .. } => "recover",
            Event::Activate { .. } => "activate",
            Event::Repair { .. } => "repair",
        }
    }

    /// The event's payload fields as a flat JSON object (no kind/cycle —
    /// the exporters add those).
    #[must_use]
    pub fn fields_json(&self) -> Json {
        match *self {
            Event::Fetch { pc, count, tc } => Json::object()
                .with("pc", pc)
                .with("count", count as u32)
                .with("tc", tc),
            Event::Issue {
                uop,
                pc,
                fu,
                inactive,
            } => Json::object()
                .with("uop", uop)
                .with("pc", pc)
                .with("fu", fu as u32)
                .with("inactive", inactive),
            Event::Execute { uop, done } => Json::object().with("uop", uop).with("done", done),
            Event::Complete { uop } => Json::object().with("uop", uop),
            Event::Retire { uop, pc } => Json::object().with("uop", uop).with("pc", pc),
            Event::Recover { anchor, redirect } => Json::object()
                .with("anchor", anchor)
                .with("redirect", redirect),
            Event::Activate { anchor, count } => {
                Json::object().with("anchor", anchor).with("count", count)
            }
            Event::Repair { pc, redirect } => {
                Json::object().with("pc", pc).with("redirect", redirect)
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Fetch { pc, count, tc } => write!(
                f,
                "fetch   {pc:#010x} x{count} [{}]",
                if tc { "tcache" } else { "icache" }
            ),
            Event::Issue {
                uop,
                pc,
                fu,
                inactive,
            } => write!(
                f,
                "issue   u{uop} pc={pc:#010x} fu={fu}{}",
                if inactive { " (inactive)" } else { "" }
            ),
            Event::Execute { uop, done } => write!(f, "execute u{uop} done@{done}"),
            Event::Complete { uop } => write!(f, "complete u{uop}"),
            Event::Retire { uop, pc } => write!(f, "retire  u{uop} pc={pc:#010x}"),
            Event::Recover { anchor, redirect } => {
                write!(f, "recover @u{anchor} -> {redirect:#010x}")
            }
            Event::Activate { anchor, count } => {
                write!(f, "activate shadow @u{anchor} ({count} uops)")
            }
            Event::Repair { pc, redirect } => {
                write!(f, "repair  pc={pc:#010x} -> {redirect:#010x}")
            }
        }
    }
}

/// A bounded ring buffer of timestamped pipeline events.
#[derive(Debug, Default)]
pub struct TraceLog {
    depth: usize,
    events: VecDeque<(u64, Event)>,
}

impl TraceLog {
    /// Creates a log keeping the most recent `depth` events (0 disables).
    pub fn new(depth: usize) -> TraceLog {
        TraceLog {
            depth,
            events: VecDeque::with_capacity(depth.min(4096)),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Records one event at `cycle`.
    #[inline]
    pub fn push(&mut self, cycle: u64, event: Event) {
        if self.depth == 0 {
            return;
        }
        if self.events.len() == self.depth {
            self.events.pop_front();
        }
        self.events.push_back((cycle, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.events.iter().copied()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the retained events as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (cycle, e) in self.events() {
            let _ = writeln!(s, "[{cycle:>8}] {e}");
        }
        s
    }

    /// Renders the retained events as JSON Lines: one object per event,
    /// `{"cycle": N, "kind": "...", ...payload}`, oldest first. Every line
    /// parses with [`Json::parse`] and the output is deterministic for
    /// identical runs.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (cycle, e) in self.events() {
            let mut obj = Json::object().with("cycle", cycle).with("kind", e.kind());
            if let Some(fields) = e.fields_json().as_obj() {
                for (k, v) in fields {
                    obj = obj.with(k.as_str(), v.clone());
                }
            }
            let _ = writeln!(s, "{}", obj.dump());
        }
        s
    }

    /// Renders the retained events in the Chrome `trace_event` JSON format
    /// (the object form, `{"traceEvents": [...]}`), loadable by
    /// `chrome://tracing` and Perfetto.
    ///
    /// One simulated cycle maps to one microsecond of trace time.
    /// [`Event::Execute`] becomes a complete-duration event (`ph: "X"`,
    /// `dur` = execution latency); every other event becomes a
    /// thread-scoped instant (`ph: "i"`). Per-uop events are spread over
    /// 16 lanes (`tid` = `uop % 16 + 1`, mirroring the machine's issue
    /// width); machine-level events (fetch/recover/activate) sit on
    /// `tid` 0.
    #[must_use]
    pub fn to_chrome_trace(&self) -> Json {
        let mut events = Vec::new();
        for (cycle, e) in self.events() {
            let tid: u64 = match e {
                Event::Fetch { .. }
                | Event::Recover { .. }
                | Event::Activate { .. }
                | Event::Repair { .. } => 0,
                Event::Issue { uop, .. }
                | Event::Execute { uop, .. }
                | Event::Complete { uop }
                | Event::Retire { uop, .. } => uop % 16 + 1,
            };
            let name = match e {
                Event::Fetch { pc, .. } => format!("fetch {pc:#010x}"),
                Event::Issue { uop, .. } => format!("issue u{uop}"),
                Event::Execute { uop, .. } => format!("exec u{uop}"),
                Event::Complete { uop } => format!("complete u{uop}"),
                Event::Retire { uop, .. } => format!("retire u{uop}"),
                Event::Recover { anchor, .. } => format!("recover @u{anchor}"),
                Event::Activate { anchor, .. } => format!("activate @u{anchor}"),
                Event::Repair { pc, .. } => format!("repair {pc:#010x}"),
            };
            let mut obj = Json::object()
                .with("name", name)
                .with("cat", e.kind())
                .with("ts", cycle)
                .with("pid", 0u64)
                .with("tid", tid);
            obj = match e {
                Event::Execute { done, .. } => obj
                    .with("ph", "X")
                    .with("dur", done.saturating_sub(cycle).max(1)),
                _ => obj.with("ph", "i").with("s", "t"),
            };
            obj = obj.with("args", e.fields_json());
            events.push(obj);
        }
        Json::object()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
    }

    /// [`to_chrome_trace`](Self::to_chrome_trace) enriched with the
    /// segment lifetime ledger: each ledgered segment's whole cache life
    /// renders as one complete-duration span (insert cycle → eviction
    /// cycle, or `now` for still-resident lines) on its own track
    /// (`pid` 1, `tid` = segment id), annotated with its hit count,
    /// retired-uop count, pass attribution, and fate.
    #[must_use]
    pub fn to_chrome_trace_with_ledger(
        &self,
        ledger: &tracefill_core::ledger::Ledger,
        now: u64,
    ) -> Json {
        let base = self.to_chrome_trace();
        let mut events: Vec<Json> = base
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        for span in ledger.spans(now) {
            events.push(
                Json::object()
                    .with(
                        "name",
                        format!("seg {} @{:#010x}", span.seg_id, span.start_pc),
                    )
                    .with("cat", "segment")
                    .with("ts", span.insert_cycle)
                    .with("pid", 1u64)
                    .with("tid", span.seg_id)
                    .with("ph", "X")
                    .with(
                        "dur",
                        span.end_cycle.saturating_sub(span.insert_cycle).max(1),
                    )
                    .with(
                        "args",
                        Json::object()
                            .with("hits", span.hits)
                            .with("uops_retired", span.uops_retired)
                            .with(
                                "passes",
                                Json::Arr(span.passes.into_iter().map(Json::from).collect()),
                            )
                            .with("fate", span.fate),
                    ),
            );
        }
        Json::object()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        assert!(!log.enabled());
        log.push(1, Event::Complete { uop: 1 });
        assert!(log.is_empty());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut log = TraceLog::new(3);
        for i in 0..10 {
            log.push(i, Event::Complete { uop: i });
        }
        let kept: Vec<u64> = log.events().map(|(c, _)| c).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut log = TraceLog::new(8);
        log.push(
            5,
            Event::Fetch {
                pc: 0x400000,
                count: 16,
                tc: true,
            },
        );
        log.push(
            6,
            Event::Issue {
                uop: 3,
                pc: 0x400000,
                fu: 2,
                inactive: false,
            },
        );
        log.push(
            9,
            Event::Recover {
                anchor: 3,
                redirect: 0x400040,
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("tcache"));
        assert!(text.contains("recover @u3"));
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new(16);
        log.push(
            5,
            Event::Fetch {
                pc: 0x40_0000,
                count: 16,
                tc: true,
            },
        );
        log.push(
            6,
            Event::Issue {
                uop: 3,
                pc: 0x40_0000,
                fu: 2,
                inactive: false,
            },
        );
        log.push(7, Event::Execute { uop: 3, done: 9 });
        log.push(9, Event::Complete { uop: 3 });
        log.push(
            10,
            Event::Retire {
                uop: 3,
                pc: 0x40_0000,
            },
        );
        log.push(
            11,
            Event::Recover {
                anchor: 3,
                redirect: 0x40_0040,
            },
        );
        log
    }

    #[test]
    fn jsonl_lines_parse_and_carry_cycle_and_kind() {
        let log = sample_log();
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), log.len());
        for line in &lines {
            let v = Json::parse(line).expect("every JSONL line parses");
            assert!(v.get("cycle").and_then(Json::as_u64).is_some());
            assert!(v.get("kind").and_then(Json::as_str).is_some());
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("fetch"));
        assert_eq!(first.get("tc").and_then(Json::as_bool), Some(true));
        // Deterministic across renders.
        assert_eq!(text, log.to_jsonl());
    }

    #[test]
    fn chrome_trace_has_durations_and_instants() {
        let log = sample_log();
        let v = log.to_chrome_trace();
        let events = v
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), log.len());
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|&&p| p == "X").count(), 1);
        assert!(phases.iter().all(|&p| p == "X" || p == "i"));
        // The execute event spans its latency.
        let exec = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(exec.get("ts").and_then(Json::as_u64), Some(7));
        assert_eq!(exec.get("dur").and_then(Json::as_u64), Some(2));
        // Every event has the mandatory trace_event members.
        for e in events {
            for key in ["name", "cat", "ts", "pid", "tid", "ph"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
    }
}
