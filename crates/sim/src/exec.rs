//! Schedule/execute stage: per-FU selection, the conservative memory
//! scheduler, value computation, and the completion phase that resolves
//! branches.

use crate::machine::Simulator;
use crate::physreg::NEVER;
use crate::uop::{UopId, UopState};
use tracefill_isa::op::OpKind;
use tracefill_isa::semantics::{alu_result, branch_taken, effective_addr, extend_load};
use tracefill_uarch::hierarchy::Side;

/// What the memory scheduler allows a ready load to do.
enum LoadAction {
    /// Forward this value from an in-flight store.
    Forward(u32),
    /// Access the data cache.
    Memory,
    /// Not yet: an older store blocks it.
    Blocked,
}

impl Simulator {
    /// Completion phase: results whose latency elapsed become visible and
    /// branches resolve (oldest first, so an older recovery squashes the
    /// younger completions before they act).
    pub(crate) fn phase_complete(&mut self) {
        let Some(ids) = self.completions.remove(&self.cycle) else {
            return;
        };
        let mut ids = ids;
        ids.sort_unstable();
        for id in ids {
            // The uop may have been squashed since it started executing.
            let Some(u) = self.uops.get_mut(&id) else {
                continue;
            };
            if !matches!(u.state, UopState::Executing { done } if done == self.cycle) {
                continue;
            }
            u.state = UopState::Done;
            let is_branch = u.branch.is_some() && (u.op.is_cond_branch() || u.op.is_indirect());
            let trace_id = u.id;
            let inactive = u.inactive;
            if self.trace.enabled() {
                self.trace.push(
                    self.cycle,
                    crate::tracelog::Event::Complete { uop: trace_id },
                );
            }
            if is_branch {
                if let Some(b) = self.uops.get_mut(&id).and_then(|u| u.branch.as_mut()) {
                    b.resolved = true;
                }
                if !inactive {
                    self.resolve_branch(id);
                }
                // Inactive branches just record their outcome; activation
                // acts on it.
            }
        }
    }

    /// Acts on a resolved active branch: recovery, shadow activation or
    /// shadow discard.
    pub(crate) fn resolve_branch(&mut self, id: UopId) {
        let u = &self.uops[&id];
        let b = u.branch.as_ref().expect("resolved uop is a branch");
        if u.op.is_cond_branch() {
            let actual = b.actual_taken.expect("resolved branch has outcome");
            let predicted = b.pred_taken.expect("fetched branch was predicted");
            if actual == predicted {
                // Correct prediction: discard any shadow.
                self.drop_shadow(id);
                return;
            }
            // Mispredicted. If the trace's embedded path was right and its
            // blocks were issued inactively, activate them instead of
            // refetching (paper §3, inactive issue).
            let has_matching_shadow = self
                .shadows
                .get(&id)
                .is_some_and(|_| b.embedded == Some(actual));
            if has_matching_shadow {
                self.activate_shadow(id);
            } else {
                let redirect = b.actual_next.expect("resolved branch has next pc");
                self.recover_at(id, redirect);
            }
        } else {
            // Indirect jump: compare targets.
            let actual = b.actual_next.expect("resolved indirect has target");
            let predicted = b.pred_target.unwrap_or(actual.wrapping_add(4));
            if actual != predicted {
                self.recover_at(id, actual);
            }
        }
    }

    /// Execute phase: address pre-generation for stores, then per-FU
    /// select-and-execute of the oldest ready uop.
    pub(crate) fn phase_execute(&mut self) {
        // Stores publish their addresses as soon as the base register is
        // available (a dedicated AGEN port, as in machines that split
        // stores into address and data uops). The conservative scheduler
        // ("no memory operation bypasses a store with an unknown address")
        // depends on addresses appearing promptly.
        let now = self.cycle;
        let store_ids: Vec<UopId> = self
            .lsq
            .iter()
            .copied()
            .filter(|id| {
                self.uops.get(id).is_some_and(|u| {
                    u.mem
                        .as_ref()
                        .is_some_and(|m| !m.is_load && m.addr.is_none())
                })
            })
            .collect();
        for id in store_ids {
            let u = &self.uops[&id];
            let cluster = self.cluster_of(u.fu);
            let base_ok = u.srcs[0]
                .map(|p| self.phys.avail_at(p, cluster) <= now)
                .unwrap_or(true);
            if base_ok {
                let base = u.srcs[0].map(|p| self.phys.value(p)).unwrap_or(0);
                let base = self.apply_scadd(&self.uops[&id], 0, base);
                let addr = effective_addr(u.op, base, 0, u.imm);
                self.uops.get_mut(&id).unwrap().mem.as_mut().unwrap().addr = Some(addr);
            }
        }

        // Per-FU select: oldest ready entry.
        for fu in 0..self.rs.len() {
            let mut best: Option<UopId> = None;
            for &id in &self.rs[fu] {
                let Some(u) = self.uops.get(&id) else {
                    continue;
                };
                if u.state != UopState::Waiting || u.mem_deferred {
                    continue;
                }
                if !self.srcs_ready(id) {
                    continue;
                }
                if u.mem.as_ref().is_some_and(|m| m.is_load)
                    && matches!(self.load_action(id), LoadAction::Blocked)
                {
                    continue;
                }
                if best.is_none_or(|b| id < b) {
                    best = Some(id);
                }
            }
            if let Some(id) = best {
                self.execute_uop(id);
                self.rs[fu].retain(|&x| x != id);
            }
        }

        // CPI attribution: if the window head is executing and its
        // critical operand paid the cross-cluster bypass penalty, lost
        // commit slots this cycle are charged to `bypass_delay` rather
        // than generic FU contention.
        if let Some(&head) = self.window.front() {
            if let Some(u) = self.uops.get(&head) {
                if u.bypass_delayed && matches!(u.state, UopState::Executing { .. }) {
                    self.cpi_flags.head_bypass_delayed = true;
                }
            }
        }
    }

    /// Whether all operands are available at the uop's cluster this cycle.
    fn srcs_ready(&self, id: UopId) -> bool {
        let u = &self.uops[&id];
        let cluster = self.cluster_of(u.fu);
        u.srcs
            .iter()
            .flatten()
            .all(|&p| self.phys.avail_at(p, cluster) <= self.cycle)
    }

    /// The scaled-add shift, applied to operand `k`'s value if annotated.
    fn apply_scadd(&self, u: &crate::uop::Uop, k: u8, v: u32) -> u32 {
        match u.scadd {
            Some(sc) if sc.src == k => v.wrapping_shl(sc.shift as u32),
            _ => v,
        }
    }

    /// Decides what a ready load may do under the conservative scheduler.
    fn load_action(&self, id: UopId) -> LoadAction {
        let u = &self.uops[&id];
        let m = u.mem.as_ref().expect("load has memory state");
        // Compute the load's address from its (ready) sources.
        let a = self.apply_scadd(u, 0, u.srcs[0].map(|p| self.phys.value(p)).unwrap_or(0));
        let b = self.apply_scadd(u, 1, u.srcs[1].map(|p| self.phys.value(p)).unwrap_or(0));
        let addr = effective_addr(u.op, a, b, u.imm);
        let lo = addr;
        let hi = addr.wrapping_add(m.size);

        // Scan older in-flight memory ops; the youngest overlapping store
        // decides.
        let mut verdict = LoadAction::Memory;
        for &other_id in &self.lsq {
            if other_id == id {
                break;
            }
            let Some(o) = self.uops.get(&other_id) else {
                continue;
            };
            let Some(om) = o.mem.as_ref() else { continue };
            if om.is_load {
                continue;
            }
            let Some(oaddr) = om.addr else {
                // Unknown older store address blocks every younger access.
                return LoadAction::Blocked;
            };
            let olo = oaddr;
            let ohi = oaddr.wrapping_add(om.size);
            let overlap = olo < hi && lo < ohi;
            if !overlap {
                continue;
            }
            if oaddr == addr && om.size == m.size {
                if o.state == UopState::Done {
                    verdict = LoadAction::Forward(om.value);
                } else {
                    // Exact match but data not captured yet.
                    verdict = LoadAction::Blocked;
                }
            } else {
                // Partial overlap: wait until the store retires (it will
                // then have left the LSQ).
                verdict = LoadAction::Blocked;
            }
        }
        verdict
    }

    /// Begins execution of a ready uop on its functional unit.
    fn execute_uop(&mut self, id: UopId) {
        let now = self.cycle;
        let u = &self.uops[&id];
        let cluster = self.cluster_of(u.fu);

        // Bypass-delay accounting (Figure 7): did the last-arriving operand
        // pay a cross-cluster penalty?
        let mut t_local: u64 = 0;
        let mut t_raw: u64 = 0;
        for &p in u.srcs.iter().flatten() {
            t_local = t_local.max(self.phys.avail_at(p, cluster));
            let d = self.phys.done_at(p);
            if d != NEVER {
                t_raw = t_raw.max(d);
            }
        }
        let bypass_delayed = t_local > t_raw;

        let a0 = u.srcs[0].map(|p| self.phys.value(p)).unwrap_or(0);
        let b0 = u.srcs[1].map(|p| self.phys.value(p)).unwrap_or(0);
        let a = self.apply_scadd(u, 0, a0);
        let b = self.apply_scadd(u, 1, b0);

        let op = u.op;
        let imm = u.imm;
        let pc = u.pc;
        let mut value: Option<u32> = None;
        let mut mem_value: Option<u32> = None;
        let mut mem_addr: Option<u32> = None;
        let mut forwarded = false;
        let mut taken: Option<bool> = None;
        let mut next: Option<u32> = None;

        let lat = match op.kind() {
            OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div => {
                value = Some(alu_result(op, a, b, imm));
                self.cfg.latency.of(op.kind())
            }
            OpKind::CondBranch => {
                let t = branch_taken(op, a0, b0);
                taken = Some(t);
                next = Some(if t {
                    u.instr.taken_target(pc).expect("branch has target")
                } else {
                    pc.wrapping_add(4)
                });
                self.cfg.latency.branch
            }
            OpKind::Jump => {
                // Only jr/jalr reach the RS.
                next = Some(a0);
                self.cfg.latency.branch
            }
            OpKind::Load => {
                let addr = effective_addr(op, a, b, imm);
                mem_addr = Some(addr);
                let (raw, extra) = match self.load_action(id) {
                    LoadAction::Forward(v) => {
                        forwarded = true;
                        (v, 1)
                    }
                    LoadAction::Memory => {
                        let lat = self.hier.access(Side::Data, addr);
                        (self.mem.read_sized(addr, u.mem.as_ref().unwrap().size), lat)
                    }
                    LoadAction::Blocked => unreachable!("select checked eligibility"),
                };
                let v = extend_load(op, raw);
                value = Some(v);
                mem_value = Some(v);
                self.cfg.latency.agen + extra
            }
            OpKind::Store => {
                let addr = effective_addr(op, a, b, imm);
                mem_addr = Some(addr);
                mem_value = Some(b0); // data operand, unscaled
                self.cfg.latency.agen
            }
            OpKind::System => unreachable!("system ops never dispatch"),
        };

        let done = now + lat as u64;
        let u = self.uops.get_mut(&id).unwrap();
        u.state = UopState::Executing { done };
        u.fu_executed = true;
        u.bypass_delayed = bypass_delayed && u.srcs.iter().flatten().next().is_some();
        if let Some(m) = u.mem.as_mut() {
            m.addr = mem_addr;
            if let Some(v) = mem_value {
                m.value = v;
            }
            m.forwarded = forwarded;
        }
        if let Some(bctx) = u.branch.as_mut() {
            bctx.actual_taken = taken;
            bctx.actual_next = next;
        }
        let dest = u.dest;
        let aliased = u.aliased;
        if let (Some((_, p)), Some(v), false) = (dest, value, aliased) {
            self.phys.write(p, v, done, cluster);
        }
        self.completions.entry(done).or_default().push(id);
        if self.trace.enabled() {
            self.trace
                .push(now, crate::tracelog::Event::Execute { uop: id, done });
        }
    }
}
