//! # tracefill-sim
//!
//! Cycle-level simulator of the trace-cache microprocessor evaluated in
//! *"Putting the Fill Unit to Work"* (MICRO-31, 1998):
//!
//! * 16-wide fetch from a 2K-entry, 4-way trace cache with a supporting
//!   4 KB instruction cache, 64 KB data cache and 1 MB unified L2;
//! * three-table multiple-branch predictor with branch promotion;
//! * **inactive issue**: every block of a fetched trace line issues; blocks
//!   past the predicted divergence issue inactively and are *activated* if
//!   the line's embedded path turns out correct;
//! * rename with **checkpoint repair** (up to 3 checkpoints/cycle) and
//!   **move elimination** for fill-unit-marked register moves;
//! * a clustered backend — 4 clusters × 4 universal FUs, 32-entry
//!   reservation stations, +1 cycle cross-cluster bypass;
//! * a conservative memory scheduler (no memory op bypasses a store with
//!   an unknown address) with store-to-load forwarding;
//! * full wrong-path execution with exact squash/recovery;
//! * **oracle lockstep**: every retirement is checked against the
//!   functional interpreter, so any timing-model bug that corrupts
//!   architectural state aborts the run loudly.
//!
//! The fill unit and trace cache come from [`tracefill_core`]; the four
//! dynamic optimizations are switched through
//! [`SimConfig::with_opts`].
//!
//! # Examples
//!
//! Measure the IPC gain of the full optimization set on a small kernel:
//!
//! ```
//! use tracefill_core::config::OptConfig;
//! use tracefill_isa::asm::assemble;
//! use tracefill_sim::{SimConfig, Simulator};
//!
//! let prog = assemble(r#"
//!         .text
//! main:   li   $t3, 2000
//!         la   $s0, arr
//! loop:   andi $t0, $t3, 63
//!         sll  $t1, $t0, 2         # scaled-add fodder
//!         add  $t2, $s0, $t1
//!         lw   $a0, 0($t2)
//!         addi $a0, $a0, 1
//!         sw   $a0, 0($t2)
//!         addi $t3, $t3, -1
//!         bgtz $t3, loop
//!         li   $v0, 10
//!         syscall
//!         .data
//! arr:    .space 256
//! "#)?;
//!
//! let mut base = Simulator::new(&prog, SimConfig::default());
//! base.run(1_000_000)?;
//! let mut opt = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
//! opt.run(1_000_000)?;
//! assert!(opt.stats().ipc() >= base.stats().ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod cpi;
mod exec;
mod frontend;
pub mod inject;
mod issue;
pub mod machine;
pub mod oracle;
pub mod physreg;
mod recover;
pub mod repair;
mod retire;
pub mod stats;
pub mod tracelog;
pub mod uop;

pub use config::{RepairConfig, SimConfig};
pub use cpi::CpiStack;
pub use inject::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use machine::{RunExit, SimError, Simulator};
pub use oracle::{DivergenceReport, RetireEcho, SegSource};
pub use repair::{RepairEvent, RepairReport};
pub use stats::{Report, Stats};
