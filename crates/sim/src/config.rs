//! Simulator configuration, defaulting to the paper's machine (§3).

use tracefill_core::config::{ClusterConfig, FillConfig, TraceCacheConfig};
use tracefill_isa::op::OpKind;
use tracefill_uarch::bias::BiasConfig;
use tracefill_uarch::hierarchy::HierarchyConfig;
use tracefill_uarch::indirect::TargetBufferConfig;
use tracefill_uarch::pht::PredictorConfig;

/// Execution latencies by operation class, in cycles.
///
/// Loads pay `load_agen` for address generation plus the data-cache access
/// latency from the memory hierarchy; everything else is a fixed count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Integer ALU (including scaled adds, which stay single-cycle — the
    /// paper bounds the extra ALU path to ~2 gate delays).
    pub int_alu: u32,
    /// Shifts.
    pub shift: u32,
    /// Multiplies.
    pub mul: u32,
    /// Divides.
    pub div: u32,
    /// Conditional branches and jumps.
    pub branch: u32,
    /// Address generation for loads and stores.
    pub agen: u32,
}

impl Default for LatencyConfig {
    fn default() -> LatencyConfig {
        LatencyConfig {
            int_alu: 1,
            shift: 1,
            mul: 3,
            div: 12,
            branch: 1,
            agen: 1,
        }
    }
}

impl LatencyConfig {
    /// Latency of a non-memory operation class.
    pub fn of(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::IntAlu => self.int_alu,
            OpKind::Shift => self.shift,
            OpKind::Mul => self.mul,
            OpKind::Div => self.div,
            OpKind::CondBranch | OpKind::Jump => self.branch,
            OpKind::Load | OpKind::Store => self.agen,
            OpKind::System => 1,
        }
    }
}

/// Self-repair: divergence containment and the pass-quarantine ladder.
///
/// When enabled, an oracle divergence (or a strict-verify failure at the
/// fill boundary) no longer aborts the run: the machine squashes in-flight
/// state, restores architectural state from the interpreter-verified
/// retirement point, invalidates the offending trace-cache segment, and
/// resumes through the conventional fetch path. Repeat offenders climb the
/// escalation ladder (see [`tracefill_core::quarantine`]): after
/// `quarantine_after` offenses a pass is quarantined for that segment
/// class, after `disable_after` total offenses it is disabled
/// machine-wide. Disabled by default; a disabled machine is bit-for-bit
/// identical to one built before self-repair existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Master switch.
    pub enabled: bool,
    /// Offenses of one `(pass, class)` pair before class quarantine.
    pub quarantine_after: u64,
    /// Total offenses of one pass before machine-wide disable.
    pub disable_after: u64,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        let q = tracefill_core::QuarantineConfig::default();
        RepairConfig {
            enabled: false,
            quarantine_after: q.quarantine_after,
            disable_after: q.disable_after,
        }
    }
}

impl RepairConfig {
    /// The ladder thresholds as a core quarantine configuration.
    pub fn quarantine(&self) -> tracefill_core::QuarantineConfig {
        tracefill_core::QuarantineConfig {
            quarantine_after: self.quarantine_after,
            disable_after: self.disable_after,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Instructions fetched per cycle from the trace cache (paper: 16).
    pub fetch_width: usize,
    /// Reservation station entries per functional unit (paper: 32).
    pub rs_per_fu: usize,
    /// Physical registers.
    pub phys_regs: usize,
    /// Maximum live checkpoints (in-flight conditional branches and
    /// indirect jumps).
    pub max_checkpoints: usize,
    /// Checkpoints creatable per cycle (paper: 3, one per block).
    pub checkpoints_per_cycle: usize,
    /// Extra cycles to forward a value to another cluster (paper: 1).
    pub cross_cluster_latency: u32,
    /// Inactive issue of non-matching trace blocks (paper baseline: on).
    pub inactive_issue: bool,
    /// Cluster geometry (paper: 4 clusters of 4 universal FUs).
    pub clusters: ClusterConfig,
    /// Execution latencies.
    pub latency: LatencyConfig,
    /// Cache/memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Multiple-branch predictor.
    pub predictor: PredictorConfig,
    /// Bias table / promotion.
    pub bias: BiasConfig,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Indirect-target buffer.
    pub target_buffer: TargetBufferConfig,
    /// Trace cache geometry.
    pub tcache: TraceCacheConfig,
    /// Fill unit (including the optimization switches).
    pub fill: FillConfig,
    /// Check every retirement against the functional oracle (cheap; leave
    /// on outside of benchmarking hot loops). On divergence the run aborts
    /// with a structured
    /// [`DivergenceReport`](crate::oracle::DivergenceReport).
    pub oracle_check: bool,
    /// Ring-buffer depth for the divergence report's recent-retirement
    /// echo (0 disables the ring; ignored when `oracle_check` is off).
    pub divergence_ring: usize,
    /// Deterministic fault schedule to execute during the run (`None` for
    /// a clean run). See [`crate::inject`].
    pub fault_plan: Option<crate::inject::FaultPlan>,
    /// Pipeline event-trace depth: keep the most recent N events in
    /// [`Simulator::trace`](crate::Simulator::trace) (0 disables tracing).
    pub trace_depth: usize,
    /// Collect the segment lifetime ledger
    /// ([`Simulator::ledger`](crate::Simulator::ledger)): per-segment
    /// build/insert/hit/retire/evict attribution. Purely observational —
    /// enabling it never changes timing — and zero-cost when off.
    pub ledger: bool,
    /// Self-repair on divergence (see [`RepairConfig`]). Off by default.
    pub self_repair: RepairConfig,
}

impl Default for SimConfig {
    /// The paper's machine with all fill-unit optimizations off.
    fn default() -> SimConfig {
        SimConfig {
            fetch_width: 16,
            rs_per_fu: 32,
            phys_regs: 1024,
            max_checkpoints: 64,
            checkpoints_per_cycle: 3,
            cross_cluster_latency: 1,
            inactive_issue: true,
            clusters: ClusterConfig::default(),
            latency: LatencyConfig::default(),
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorConfig::default(),
            bias: BiasConfig::default(),
            ras_depth: 32,
            target_buffer: TargetBufferConfig::default(),
            tcache: TraceCacheConfig::default(),
            // Oracle runs (the default) also verify every optimized
            // segment in release builds; raw-throughput campaigns turn
            // both off together.
            fill: FillConfig {
                strict_verify: true,
                ..FillConfig::default()
            },
            oracle_check: true,
            divergence_ring: 16,
            fault_plan: None,
            trace_depth: 0,
            ledger: false,
            self_repair: RepairConfig::default(),
        }
    }
}

impl SimConfig {
    /// Total functional units.
    pub fn num_fus(&self) -> usize {
        self.clusters.total_slots()
    }

    /// The paper's baseline with a given set of fill-unit optimizations.
    pub fn with_opts(opts: tracefill_core::config::OptConfig) -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.fill.opts = opts;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let c = SimConfig::default();
        assert_eq!(c.num_fus(), 16);
        assert_eq!(c.rs_per_fu, 32);
        assert_eq!(c.checkpoints_per_cycle, 3);
        assert_eq!(c.cross_cluster_latency, 1);
        assert!(c.inactive_issue);
    }

    #[test]
    fn latency_table() {
        let l = LatencyConfig::default();
        assert_eq!(l.of(OpKind::IntAlu), 1);
        assert_eq!(l.of(OpKind::Div), 12);
        assert_eq!(l.of(OpKind::Load), 1); // agen; cache latency is separate
    }
}
