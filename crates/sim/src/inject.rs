//! Deterministic fault injection for the trace-cache pipeline.
//!
//! A [`FaultPlan`] is a seeded, fully explicit list of faults to inject
//! into a run: bit flips in trace-cache lines at fill or at lookup,
//! dropped or truncated fill-unit segments, fill-pipe stalls, and
//! corrupted post-optimization immediates. Plans are either written by
//! hand or generated from a seed with [`FaultPlan::generate`]
//! (SplitMix64), so the same seed always produces the same plan — and,
//! because the simulator is deterministic, the same run.
//!
//! The [`FaultInjector`] sits on the two boundaries where a real particle
//! strike or fill-unit bug would land: between the fill pipe and the
//! trace-cache write ([`FaultInjector::on_fill`]) and between the
//! trace-cache read and the fetch bundle
//! ([`FaultInjector::on_lookup`]). Corrupted segments keep their `orig`
//! instructions intact and carry an injected-fault note in their
//! [`Provenance`](tracefill_core::segment::Provenance), so the lockstep
//! oracle and the strict per-segment verifier can *detect* the corruption
//! and attribute it — which is exactly what a fault-injection campaign
//! measures: injected vs. detected vs. masked vs. silent.

use std::sync::Arc;
use tracefill_core::segment::{SegEnd, Segment};
use tracefill_core::tcache::TcHit;
use tracefill_util::{Json, Registry, SplitMix64};

/// The kinds of fault the injector can introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of a stored immediate as the segment is written to
    /// the trace cache (a fill-path strike).
    BitFlipFill,
    /// Flip one bit of an immediate in the fetched copy of a line at
    /// lookup (a read-path strike; the cached line itself stays intact).
    BitFlipLookup,
    /// Drop a finalized segment on the floor (lost fill).
    DropSegment,
    /// Truncate a finalized segment to a prefix (partial fill).
    TruncateSegment,
    /// Hold a finalized segment in the fill pipe for extra cycles
    /// (fill-pipe stall).
    StallFill,
    /// Corrupt a post-optimization immediate, preferring a slot an
    /// optimization pass rewrote (targets the rewritten state the
    /// verifier must defend).
    CorruptImm,
}

impl FaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::BitFlipFill,
        FaultKind::BitFlipLookup,
        FaultKind::DropSegment,
        FaultKind::TruncateSegment,
        FaultKind::StallFill,
        FaultKind::CorruptImm,
    ];

    /// Stable name (metrics suffix / CLI token).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitFlipFill => "bitflip_fill",
            FaultKind::BitFlipLookup => "bitflip_lookup",
            FaultKind::DropSegment => "drop_segment",
            FaultKind::TruncateSegment => "truncate_segment",
            FaultKind::StallFill => "stall_fill",
            FaultKind::CorruptImm => "corrupt_imm",
        }
    }

    /// Parses a CLI token.
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether the fault fires on the fill side (vs. at lookup).
    pub fn is_fill_side(self) -> bool {
        !matches!(self, FaultKind::BitFlipLookup)
    }
}

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Which event of the kind's stream triggers it: the 0-based index of
    /// the fill event (segment leaving the fill pipe) for fill-side
    /// faults, or of the trace-cache hit for lookup faults.
    pub at_event: u64,
    /// Kind-specific payload: selects the slot/bit for flips, the cut
    /// point for truncation, the stall length for fill stalls.
    pub payload: u64,
}

/// A deterministic, explicit fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The faults, in no particular order (each names its own trigger).
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Generates `n` faults of the given `kinds` with trigger events drawn
    /// uniformly from `0..horizon`, deterministically from `seed`.
    ///
    /// Degenerate requests — `n == 0`, an empty `horizon`, or no `kinds`
    /// to draw from — yield an empty, well-formed plan (a clean run)
    /// rather than panicking.
    pub fn generate(seed: u64, n: usize, horizon: u64, kinds: &[FaultKind]) -> FaultPlan {
        if n == 0 || horizon == 0 || kinds.is_empty() {
            return FaultPlan {
                seed,
                faults: Vec::new(),
            };
        }
        let mut rng = SplitMix64::new(seed);
        let faults = (0..n)
            .map(|_| FaultSpec {
                kind: kinds[rng.range_u64(0, kinds.len() as u64) as usize],
                at_event: rng.range_u64(0, horizon),
                payload: rng.next_u64(),
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Serializes the plan (for reports and determinism checks).
    pub fn to_json(&self) -> Json {
        Json::object().with("seed", self.seed).with(
            "faults",
            Json::Arr(
                self.faults
                    .iter()
                    .map(|f| {
                        Json::object()
                            .with("kind", f.kind.name())
                            .with("at_event", f.at_event)
                            .with("payload", f.payload)
                    })
                    .collect(),
            ),
        )
    }
}

/// Runtime state of the injector for one simulation.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Fill events observed so far (segments leaving the fill pipe).
    fill_events: u64,
    /// Trace-cache hits observed so far.
    lookup_events: u64,
    /// Segments held back by a `StallFill` fault: `(release_cycle, seg)`.
    stalled: Vec<(u64, Arc<Segment>)>,
    /// Faults that actually fired.
    fired: u64,
    metrics: Registry,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            fill_events: 0,
            lookup_events: 0,
            stalled: Vec::new(),
            fired: 0,
            metrics: Registry::new(),
        }
    }

    /// Number of faults that actually fired (a plan whose trigger events
    /// lie past the end of the run fires nothing).
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Injection counters (`fault.injected`, `fault.injected.<kind>`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    fn record(&mut self, kind: FaultKind) {
        self.fired += 1;
        self.metrics.inc("fault.injected");
        self.metrics.inc(&format!("fault.injected.{}", kind.name()));
    }

    /// Offers a segment leaving the fill pipe at cycle `now`. Returns the
    /// (possibly corrupted) segment to insert into the trace cache, or
    /// `None` when the fault consumed it (drop) or delayed it (stall —
    /// poll [`release_stalled`](Self::release_stalled)).
    pub fn on_fill(&mut self, seg: Arc<Segment>, now: u64) -> Option<Arc<Segment>> {
        let event = self.fill_events;
        self.fill_events += 1;
        let mut seg = seg;
        // Several faults may name the same event; apply them in plan order.
        for i in 0..self.plan.faults.len() {
            let f = self.plan.faults[i];
            if !f.kind.is_fill_side() || f.at_event != event {
                continue;
            }
            match f.kind {
                FaultKind::DropSegment => {
                    self.record(f.kind);
                    return None;
                }
                FaultKind::StallFill => {
                    self.record(f.kind);
                    let delay = 1 + f.payload % 256;
                    self.stalled.push((now + delay, seg));
                    return None;
                }
                FaultKind::TruncateSegment => {
                    if seg.slots.len() > 1 {
                        self.record(f.kind);
                        seg = Arc::new(truncate(&seg, f.payload));
                    }
                }
                FaultKind::BitFlipFill => {
                    self.record(f.kind);
                    seg = Arc::new(flip_imm_bit(&seg, f.payload, "bitflip_fill"));
                }
                FaultKind::CorruptImm => {
                    self.record(f.kind);
                    seg = Arc::new(corrupt_imm(&seg, f.payload));
                }
                FaultKind::BitFlipLookup => unreachable!("lookup-side"),
            }
        }
        Some(seg)
    }

    /// Returns every stalled segment whose release cycle has arrived.
    pub fn release_stalled(&mut self, now: u64) -> Vec<Arc<Segment>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.stalled.len() {
            if self.stalled[i].0 <= now {
                out.push(self.stalled.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Observes a trace-cache hit; a `BitFlipLookup` fault scheduled for
    /// this hit corrupts the *fetched copy* of the line (the cached line
    /// is untouched, as a read-path strike would behave).
    pub fn on_lookup(&mut self, hit: TcHit, _now: u64) -> TcHit {
        let event = self.lookup_events;
        self.lookup_events += 1;
        let mut hit = hit;
        for i in 0..self.plan.faults.len() {
            let f = self.plan.faults[i];
            if f.kind != FaultKind::BitFlipLookup || f.at_event != event {
                continue;
            }
            self.record(f.kind);
            hit.seg = Arc::new(flip_imm_bit(&hit.seg, f.payload, "bitflip_lookup"));
        }
        hit
    }
}

/// Flips one bit of one slot's *executed* immediate. `orig` stays intact,
/// so the oracle (and the strict verifier) can tell truth from corruption.
fn flip_imm_bit(seg: &Segment, payload: u64, label: &str) -> Segment {
    let mut seg = seg.clone();
    let slot = (payload as usize) % seg.slots.len();
    let bit = ((payload >> 8) % 16) as i32; // low half: keeps targets plausible
    seg.slots[slot].imm ^= 1 << bit;
    seg.provenance.fault = Some(format!("{label} slot={slot} bit={bit}"));
    seg
}

/// Corrupts a post-optimization immediate, preferring a slot a pass
/// rewrote (reassociated or scaled-add) so the fault lands on optimizer
/// output rather than raw decode state.
fn corrupt_imm(seg: &Segment, payload: u64) -> Segment {
    let mut seg = seg.clone();
    let transformed: Vec<usize> = seg
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.reassociated || s.scadd.is_some())
        .map(|(i, _)| i)
        .collect();
    let slot = if transformed.is_empty() {
        (payload as usize) % seg.slots.len()
    } else {
        transformed[(payload as usize) % transformed.len()]
    };
    let delta = 4 + (payload >> 8) % 60; // always nonzero
    seg.slots[slot].imm = seg.slots[slot].imm.wrapping_add(delta as i32);
    seg.provenance.fault = Some(format!("corrupt_imm slot={slot} delta={delta}"));
    seg
}

/// Truncates a segment to a nonempty proper prefix, repairing the
/// invariants truncation disturbs (branch list, issue order, live-out
/// marking). A prefix of a real path is itself a real path, so this fault
/// is often *masked* — which is precisely what the SDC table reports.
fn truncate(seg: &Segment, payload: u64) -> Segment {
    let mut seg = seg.clone();
    let k = 1 + (payload as usize) % (seg.slots.len() - 1);
    seg.slots.truncate(k);
    seg.branches.retain(|b| (b.slot as usize) < k);
    seg.issue_pos = (0..k as u8).collect();
    seg.end = SegEnd::Flushed;
    // Recompute live-out marking for the shorter slot list.
    let mut seen = std::collections::HashSet::new();
    for slot in seg.slots.iter_mut().rev() {
        if let Some(d) = slot.dest {
            slot.live_out = seen.insert(d);
        }
    }
    seg.provenance.fault = Some(format!("truncate_segment keep={k}"));
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracefill_core::builder::{build_segments, FillInput};
    use tracefill_core::config::FillConfig;
    use tracefill_core::tcache::PathMatch;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn seg() -> Arc<Segment> {
        let r = ArchReg::gpr;
        let inputs: Vec<FillInput> = [
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::branch(Op::Bne, r(8), r(0), 5),
            Instr::alu_imm(Op::Addi, r(10), r(8), 8),
            Instr::store(Op::Sw, r(10), r(29), -4),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, instr)| FillInput {
            pc: 0x40_0000 + 4 * i as u32,
            instr,
            taken: instr.op.is_cond_branch().then_some(false),
            promoted: None,
            fetch_miss_head: false,
        })
        .collect();
        Arc::new(
            build_segments(&inputs, &FillConfig::default())
                .pop()
                .unwrap(),
        )
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(42, 8, 1000, &FaultKind::ALL);
        let b = FaultPlan::generate(42, 8, 1000, &FaultKind::ALL);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        let c = FaultPlan::generate(43, 8, 1000, &FaultKind::ALL);
        assert_ne!(a, c);
        assert_eq!(a.to_json().dump(), b.to_json().dump());
    }

    #[test]
    fn bitflip_marks_provenance_and_changes_only_executed_imm() {
        let s = seg();
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                kind: FaultKind::BitFlipFill,
                at_event: 0,
                payload: 0x0102,
            }],
        });
        let out = inj.on_fill(s.clone(), 10).unwrap();
        assert_eq!(inj.fired(), 1);
        assert!(out
            .provenance
            .fault
            .as_deref()
            .unwrap()
            .starts_with("bitflip_fill"));
        // Exactly one executed imm differs; every orig is untouched.
        let diffs = out
            .slots
            .iter()
            .zip(&s.slots)
            .filter(|(a, b)| a.imm != b.imm)
            .count();
        assert_eq!(diffs, 1);
        assert!(out
            .slots
            .iter()
            .zip(&s.slots)
            .all(|(a, b)| a.orig == b.orig));
        assert_eq!(inj.metrics().counter("fault.injected.bitflip_fill"), 1);
    }

    #[test]
    fn drop_and_stall_behave() {
        let s = seg();
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![
                FaultSpec {
                    kind: FaultKind::DropSegment,
                    at_event: 0,
                    payload: 0,
                },
                FaultSpec {
                    kind: FaultKind::StallFill,
                    at_event: 1,
                    payload: 9, // delay 10
                },
            ],
        });
        assert!(inj.on_fill(s.clone(), 100).is_none()); // dropped
        assert!(inj.on_fill(s.clone(), 100).is_none()); // stalled
        assert!(inj.release_stalled(105).is_empty());
        let released = inj.release_stalled(110);
        assert_eq!(released.len(), 1);
        assert!(
            released[0].provenance.fault.is_none(),
            "stall does not corrupt"
        );
        assert!(inj.on_fill(s, 100).is_some()); // event 2: untouched
    }

    #[test]
    fn degenerate_plans_are_empty_and_well_formed() {
        for plan in [
            FaultPlan::generate(7, 0, 100, &[FaultKind::BitFlipFill]),
            FaultPlan::generate(7, 4, 0, &[FaultKind::BitFlipFill]),
            FaultPlan::generate(7, 4, 100, &[]),
        ] {
            assert_eq!(plan.seed, 7);
            assert!(plan.faults.is_empty());
            // Well-formed: serializes, and an injector built from it is a
            // clean no-op run.
            assert!(plan.to_json().dump().contains("\"faults\":[]"));
            let mut inj = FaultInjector::new(plan);
            assert!(inj.on_fill(seg(), 10).is_some());
            assert_eq!(inj.fired(), 0);
        }
    }

    #[test]
    fn truncation_preserves_invariants() {
        let s = seg();
        for payload in 0..8u64 {
            let t = truncate(&s, payload);
            assert!(t.slots.len() < s.slots.len());
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn lookup_flip_corrupts_the_copy_not_the_line() {
        let s = seg();
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 0,
            faults: vec![FaultSpec {
                kind: FaultKind::BitFlipLookup,
                at_event: 0,
                payload: 3,
            }],
        });
        let hit = TcHit {
            seg: s.clone(),
            path: PathMatch {
                matching_branches: 1,
                full: true,
            },
        };
        let out = inj.on_lookup(hit, 5);
        assert!(out.seg.provenance.fault.is_some());
        assert!(s.provenance.fault.is_none(), "cached line untouched");
    }
}
