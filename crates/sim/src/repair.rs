//! Self-repair reporting: what the machine recovered from, and how.
//!
//! When [`SimConfig::self_repair`](crate::SimConfig) is enabled, a
//! lockstep divergence (or a strict segment-verification failure at the
//! fill boundary) is *contained* instead of fatal: the machine squashes
//! its in-flight state, restores architectural state from the
//! interpreter-verified retirement point, invalidates the offending
//! trace-cache segment and resumes through the conventional fetch path.
//! Every such containment is recorded as a [`RepairEvent`]; the run's
//! [`RepairReport`] mirrors the structure of
//! [`DivergenceReport`](crate::oracle::DivergenceReport) — same site
//! fields, same provenance attribution — plus the escalation-ladder
//! transitions the offense triggered and the ladder's final state.

use crate::oracle::SegSource;
use std::fmt;
use tracefill_core::quarantine::Escalation;
use tracefill_util::Json;

/// One contained failure: the divergence site, the offending segment, and
/// the repair actions taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairEvent {
    /// Cycle of the repair.
    pub cycle: u64,
    /// Retire sequence number of the diverging instruction.
    pub seq: u64,
    /// PC at the divergence site.
    pub pc: u32,
    /// What diverged (same vocabulary as
    /// [`DivergenceReport::kind`](crate::oracle::DivergenceReport)).
    pub kind: &'static str,
    /// The oracle's expectation.
    pub expected: String,
    /// What the pipeline produced.
    pub actual: String,
    /// Provenance of the offending trace segment, when there was one.
    pub provenance: Option<SegSource>,
    /// Whether the offending segment was found (and removed) in the trace
    /// cache. False when it had already been evicted, or when the
    /// divergence had no trace-cache provenance.
    pub invalidated: bool,
    /// Ladder transitions this offense triggered, in pass order.
    pub escalations: Vec<Escalation>,
}

impl RepairEvent {
    /// Serializes the event (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut v = Json::object()
            .with("cycle", self.cycle)
            .with("seq", self.seq)
            .with("pc", u64::from(self.pc))
            .with("kind", self.kind)
            .with("expected", self.expected.as_str())
            .with("actual", self.actual.as_str());
        if let Some(p) = &self.provenance {
            v = v.with(
                "segment",
                Json::object()
                    .with("seg_id", p.seg_id)
                    .with("start_pc", u64::from(p.start_pc))
                    .with("len", p.len)
                    .with(
                        "passes",
                        Json::Arr(p.passes.iter().map(|s| Json::from(*s)).collect()),
                    )
                    .with(
                        "fault",
                        p.fault.as_deref().map(Json::from).unwrap_or(Json::Null),
                    ),
            );
        }
        v.with("invalidated", self.invalidated).with(
            "escalations",
            Json::Arr(self.escalations.iter().map(Escalation::to_json).collect()),
        )
    }
}

impl fmt::Display for RepairEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repaired {} at cycle {}, seq {}, pc {:#010x}",
            self.kind, self.cycle, self.seq, self.pc
        )?;
        if let Some(p) = &self.provenance {
            write!(f, " [{p}]")?;
        }
        for e in &self.escalations {
            match e {
                Escalation::Quarantined { pass, class } => {
                    write!(f, " quarantine({pass}/{class})")?;
                }
                Escalation::Disabled { pass } => write!(f, " disable({pass})")?,
            }
        }
        Ok(())
    }
}

/// The run's full self-repair record: every contained failure plus the
/// escalation ladder's final state.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Contained failures, in occurrence order.
    pub events: Vec<RepairEvent>,
    /// The ladder's final state (see
    /// [`Quarantine::to_json`](tracefill_core::Quarantine::to_json));
    /// `Json::Null` when self-repair was never armed.
    pub ladder: Json,
}

impl RepairReport {
    /// Total contained failures.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.events.len() as u64
    }

    /// Serializes the report. Byte-deterministic for a fixed seed and
    /// fault plan: every field is derived from deterministic machine
    /// state, and map-backed sections iterate in key order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("repairs", self.repairs())
            .with(
                "events",
                Json::Arr(self.events.iter().map(RepairEvent::to_json).collect()),
            )
            .with("ladder", self.ladder.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RepairEvent {
        RepairEvent {
            cycle: 321,
            seq: 54,
            pc: 0x40_0020,
            kind: "register-effect",
            expected: "$t0 = 0x5".to_string(),
            actual: "$t0 = 0x6".to_string(),
            provenance: Some(SegSource {
                seg_id: 9,
                start_pc: 0x40_0000,
                len: 4,
                passes: vec!["scadd"],
                fault: None,
            }),
            invalidated: true,
            escalations: vec![Escalation::Quarantined {
                pass: "scadd",
                class: "loop",
            }],
        }
    }

    #[test]
    fn event_json_names_actions() {
        let text = sample().to_json().dump();
        assert!(text.contains("\"invalidated\":true"), "{text}");
        assert!(text.contains("\"action\":\"quarantine\""), "{text}");
        assert!(text.contains("\"seg_id\":9"), "{text}");
    }

    #[test]
    fn report_json_is_deterministic() {
        let r = RepairReport {
            events: vec![sample()],
            ladder: Json::Null,
        };
        assert_eq!(r.to_json().dump(), r.to_json().dump());
        assert!(r.to_json().dump().contains("\"repairs\":1"));
    }

    #[test]
    fn display_reads_like_a_log_line() {
        let text = sample().to_string();
        assert!(text.contains("repaired register-effect"), "{text}");
        assert!(text.contains("quarantine(scadd/loop)"), "{text}");
    }
}
