//! Retire stage: in-order completion, oracle lockstep checking, predictor
//! and bias training, and feeding the fill unit.

use crate::machine::{SimError, Simulator};
use tracefill_core::builder::FillInput;
use tracefill_isa::syscall;
use tracefill_isa::ArchReg;
use tracefill_isa::Op;

impl Simulator {
    /// Retire phase: up to `fetch_width` completed head-of-window uops.
    pub(crate) fn phase_retire(&mut self) -> Result<(), SimError> {
        for _ in 0..self.cfg.fetch_width {
            let Some(&head) = self.window.front() else {
                break;
            };
            let u = &self.uops[&head];

            // Readiness.
            if u.is_system() {
                // Serializing ops execute at retirement, with the whole
                // machine drained ahead of them.
                self.retire_system(head)?;
                if self.halted.is_some() {
                    return Ok(());
                }
                continue;
            }
            let done = u.is_done();
            let branch_ok = match &u.branch {
                Some(b) => b.resolved,
                None => true,
            };
            if !done || !branch_ok {
                break;
            }

            self.retire_one(head)?;
        }
        // Segments whose fill latency elapsed enter the trace cache.
        for seg in self.fill.drain_ready(self.cycle) {
            self.tcache.insert(seg);
        }
        Ok(())
    }

    /// Retires one ordinary uop.
    fn retire_one(&mut self, id: u64) -> Result<(), SimError> {
        // Oracle lockstep first: any divergence is a simulator bug.
        if self.cfg.oracle_check {
            self.check_against_oracle(id)?;
        } else {
            // Still step the oracle to keep lockstep for later checks.
            self.oracle.step().map_err(SimError::Oracle)?;
        }

        let u = self.uops.get(&id).expect("retiring uop exists");
        let pc = u.pc;
        let instr = u.instr;
        let op = u.op;
        let taken = u.branch.as_ref().and_then(|b| b.actual_taken);
        let actual_next = u.branch.as_ref().and_then(|b| b.actual_next);
        let pred_taken = u.branch.as_ref().and_then(|b| b.pred_taken);
        let pred_target = u.branch.as_ref().and_then(|b| b.pred_target);
        let prediction = u.branch.as_ref().and_then(|b| b.prediction);
        let prev_phys = u.prev_phys;
        let store = u
            .mem
            .as_ref()
            .filter(|m| !m.is_load)
            .map(|m| (m.addr.expect("retired store has address"), m.size, m.value));

        // Stats.
        self.stats.retired += 1;
        self.cpi_flags.retired += 1; // this cycle's CPI-stack `base` slots
        self.stats.retired_moves += u.is_move as u64;
        self.stats.retired_reassoc += u.reassociated as u64;
        self.stats.retired_scadd += u.scadd.is_some() as u64;
        self.stats.retired_from_tc += u.from_tc as u64;
        self.stats.fu_executed += u.fu_executed as u64;
        self.stats.bypass_delayed += u.bypass_delayed as u64;

        // Commit stores to memory.
        if let Some((addr, size, value)) = store {
            self.mem.write_sized(addr, size, value);
        }

        // Branch bookkeeping.
        if op.is_cond_branch() {
            let taken = taken.expect("retired branch resolved");
            self.stats.branches += 1;
            if pred_taken != Some(taken) {
                self.stats.branch_mispredicts += 1;
            }
            self.bias.observe(pc, taken);
            if let Some(p) = prediction {
                self.predictor.update(p, taken);
            }
        }
        if op.is_indirect() {
            let actual = actual_next.expect("retired indirect resolved");
            self.stats.indirects += 1;
            if pred_target != Some(actual) {
                self.stats.indirect_mispredicts += 1;
            }
            self.itb.update(pc, actual);
        }

        // Feed the fill unit (after the bias observation, so promotion
        // state is current).
        let promoted = if op.is_cond_branch() && self.fill.config().promotion {
            self.bias.promoted(pc)
        } else {
            None
        };
        let fetch_miss_head = self.uops[&id].miss_head;
        self.fill.retire(
            FillInput {
                pc,
                instr,
                taken,
                promoted,
                fetch_miss_head,
            },
            self.cycle,
        );

        // Release source holds and the displaced mapping, drop
        // checkpoints/shadows owned by this uop, and leave the window.
        let srcs = self.uops[&id].srcs;
        for p in srcs.into_iter().flatten() {
            self.phys.release(p);
        }
        if let Some(prev) = prev_phys {
            self.phys.release(prev);
        }
        self.checkpoints.retain(|c| c.branch != id);
        self.drop_shadow(id);
        if self.lsq.front() == Some(&id) {
            self.lsq.pop_front();
        }
        if self.trace.enabled() {
            self.trace
                .push(self.cycle, crate::tracelog::Event::Retire { uop: id, pc });
        }
        self.window.pop_front();
        self.uops.remove(&id);
        self.last_retire_cycle = self.cycle;
        Ok(())
    }

    /// Retires a serializing system op (`SYSCALL`/`BREAK`), executing it
    /// against architectural state.
    fn retire_system(&mut self, id: u64) -> Result<(), SimError> {
        let u = self.uops.get(&id).expect("retiring uop exists");
        // Architectural reads: all older uops retired, so every live
        // mapping is ready. The syscall itself renamed $v0 at issue, so
        // the service number lives in the mapping it displaced.
        let service_phys = u.prev_phys.unwrap_or(self.rat[ArchReg::V0.index()]);
        let service = self.phys.value(service_phys);
        let a0 = self.phys.value(self.rat[ArchReg::A0.index()]);

        let pc = u.pc;
        let op = u.op;
        let dest = u.dest;
        let prev_phys = u.prev_phys;
        let from_tc = u.from_tc;
        let instr = u.instr;

        if op == Op::Syscall {
            match syscall::execute(service, a0, &mut self.io) {
                Ok(outcome) => {
                    // The syscall renamed $v0; its new mapping holds either
                    // the service result or the unchanged old value.
                    let (_, p) = dest.expect("syscall uop renames $v0");
                    let v0 = outcome.reg_write.map(|(_, v)| v).unwrap_or(service);
                    self.phys.write_arch(p, v0);
                    if let Some(code) = outcome.exit {
                        self.halted = Some(tracefill_isa::interp::Halt::Exited(code));
                    }
                }
                Err(e) => {
                    return Err(SimError::OracleMismatch {
                        cycle: self.cycle,
                        detail: format!("unknown syscall at {pc:#x}: {e}"),
                    })
                }
            }
        } else {
            self.halted = Some(tracefill_isa::interp::Halt::Break);
        }

        // Oracle lockstep.
        if self.cfg.oracle_check {
            let r = self.oracle.step().map_err(SimError::Oracle)?;
            if r.pc != pc || r.instr != instr {
                return Err(SimError::OracleMismatch {
                    cycle: self.cycle,
                    detail: format!(
                        "system op stream mismatch: sim {pc:#x} {instr}, oracle {:#x} {}",
                        r.pc, r.instr
                    ),
                });
            }
            if let Some((reg, val)) = r.reg_write {
                let p = self.rat[reg.index()];
                let got = self.phys.value(p);
                if got != val {
                    return Err(SimError::OracleMismatch {
                        cycle: self.cycle,
                        detail: format!("syscall wrote {reg}={got:#x}, oracle expects {val:#x}"),
                    });
                }
            }
        } else {
            self.oracle.step().map_err(SimError::Oracle)?;
        }

        self.stats.retired += 1;
        self.cpi_flags.retired += 1; // this cycle's CPI-stack `base` slots
        self.stats.retired_from_tc += from_tc as u64;
        self.fill.retire(
            FillInput {
                pc,
                instr,
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
            self.cycle,
        );

        let srcs = self.uops[&id].srcs;
        for p in srcs.into_iter().flatten() {
            self.phys.release(p);
        }
        if let Some(prev) = prev_phys {
            self.phys.release(prev);
        }
        if self.trace.enabled() {
            self.trace
                .push(self.cycle, crate::tracelog::Event::Retire { uop: id, pc });
        }
        self.window.pop_front();
        self.uops.remove(&id);
        self.serialize = None;
        self.fetch_pc = pc.wrapping_add(4);
        self.fetch_stall_until = 0;
        self.last_retire_cycle = self.cycle;
        Ok(())
    }

    /// Compares the retiring uop's architectural effects against the
    /// functional oracle.
    fn check_against_oracle(&mut self, id: u64) -> Result<(), SimError> {
        let r = self.oracle.step().map_err(SimError::Oracle)?;
        let u = &self.uops[&id];
        let fail = |detail: String| SimError::OracleMismatch {
            cycle: self.cycle,
            detail,
        };
        if r.pc != u.pc || r.instr != u.instr {
            return Err(fail(format!(
                "stream mismatch: sim retires {:#x} `{}`, oracle executes {:#x} `{}`",
                u.pc, u.instr, r.pc, r.instr
            )));
        }
        // Register write.
        let sim_write = u.dest.map(|(reg, p)| (reg, self.phys.value(p)));
        if sim_write != r.reg_write {
            return Err(fail(format!(
                "register effect mismatch at {:#x} `{}`: sim {:?}, oracle {:?}",
                u.pc, u.instr, sim_write, r.reg_write
            )));
        }
        // Store effect.
        let sim_store = u
            .mem
            .as_ref()
            .filter(|m| !m.is_load)
            .map(|m| (m.addr.unwrap_or(0), m.size, m.value));
        if sim_store != r.store {
            return Err(fail(format!(
                "store effect mismatch at {:#x} `{}`: sim {:?}, oracle {:?}",
                u.pc, u.instr, sim_store, r.store
            )));
        }
        // Branch direction.
        let sim_taken = u.branch.as_ref().and_then(|b| b.actual_taken);
        if u.op.is_cond_branch() && sim_taken != r.taken {
            return Err(fail(format!(
                "branch direction mismatch at {:#x} `{}`: sim {:?}, oracle {:?}",
                u.pc, u.instr, sim_taken, r.taken
            )));
        }
        // Control flow of indirect jumps.
        if u.op.is_indirect() {
            let sim_next = u.branch.as_ref().and_then(|b| b.actual_next);
            if sim_next != Some(r.next_pc) {
                return Err(fail(format!(
                    "indirect target mismatch at {:#x} `{}`: sim {:?}, oracle {:#x}",
                    u.pc, u.instr, sim_next, r.next_pc
                )));
            }
        }
        Ok(())
    }
}
