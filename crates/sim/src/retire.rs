//! Retire stage: in-order completion, oracle lockstep checking, predictor
//! and bias training, and feeding the fill unit.

use crate::machine::{SimError, Simulator};
use crate::oracle::{DivergenceReport, RetireEcho, SegSource};
use crate::repair::RepairEvent;
use tracefill_core::builder::FillInput;
use tracefill_isa::interp::Retired;
use tracefill_isa::syscall;
use tracefill_isa::ArchReg;
use tracefill_isa::Op;

impl Simulator {
    /// Echoes the about-to-retire uop into the divergence ring buffer
    /// (bounded by [`SimConfig::divergence_ring`](crate::SimConfig)), so a
    /// later divergence report can show the trail that led to it.
    fn echo_retire(&mut self, id: u64) {
        if self.cfg.divergence_ring == 0 {
            return;
        }
        let u = &self.uops[&id];
        let echo = RetireEcho {
            cycle: self.cycle,
            seq: self.stats.retired,
            pc: u.pc,
            instr: u.instr,
            from_tc: u.from_tc,
            seg_id: u.seg.as_ref().map(|s| s.provenance.seg_id),
        };
        if self.retire_ring.len() >= self.cfg.divergence_ring {
            self.retire_ring.pop_front();
        }
        self.retire_ring.push_back(echo);
    }

    /// Builds a structured divergence report for the retiring uop,
    /// attributing it to the originating trace segment when there is one.
    fn divergence_report(
        &self,
        id: u64,
        kind: &'static str,
        expected: String,
        actual: String,
    ) -> Box<DivergenceReport> {
        let u = &self.uops[&id];
        Box::new(DivergenceReport {
            cycle: self.cycle,
            seq: self.stats.retired,
            pc: u.pc,
            kind,
            expected,
            actual,
            recent: self.retire_ring.iter().cloned().collect(),
            provenance: u.seg.as_deref().map(SegSource::of),
        })
    }

    /// As [`divergence_report`](Self::divergence_report), wrapped as the
    /// fatal error.
    fn divergence(
        &self,
        id: u64,
        kind: &'static str,
        expected: String,
        actual: String,
    ) -> SimError {
        SimError::Divergence(self.divergence_report(id, kind, expected, actual))
    }
    /// Retire phase: up to `fetch_width` completed head-of-window uops.
    pub(crate) fn phase_retire(&mut self) -> Result<(), SimError> {
        for _ in 0..self.cfg.fetch_width {
            let Some(&head) = self.window.front() else {
                break;
            };
            let u = &self.uops[&head];

            // Readiness.
            if u.is_system() {
                // Serializing ops execute at retirement, with the whole
                // machine drained ahead of them.
                self.retire_system(head)?;
                if self.halted.is_some() {
                    return Ok(());
                }
                continue;
            }
            let done = u.is_done();
            let branch_ok = match &u.branch {
                Some(b) => b.resolved,
                None => true,
            };
            if !done || !branch_ok {
                break;
            }

            self.retire_one(head)?;
        }
        // Segments whose fill latency elapsed enter the trace cache,
        // routed through the fault injector when a plan is active.
        let ready = self.fill.drain_ready(self.cycle);
        let incoming = match self.injector.as_mut() {
            Some(inj) => {
                let mut v: Vec<_> = ready
                    .into_iter()
                    .filter_map(|seg| inj.on_fill(seg, self.cycle))
                    .collect();
                v.extend(inj.release_stalled(self.cycle));
                v
            }
            None => ready,
        };
        for seg in incoming {
            // A segment carrying an injected-fault note is re-checked at
            // the cache boundary when strict verification is on: a caught
            // corruption counts as *detected* and never becomes cache
            // state. (A fault the check accepts — e.g. a truncation to a
            // valid prefix — is architecturally masked and flows through.)
            if seg.provenance.fault.is_some()
                && self.fill.config().strict_verify
                && tracefill_core::opt::strict_check(&seg).is_err()
            {
                self.metrics.inc("fault.detected.fill_verify");
                continue;
            }
            if self.ledger.enabled() {
                let outcome = self.tcache.insert(std::sync::Arc::clone(&seg));
                self.ledger.on_insert(&seg, &outcome, self.cycle);
            } else {
                self.tcache.insert(seg);
            }
        }
        // The fill unit's own always-on verifier rejecting a segment is a
        // divergence in its own right: an optimization pass broke the
        // segment, even if the (dropped) segment never misled fetch.
        if let Some(vf) = self.fill.take_verify_failure() {
            if self.cfg.self_repair.enabled {
                // The rejected segment never reached the cache, so the
                // ladder charge *is* the repair: no squash, no restore —
                // architectural state was never at risk.
                let escalations = self.fill.record_offense(&vf.passes, vf.end);
                self.repairs.push(RepairEvent {
                    cycle: self.cycle,
                    seq: self.stats.retired,
                    pc: vf.start_pc,
                    kind: "segment-verify",
                    expected: "optimized segment equivalent to its original".to_string(),
                    actual: vf.detail,
                    provenance: Some(SegSource {
                        seg_id: vf.seg_id,
                        start_pc: vf.start_pc,
                        len: vf.len,
                        passes: vf.passes,
                        fault: vf.fault,
                    }),
                    invalidated: false,
                    escalations,
                });
                return Ok(());
            }
            return Err(SimError::Divergence(Box::new(DivergenceReport {
                cycle: self.cycle,
                seq: self.stats.retired,
                pc: vf.start_pc,
                kind: "segment-verify",
                expected: "optimized segment equivalent to its original".to_string(),
                actual: vf.detail,
                recent: self.retire_ring.iter().cloned().collect(),
                provenance: Some(SegSource {
                    seg_id: vf.seg_id,
                    start_pc: vf.start_pc,
                    len: vf.len,
                    passes: vf.passes,
                    fault: vf.fault,
                }),
            })));
        }
        Ok(())
    }

    /// Retires one ordinary uop.
    fn retire_one(&mut self, id: u64) -> Result<(), SimError> {
        self.echo_retire(id);
        // Oracle lockstep first: any divergence is a simulator bug or an
        // injected fault — fatal, unless self-repair contains it.
        if self.cfg.oracle_check {
            let (r, div) = self.check_against_oracle(id)?;
            if let Some(report) = div {
                if self.cfg.self_repair.enabled {
                    self.contain_divergence(id, *report, &r);
                    return Ok(());
                }
                return Err(SimError::Divergence(report));
            }
        } else {
            // Still step the oracle to keep lockstep for later checks.
            self.oracle.step().map_err(SimError::Oracle)?;
        }

        let u = self.uops.get(&id).expect("retiring uop exists");
        let pc = u.pc;
        let instr = u.instr;
        let op = u.op;
        let taken = u.branch.as_ref().and_then(|b| b.actual_taken);
        let actual_next = u.branch.as_ref().and_then(|b| b.actual_next);
        let pred_taken = u.branch.as_ref().and_then(|b| b.pred_taken);
        let pred_target = u.branch.as_ref().and_then(|b| b.pred_target);
        let prediction = u.branch.as_ref().and_then(|b| b.prediction);
        let prev_phys = u.prev_phys;
        let store = u
            .mem
            .as_ref()
            .filter(|m| !m.is_load)
            .map(|m| (m.addr.expect("retired store has address"), m.size, m.value));

        // Stats.
        self.stats.retired += 1;
        self.cpi_flags.retired += 1; // this cycle's CPI-stack `base` slots
        self.stats.retired_moves += u.is_move as u64;
        self.stats.retired_reassoc += u.reassociated as u64;
        self.stats.retired_scadd += u.scadd.is_some() as u64;
        self.stats.retired_from_tc += u.from_tc as u64;
        self.stats.fu_executed += u.fu_executed as u64;
        self.stats.bypass_delayed += u.bypass_delayed as u64;
        let ledger_seg = if self.ledger.enabled() && u.from_tc {
            u.seg.as_ref().map(|s| s.provenance.seg_id)
        } else {
            None
        };
        if let Some(sid) = ledger_seg {
            self.ledger.on_retire(sid);
        }

        // Commit stores to memory.
        if let Some((addr, size, value)) = store {
            self.mem.write_sized(addr, size, value);
        }

        // Branch bookkeeping.
        if op.is_cond_branch() {
            let taken = taken.expect("retired branch resolved");
            self.stats.branches += 1;
            if pred_taken != Some(taken) {
                self.stats.branch_mispredicts += 1;
            }
            self.bias.observe(pc, taken);
            if let Some(p) = prediction {
                self.predictor.update(p, taken);
            }
        }
        if op.is_indirect() {
            let actual = actual_next.expect("retired indirect resolved");
            self.stats.indirects += 1;
            if pred_target != Some(actual) {
                self.stats.indirect_mispredicts += 1;
            }
            self.itb.update(pc, actual);
        }

        // Feed the fill unit (after the bias observation, so promotion
        // state is current).
        let promoted = if op.is_cond_branch() && self.fill.config().promotion {
            self.bias.promoted(pc)
        } else {
            None
        };
        let fetch_miss_head = self.uops[&id].miss_head;
        self.fill.retire(
            FillInput {
                pc,
                instr,
                taken,
                promoted,
                fetch_miss_head,
            },
            self.cycle,
        );

        // Release source holds and the displaced mapping, drop
        // checkpoints/shadows owned by this uop, and leave the window.
        let srcs = self.uops[&id].srcs;
        for p in srcs.into_iter().flatten() {
            self.phys.release(p);
        }
        if let Some(prev) = prev_phys {
            self.phys.release(prev);
        }
        self.checkpoints.retain(|c| c.branch != id);
        self.drop_shadow(id);
        if self.lsq.front() == Some(&id) {
            self.lsq.pop_front();
        }
        if self.trace.enabled() {
            self.trace
                .push(self.cycle, crate::tracelog::Event::Retire { uop: id, pc });
        }
        self.window.pop_front();
        self.uops.remove(&id);
        self.last_retire_cycle = self.cycle;
        Ok(())
    }

    /// Retires a serializing system op (`SYSCALL`/`BREAK`), executing it
    /// against architectural state.
    fn retire_system(&mut self, id: u64) -> Result<(), SimError> {
        self.echo_retire(id);
        let u = self.uops.get(&id).expect("retiring uop exists");
        // Architectural reads: all older uops retired, so every live
        // mapping is ready. The syscall itself renamed $v0 at issue, so
        // the service number lives in the mapping it displaced.
        let service_phys = u.prev_phys.unwrap_or(self.rat[ArchReg::V0.index()]);
        let service = self.phys.value(service_phys);
        let a0 = self.phys.value(self.rat[ArchReg::A0.index()]);

        let pc = u.pc;
        let op = u.op;
        let dest = u.dest;
        let prev_phys = u.prev_phys;
        let from_tc = u.from_tc;
        let instr = u.instr;

        if op == Op::Syscall {
            match syscall::execute(service, a0, &mut self.io) {
                Ok(outcome) => {
                    // The syscall renamed $v0; its new mapping holds either
                    // the service result or the unchanged old value.
                    let (_, p) = dest.expect("syscall uop renames $v0");
                    let v0 = outcome.reg_write.map(|(_, v)| v).unwrap_or(service);
                    self.phys.write_arch(p, v0);
                    if let Some(code) = outcome.exit {
                        self.halted = Some(tracefill_isa::interp::Halt::Exited(code));
                    }
                }
                Err(e) => {
                    return Err(self.divergence(
                        id,
                        "syscall",
                        "a recognized syscall service".to_string(),
                        format!("unknown syscall at {pc:#x}: {e}"),
                    ))
                }
            }
        } else {
            self.halted = Some(tracefill_isa::interp::Halt::Break);
        }

        // Oracle lockstep. The syscall already executed against the
        // pipeline's I/O above; on divergence, containment re-adopts the
        // oracle's I/O and halt state wholesale.
        if self.cfg.oracle_check {
            let r = self.oracle.step().map_err(SimError::Oracle)?;
            let mut div: Option<Box<DivergenceReport>> = None;
            if r.pc != pc || r.instr != instr {
                div = Some(self.divergence_report(
                    id,
                    "stream",
                    format!("{:#010x} `{}`", r.pc, r.instr),
                    format!("{pc:#010x} `{instr}`"),
                ));
            } else if let Some((reg, val)) = r.reg_write {
                let p = self.rat[reg.index()];
                let got = self.phys.value(p);
                if got != val {
                    div = Some(self.divergence_report(
                        id,
                        "syscall",
                        format!("{reg} = {val:#x}"),
                        format!("{reg} = {got:#x}"),
                    ));
                }
            }
            if let Some(report) = div {
                if self.cfg.self_repair.enabled {
                    self.contain_divergence(id, *report, &r);
                    return Ok(());
                }
                return Err(SimError::Divergence(report));
            }
        } else {
            self.oracle.step().map_err(SimError::Oracle)?;
        }

        self.stats.retired += 1;
        self.cpi_flags.retired += 1; // this cycle's CPI-stack `base` slots
        self.stats.retired_from_tc += from_tc as u64;
        if self.ledger.enabled() && from_tc {
            if let Some(sid) = self.uops[&id].seg.as_ref().map(|s| s.provenance.seg_id) {
                self.ledger.on_retire(sid);
            }
        }
        self.fill.retire(
            FillInput {
                pc,
                instr,
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
            self.cycle,
        );

        let srcs = self.uops[&id].srcs;
        for p in srcs.into_iter().flatten() {
            self.phys.release(p);
        }
        if let Some(prev) = prev_phys {
            self.phys.release(prev);
        }
        if self.trace.enabled() {
            self.trace
                .push(self.cycle, crate::tracelog::Event::Retire { uop: id, pc });
        }
        self.window.pop_front();
        self.uops.remove(&id);
        self.serialize = None;
        self.fetch_pc = pc.wrapping_add(4);
        self.fetch_stall_until = 0;
        self.last_retire_cycle = self.cycle;
        Ok(())
    }

    /// Compares the retiring uop's architectural effects against the
    /// functional oracle.
    ///
    /// Steps the oracle through the instruction and returns its retirement
    /// record plus the first mismatch, if any, as a structured report —
    /// the caller decides whether the divergence is fatal or contained by
    /// self-repair. An oracle fault (bad program) is always fatal.
    #[allow(clippy::type_complexity)]
    fn check_against_oracle(
        &mut self,
        id: u64,
    ) -> Result<(Retired, Option<Box<DivergenceReport>>), SimError> {
        let r = self.oracle.step().map_err(SimError::Oracle)?;
        let u = &self.uops[&id];
        if r.pc != u.pc || r.instr != u.instr {
            let report = self.divergence_report(
                id,
                "stream",
                format!("{:#010x} `{}`", r.pc, r.instr),
                format!("{:#010x} `{}`", u.pc, u.instr),
            );
            return Ok((r, Some(report)));
        }
        // Register write.
        let sim_write = u.dest.map(|(reg, p)| (reg, self.phys.value(p)));
        if sim_write != r.reg_write {
            let report = self.divergence_report(
                id,
                "register-effect",
                fmt_write(r.reg_write),
                fmt_write(sim_write),
            );
            return Ok((r, Some(report)));
        }
        // Store effect.
        let sim_store = u
            .mem
            .as_ref()
            .filter(|m| !m.is_load)
            .map(|m| (m.addr.unwrap_or(0), m.size, m.value));
        if sim_store != r.store {
            let report = self.divergence_report(
                id,
                "store-effect",
                fmt_store(r.store),
                fmt_store(sim_store),
            );
            return Ok((r, Some(report)));
        }
        // Branch direction.
        let sim_taken = u.branch.as_ref().and_then(|b| b.actual_taken);
        if u.op.is_cond_branch() && sim_taken != r.taken {
            let report = self.divergence_report(
                id,
                "branch-direction",
                format!("{:?}", r.taken),
                format!("{sim_taken:?}"),
            );
            return Ok((r, Some(report)));
        }
        // Control flow of indirect jumps.
        if u.op.is_indirect() {
            let sim_next = u.branch.as_ref().and_then(|b| b.actual_next);
            if sim_next != Some(r.next_pc) {
                let report = self.divergence_report(
                    id,
                    "indirect-target",
                    format!("next pc {:#010x}", r.next_pc),
                    match sim_next {
                        Some(n) => format!("next pc {n:#010x}"),
                        None => "unresolved".to_string(),
                    },
                );
                return Ok((r, Some(report)));
            }
        }
        Ok((r, None))
    }

    /// Contains a lockstep divergence under self-repair.
    ///
    /// The oracle has already executed the diverging instruction; nothing
    /// of it was committed by the pipeline. Containment charges the
    /// offense to the offending segment's passes, invalidates that
    /// segment in the trace cache, squashes the entire machine, adopts
    /// the oracle's architectural state (registers, the instruction's
    /// store, I/O and halt), and resumes through the conventional fetch
    /// path. The retire sequence strictly advances, so repair always
    /// makes forward progress.
    fn contain_divergence(&mut self, id: u64, report: DivergenceReport, r: &Retired) {
        // Attribute and invalidate before the squash forgets the uop.
        let seg = self.uops.get(&id).and_then(|u| u.seg.clone());
        let (passes, class) = match seg.as_deref() {
            Some(s) => (s.provenance.passes(), s.end.name()),
            None => (Vec::new(), "unknown"),
        };
        let invalidated = match seg.as_deref() {
            Some(s) => {
                let removed = self.tcache.invalidate(s.start_pc, s.provenance.seg_id);
                if removed.is_some() {
                    self.ledger.on_invalidate(s.provenance.seg_id, self.cycle);
                }
                removed.is_some()
            }
            None => false,
        };
        let escalations = self.fill.record_offense(&passes, class);

        // Containment proper.
        self.cpi_flags.recovered = true;
        self.repair_squash();
        if let Some((addr, size, value)) = r.store {
            self.mem.write_sized(addr, size, value);
        }
        self.io = self.oracle.io().clone();
        self.halted = self.oracle.halted();

        // The diverging instruction retires with the oracle's effects.
        self.stats.retired += 1;
        self.cpi_flags.retired += 1;
        self.last_retire_cycle = self.cycle;

        // The fill unit's partial segment straddles the divergence; drop
        // it and resume building on the far side.
        self.fill.flush_partial();

        // Resume down the conventional path at the oracle's next PC.
        self.fetch_pc = r.next_pc;
        self.fetch_stall_until = 0;
        self.last_fetch_tc = false;
        if self.trace.enabled() {
            self.trace.push(
                self.cycle,
                crate::tracelog::Event::Repair {
                    pc: report.pc,
                    redirect: r.next_pc,
                },
            );
        }
        self.repairs.push(RepairEvent {
            cycle: report.cycle,
            seq: report.seq,
            pc: report.pc,
            kind: report.kind,
            expected: report.expected,
            actual: report.actual,
            provenance: report.provenance,
            invalidated,
            escalations,
        });
    }
}

/// Renders an optional register write for a divergence report.
fn fmt_write(w: Option<(ArchReg, u32)>) -> String {
    match w {
        Some((reg, val)) => format!("{reg} = {val:#x}"),
        None => "no register write".to_string(),
    }
}

/// Renders an optional store effect for a divergence report.
fn fmt_store(s: Option<(u32, u32, u32)>) -> String {
    match s {
        Some((addr, size, value)) => format!("[{addr:#010x}] <- {value:#x} ({size}B)"),
        None => "no store".to_string(),
    }
}
