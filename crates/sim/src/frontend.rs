//! Fetch stage: trace-cache path and supporting instruction-cache path.

use crate::machine::Simulator;
use crate::uop::{BranchFetchMeta, FetchBundle, FetchSlot, ShadowResume};
use tracefill_core::segment::Segment;
use tracefill_core::tcache::TcHit;
use tracefill_isa::encode::decode;
use tracefill_isa::{ArchReg, Instr, Op};
use tracefill_uarch::hierarchy::Side;

impl Simulator {
    /// Fetch phase: produce at most one bundle per cycle.
    pub(crate) fn phase_fetch(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.serialize.is_some() {
            self.stats.serialize_stall_cycles += 1;
            return;
        }
        // Depth-1 fetch buffer: wait until issue consumed the last bundle.
        if self.fetch_buffer.is_some() || self.pending.is_some() {
            return;
        }
        if self.cycle < self.fetch_stall_until {
            self.stats.icache_stall_cycles += 1;
            self.cpi_flags.icache_stall = true;
            return;
        }
        let pc = self.fetch_pc;

        // Multiple-branch predictions for up to three branch slots.
        let preds = [
            self.predictor.predict(pc, 0),
            self.predictor.predict(pc, 1),
            self.predictor.predict(pc, 2),
        ];
        let dirs = [preds[0].taken, preds[1].taken, preds[2].taken];

        // A live fault plan may corrupt the *fetched copy* of a hit line
        // (a read-path strike); the cached line itself is untouched.
        let hit = self
            .tcache
            .lookup(pc, &dirs)
            .map(|h| match self.injector.as_mut() {
                Some(inj) => inj.on_lookup(h, self.cycle),
                None => h,
            });
        let bundle = match hit {
            Some(hit) => self.fetch_from_line(hit, &preds),
            None => {
                let latency = self.hier.access(Side::Instr, pc);
                if latency > 1 {
                    // Miss: stall; the refill is resident on retry.
                    self.fetch_stall_until = self.cycle + latency as u64;
                    self.stats.icache_stall_cycles += 1;
                    self.cpi_flags.icache_stall = true;
                    return;
                }
                self.fetch_from_icache(pc, &preds)
            }
        };
        if let Some(bundle) = bundle {
            let tc = bundle.slots.first().map(|s| s.from_tc).unwrap_or(false);
            // CPI attribution: remember the supply path so empty-window
            // cycles split into trace-cache misses vs. redirect refills.
            self.last_fetch_tc = tc;
            self.metrics.observe(
                "sim.fetch_bundle",
                crate::machine::FETCH_BUNDLE_BOUNDS,
                bundle.slots.len() as u64,
            );
            if self.trace.enabled() {
                self.trace.push(
                    self.cycle,
                    crate::tracelog::Event::Fetch {
                        pc,
                        count: bundle.slots.len() as u8,
                        tc,
                    },
                );
            }
            self.fetch_buffer = Some(bundle);
        }
    }

    /// Builds a bundle from a trace cache line.
    fn fetch_from_line(
        &mut self,
        hit: TcHit,
        preds: &[tracefill_uarch::pht::Prediction; 3],
    ) -> Option<FetchBundle> {
        let seg: &Segment = &hit.seg;
        let mut slots = Vec::with_capacity(seg.slots.len());
        let mut diverge_at: Option<usize> = None;
        let mut pred_idx = 0usize;
        let mut shadow_ras_pushes = Vec::new();
        let mut shadow_ghr = Vec::new();
        let mut truncated = false;
        let mut next_fetch: Option<u32> = None;

        for (i, s) in seg.slots.iter().enumerate() {
            if truncated {
                break;
            }
            let in_shadow = diverge_at.is_some_and(|d| i > d);
            let mut branch_meta = None;

            if s.op.is_cond_branch() {
                let embedded = s.taken.expect("segment branch has embedded direction");
                let promoted = seg
                    .branches
                    .iter()
                    .find(|b| b.slot as usize == i)
                    .map(|b| b.promoted)
                    .unwrap_or(false);
                let ras_snap = self.ras.snapshot();
                let ghr_snap = self.predictor.snapshot();
                let (pred_taken, prediction) = if promoted {
                    (embedded, None)
                } else {
                    let p = preds[pred_idx.min(2)];
                    pred_idx += 1;
                    (if in_shadow { embedded } else { p.taken }, Some(p))
                };
                if in_shadow {
                    shadow_ghr.push(embedded);
                } else {
                    if !promoted {
                        self.predictor.push_history(pred_taken);
                    }
                    if pred_taken != embedded {
                        // Prediction departs from the line's path here.
                        if self.cfg.inactive_issue {
                            diverge_at = Some(i);
                        } else {
                            truncated = true;
                        }
                        // Fetch continues along the *predicted* direction.
                        next_fetch = Some(if pred_taken {
                            s.orig.taken_target(s.pc).unwrap()
                        } else {
                            s.pc.wrapping_add(4)
                        });
                    }
                }
                branch_meta = Some(BranchFetchMeta {
                    pred_taken: Some(pred_taken),
                    pred_target: None,
                    prediction,
                    promoted,
                    embedded: Some(embedded),
                    ras_snap,
                    ghr_snap,
                });
            } else if s.op.is_indirect() {
                // Always the final slot of a segment.
                let ras_snap = self.ras.snapshot();
                let ghr_snap = self.predictor.snapshot();
                let mut pred_target = None;
                if !in_shadow {
                    pred_target = Some(self.predict_indirect(s.pc, s.orig));
                }
                branch_meta = Some(BranchFetchMeta {
                    pred_taken: None,
                    pred_target,
                    prediction: None,
                    promoted: false,
                    embedded: None,
                    ras_snap,
                    ghr_snap,
                });
                if s.op == Op::Jalr {
                    if in_shadow {
                        shadow_ras_pushes.push(s.pc.wrapping_add(4));
                    } else {
                        self.ras.push(s.pc.wrapping_add(4));
                    }
                }
            } else if s.op == Op::Jal {
                if in_shadow {
                    shadow_ras_pushes.push(s.pc.wrapping_add(4));
                } else {
                    self.ras.push(s.pc.wrapping_add(4));
                }
            }

            slots.push(FetchSlot {
                pc: s.pc,
                instr: s.orig,
                op: s.op,
                imm: s.imm,
                scadd: s.scadd,
                srcs: s.srcs,
                dest: s.dest,
                is_move: s.is_move,
                move_src: s.move_src,
                fu: seg.issue_pos[i],
                reassociated: s.reassociated,
                from_tc: true,
                miss_head: false,
                inactive: in_shadow,
                branch: branch_meta,
                seg: Some(hit.seg.clone()),
            });
        }

        // Where does fetch continue?
        let shadow_resume;
        if let Some(nf) = next_fetch {
            // Divergence (or truncation): continue on the predicted path;
            // the shadow, if any, resumes at the line's own continuation.
            shadow_resume = match seg.next_fetch_pc() {
                Some(pc) => ShadowResume::Pc(pc),
                None => ShadowResume::Indirect,
            };
            self.fetch_pc = nf;
        } else {
            shadow_resume = ShadowResume::Pc(0); // unused: no divergence
            match seg.next_fetch_pc() {
                Some(pc) => self.fetch_pc = pc,
                None => {
                    // Segment ends in an indirect jump: predicted at fetch.
                    let last = slots.last_mut().expect("segment has slots");
                    let target = last
                        .branch
                        .as_ref()
                        .and_then(|b| b.pred_target)
                        .unwrap_or(last.pc.wrapping_add(4));
                    self.fetch_pc = target;
                }
            }
        }

        if self.ledger.enabled() {
            self.ledger
                .on_fetch(seg.provenance.seg_id, slots.len() as u64);
        }

        Some(FetchBundle {
            slots,
            diverge_at,
            shadow_resume,
            shadow_ras_pushes,
            shadow_ghr,
        })
    }

    /// Predicts the target of an indirect jump at fetch time: returns use
    /// the RAS, other indirects the last-target buffer.
    fn predict_indirect(&mut self, pc: u32, instr: Instr) -> u32 {
        let is_return = instr.op == Op::Jr && instr.rs == ArchReg::RA;
        if is_return {
            if let Some(t) = self.ras.pop() {
                return t;
            }
        }
        self.itb.predict(pc).unwrap_or_else(|| pc.wrapping_add(4))
    }

    /// Builds a bundle from the supporting instruction cache: sequential
    /// instructions up to the first control transfer, the fetch width, or
    /// the cache-line boundary.
    fn fetch_from_icache(
        &mut self,
        pc: u32,
        preds: &[tracefill_uarch::pht::Prediction; 3],
    ) -> Option<FetchBundle> {
        let line_bytes = self.cfg.hierarchy.l1i.line_bytes;
        let to_line_end = ((line_bytes - (pc & (line_bytes - 1))) / 4) as usize;
        let max = self.cfg.fetch_width.min(to_line_end).max(1);

        let mut slots: Vec<FetchSlot> = Vec::new();
        let mut next_fetch = pc;
        for i in 0..max {
            let cur = pc.wrapping_add(4 * i as u32);
            let word = self.mem.read_u32(cur);
            let Ok(instr) = decode(word) else {
                // Wrong-path garbage (or a bad program, which the oracle
                // will flag at retire). Stop the block here.
                break;
            };
            let mut srcs = [None, None];
            for (k, r) in instr.srcs().enumerate() {
                srcs[k] = Some(tracefill_core::segment::SrcRef::LiveIn(r));
            }
            let mut branch_meta = None;
            let mut stop = false;
            next_fetch = cur.wrapping_add(4);

            match instr.op {
                op if op.is_cond_branch() => {
                    let ras_snap = self.ras.snapshot();
                    let ghr_snap = self.predictor.snapshot();
                    let p = preds[0];
                    self.predictor.push_history(p.taken);
                    if p.taken {
                        next_fetch = instr.taken_target(cur).unwrap();
                    }
                    branch_meta = Some(BranchFetchMeta {
                        pred_taken: Some(p.taken),
                        pred_target: None,
                        prediction: Some(p),
                        promoted: false,
                        embedded: None,
                        ras_snap,
                        ghr_snap,
                    });
                    stop = true;
                }
                Op::J => {
                    next_fetch = instr.taken_target(cur).unwrap();
                    stop = true;
                }
                Op::Jal => {
                    self.ras.push(cur.wrapping_add(4));
                    next_fetch = instr.taken_target(cur).unwrap();
                    stop = true;
                }
                Op::Jr | Op::Jalr => {
                    let ras_snap = self.ras.snapshot();
                    let ghr_snap = self.predictor.snapshot();
                    let target = self.predict_indirect(cur, instr);
                    if instr.op == Op::Jalr {
                        self.ras.push(cur.wrapping_add(4));
                    }
                    branch_meta = Some(BranchFetchMeta {
                        pred_taken: None,
                        pred_target: Some(target),
                        prediction: None,
                        promoted: false,
                        embedded: None,
                        ras_snap,
                        ghr_snap,
                    });
                    next_fetch = target;
                    stop = true;
                }
                Op::Syscall | Op::Break => {
                    stop = true;
                }
                _ => {}
            }

            slots.push(FetchSlot {
                pc: cur,
                instr,
                op: instr.op,
                imm: instr.imm,
                scadd: None,
                srcs,
                dest: instr.dest(),
                is_move: false,
                move_src: None,
                fu: (slots.len() % self.cfg.num_fus()) as u8,
                reassociated: false,
                from_tc: false,
                miss_head: i == 0,
                inactive: false,
                branch: branch_meta,
                seg: None,
            });
            if stop {
                break;
            }
        }
        if slots.is_empty() {
            // Nothing decodable at this PC; wait for a redirect.
            return None;
        }
        self.fetch_pc = next_fetch;
        Some(FetchBundle {
            slots,
            diverge_at: None,
            shadow_resume: ShadowResume::Pc(0),
            shadow_ras_pushes: Vec::new(),
            shadow_ghr: Vec::new(),
        })
    }
}
