//! Issue stage: rename, checkpoint creation, dispatch, inactive issue.
//!
//! One fetched bundle issues per cycle, bounded by the fetch width, the
//! checkpoint-creation rate (the paper: 3 per cycle, one per block),
//! reservation-station space and free physical registers. Slots past the
//! divergence point of a trace line rename into a *shadow* rename map and
//! dispatch inactively (paper §3 / [4]).

use crate::machine::{Checkpoint, PendingIssue, ShadowBuild, Simulator};
use crate::physreg::{PhysFile, PhysReg};
use crate::uop::{BranchCtx, FetchSlot, MemState, Uop, UopState};
use tracefill_core::segment::SrcRef;
use tracefill_isa::op::OpKind;
use tracefill_isa::Op;

impl Simulator {
    /// Issue phase.
    pub(crate) fn phase_issue(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.pending.is_none() {
            let Some(bundle) = self.fetch_buffer.take() else {
                return;
            };
            let n = bundle.slots.len();
            self.pending = Some(PendingIssue {
                bundle,
                next: 0,
                entry_rat: self.rat,
                line_phys: vec![None; n],
                shadow: None,
            });
        }

        let window_cap = self.cfg.num_fus() * self.cfg.rs_per_fu;
        let mut ckpts = 0usize;
        let mut issued = 0usize;

        loop {
            let Some(p) = self.pending.as_ref() else {
                return;
            };
            if p.next >= p.bundle.slots.len() {
                self.finish_bundle();
                return;
            }
            if issued >= self.cfg.fetch_width {
                return;
            }
            if self.window.len() >= window_cap {
                // CPI attribution: dispatch blocked on structural
                // backpressure (window/RS/checkpoint/phys-reg limits).
                self.cpi_flags.issue_backpressure = true;
                return;
            }
            let slot = p.bundle.slots[p.next].clone();
            let needs_ckpt = !slot.inactive && (slot.op.is_cond_branch() || slot.op.is_indirect());
            if needs_ckpt {
                if ckpts >= self.cfg.checkpoints_per_cycle {
                    return;
                }
                if self.checkpoints.len() >= self.cfg.max_checkpoints {
                    self.cpi_flags.issue_backpressure = true;
                    return;
                }
            }
            let needs_rs = !slot.is_move
                && !matches!(slot.op.kind(), OpKind::System)
                && !matches!(slot.op, Op::J | Op::Jal);
            if needs_rs && self.rs[slot.fu as usize].len() >= self.cfg.rs_per_fu {
                self.cpi_flags.issue_backpressure = true;
                return;
            }
            if !slot.is_move && slot.dest.is_some() && self.phys.free_count() == 0 {
                self.cpi_flags.issue_backpressure = true;
                return;
            }

            self.issue_slot(&slot);
            issued += 1;
            if needs_ckpt {
                ckpts += 1;
            }
            let p = self.pending.as_mut().unwrap();
            p.next += 1;
        }
    }

    /// Finalizes a fully issued bundle: registers the shadow, if any.
    fn finish_bundle(&mut self) {
        let p = self.pending.take().expect("pending bundle");
        if let Some(sb) = p.shadow {
            if !sb.uops.is_empty() {
                self.shadows.insert(
                    sb.anchor,
                    crate::machine::Shadow {
                        anchor: sb.anchor,
                        uops: sb.uops,
                        rat: sb.rat,
                        branch_snaps: sb.branch_snaps,
                        resume: p.bundle.shadow_resume,
                    },
                );
            }
        }
    }

    /// Renames and dispatches one slot.
    fn issue_slot(&mut self, slot: &FetchSlot) {
        let id = self.new_uop_id();
        let in_shadow = slot.inactive;

        let mut srcs = [None, None];
        for (k, s) in slot.srcs.iter().enumerate() {
            if let Some(r) = *s {
                let p = self.resolve_src(r, slot.from_tc);
                // Consumers hold their sources live until they retire:
                // with trace-line entry-state live-ins, a rewritten
                // consumer can be younger than the overwriter of its
                // source mapping, so overwriter-retire alone must not
                // free the register.
                self.phys.acquire(p);
                srcs[k] = Some(p);
            }
        }

        // Destination mapping.
        let mut aliased = false;
        let mut dest = None;
        let mut prev_phys = None;
        if slot.is_move {
            let src_loc = slot.move_src.expect("marked move carries its source");
            let p = self.resolve_src(src_loc, slot.from_tc);
            self.phys.acquire(p);
            aliased = true;
            let d = slot.dest.expect("moves have destinations");
            let rat = self.current_rat_mut(in_shadow);
            prev_phys = Some(rat[d.index()]);
            rat[d.index()] = p;
            dest = Some((d, p));
        } else if let Some(d) = slot.dest {
            let p = self.phys.alloc();
            let rat = self.current_rat_mut(in_shadow);
            prev_phys = Some(rat[d.index()]);
            rat[d.index()] = p;
            dest = Some((d, p));
        } else if slot.op == Op::Syscall {
            // A syscall may write `$v0` (READ_INT); rename it so move
            // aliases of the old mapping keep their value.
            let d = tracefill_isa::ArchReg::V0;
            let p = self.phys.alloc();
            let rat = self.current_rat_mut(in_shadow);
            prev_phys = Some(rat[d.index()]);
            rat[d.index()] = p;
            dest = Some((d, p));
        }

        // Direct jumps complete at issue: the link value is deterministic.
        let mut state = UopState::Waiting;
        if slot.is_move || matches!(slot.op, Op::J | Op::Jal) {
            state = UopState::Done;
            if matches!(slot.op, Op::Jal) {
                let (_, p) = dest.expect("jal writes $ra");
                self.phys.write_arch(p, slot.pc.wrapping_add(4));
            }
        }
        // Jalr's link value is also deterministic; only its target needs
        // execution.
        if slot.op == Op::Jalr {
            if let Some((_, p)) = dest {
                self.phys.write_arch(p, slot.pc.wrapping_add(4));
            }
        }

        // Branch context.
        let branch = slot.branch.as_ref().map(|m| BranchCtx {
            pred_taken: m.pred_taken,
            pred_target: m.pred_target,
            prediction: m.prediction,
            promoted: m.promoted,
            embedded: m.embedded,
            checkpoint: None,
            actual_taken: None,
            actual_next: None,
            resolved: false,
        });

        // Memory context.
        let mem = slot.op.access_size().map(|size| MemState {
            is_load: slot.op.is_load(),
            size,
            addr: None,
            value: 0,
            forwarded: false,
        });

        let mut uop = Uop {
            id,
            pc: slot.pc,
            instr: slot.instr,
            op: slot.op,
            imm: slot.imm,
            scadd: slot.scadd,
            srcs,
            dest,
            prev_phys,
            aliased,
            fu: slot.fu,
            state,
            branch,
            mem,
            from_tc: slot.from_tc,
            miss_head: slot.miss_head,
            is_move: slot.is_move,
            reassociated: slot.reassociated,
            inactive: in_shadow,
            mem_deferred: in_shadow && slot.op.access_size().is_some(),
            bypass_delayed: false,
            fu_executed: false,
            seg: slot.seg.clone(),
        };

        // Checkpoints for active branches and indirect jumps.
        if !in_shadow && (slot.op.is_cond_branch() || slot.op.is_indirect()) {
            let meta = slot.branch.as_ref().expect("branch slot carries metadata");
            let ckpt_id = self.next_ckpt_id;
            self.next_ckpt_id += 1;
            self.checkpoints.push(Checkpoint {
                id: ckpt_id,
                branch: id,
                rat: self.rat,
                ras: meta.ras_snap.clone(),
                ghr: meta.ghr_snap,
            });
            if let Some(b) = uop.branch.as_mut() {
                b.checkpoint = Some(ckpt_id);
            }
        }

        // Serializing ops: halt the front end until retirement; they are
        // executed at retire, not dispatched. Inactive system ops only
        // serialize if their shadow is activated.
        if uop.is_system() && !in_shadow {
            self.serialize = Some(id);
        }

        // Dispatch.
        let needs_rs = !uop.is_move && !uop.is_system() && !matches!(uop.op, Op::J | Op::Jal);
        if needs_rs {
            self.rs[uop.fu as usize].push(id);
        }
        if uop.mem.is_some() && !in_shadow {
            self.lsq.push_back(id);
        }

        // Bookkeeping: window (active) or shadow.
        if in_shadow {
            let is_branch = uop.op.is_cond_branch() || uop.op.is_indirect();
            let pend = self.pending.as_mut().unwrap();
            let sb = pend.shadow.as_mut().expect("shadow context exists");
            sb.uops.push(id);
            if is_branch {
                let rat = sb.rat;
                sb.branch_snaps.push((id, rat));
            }
            self.uops.insert(id, uop);
        } else {
            self.window.push_back(id);
            let starts_shadow = self
                .pending
                .as_ref()
                .map(|p| p.bundle.diverge_at == Some(p.next))
                .unwrap_or(false);
            self.uops.insert(id, uop);
            if starts_shadow {
                // Slots after this one rename into a copy of the current
                // (post-branch) map.
                let rat = self.rat;
                let pend = self.pending.as_mut().unwrap();
                pend.shadow = Some(ShadowBuild {
                    anchor: id,
                    uops: Vec::new(),
                    rat,
                    branch_snaps: Vec::new(),
                });
            }
        }

        // Record this slot's result location for later internal refs.
        let pend = self.pending.as_mut().unwrap();
        pend.line_phys[pend.next] = dest.map(|(_, p)| p);

        if self.trace.enabled() {
            self.trace.push(
                self.cycle,
                crate::tracelog::Event::Issue {
                    uop: id,
                    pc: slot.pc,
                    fu: slot.fu,
                    inactive: in_shadow,
                },
            );
        }
    }

    /// Resolves one dataflow source.
    ///
    /// Trace-line live-ins mean "the architectural value at segment
    /// entry", so they read the entry-time rename snapshot — in-segment
    /// redefinitions are always expressed as `Internal` references. Raw
    /// instruction-cache slots carry no dependency marking, so their
    /// live-ins read the running RAT (which earlier slots of the same
    /// bundle have already updated).
    fn resolve_src(&self, r: SrcRef, from_tc: bool) -> PhysReg {
        match r {
            SrcRef::LiveIn(reg) => {
                if reg.is_zero() {
                    PhysFile::ZERO
                } else if from_tc {
                    self.pending.as_ref().unwrap().entry_rat[reg.index()]
                } else {
                    self.rat[reg.index()]
                }
            }
            SrcRef::Internal(pslot) => self.pending.as_ref().unwrap().line_phys[pslot as usize]
                .expect("internal reference to un-issued slot"),
        }
    }

    fn current_rat_mut(
        &mut self,
        in_shadow: bool,
    ) -> &mut [PhysReg; tracefill_isa::reg::NUM_ARCH_REGS] {
        if in_shadow {
            &mut self
                .pending
                .as_mut()
                .unwrap()
                .shadow
                .as_mut()
                .expect("shadow context exists")
                .rat
        } else {
            &mut self.rat
        }
    }
}
