//! Physical register file with reference counting and cluster-aware
//! value-availability timing.
//!
//! Register-move elimination (paper §4.2) maps two (or more) architectural
//! registers onto one physical register, so physical registers are
//! reference counted: one reference for the allocating instruction's
//! mapping plus one per move alias. A register is freed when its last
//! reference dies — at the retirement of the instruction that overwrote
//! the mapping, or at the squash of the instruction that created it.
//!
//! Each register also records *when* and *in which cluster* its value was
//! produced: a consumer in another cluster sees the value
//! `cross_cluster_latency` cycles later (paper §3), which is what the
//! placement optimization (§4.5) attacks.

/// Index of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg(pub u16);

/// Sentinel cluster meaning "visible everywhere immediately" (architectural
/// values and values produced long ago).
pub const ANY_CLUSTER: u8 = u8::MAX;

/// Cycle value meaning "not yet scheduled".
pub const NEVER: u64 = u64::MAX;

/// The physical register file.
#[derive(Debug, Clone)]
pub struct PhysFile {
    vals: Vec<u32>,
    done_at: Vec<u64>,
    cluster: Vec<u8>,
    refcnt: Vec<u32>,
    free: Vec<u16>,
    cross_latency: u64,
}

impl PhysFile {
    /// The always-zero register backing `$zero`.
    pub const ZERO: PhysReg = PhysReg(0);

    /// Creates a file of `n` registers; register 0 is pinned to zero.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > u16::MAX as usize`.
    pub fn new(n: usize, cross_latency: u32) -> PhysFile {
        assert!((2..=u16::MAX as usize).contains(&n));
        let mut f = PhysFile {
            vals: vec![0; n],
            done_at: vec![0; n],
            cluster: vec![ANY_CLUSTER; n],
            refcnt: vec![0; n],
            free: (1..n as u16).rev().collect(),
            cross_latency: cross_latency as u64,
        };
        f.refcnt[0] = 1; // $zero is never freed
        f
    }

    /// Allocates a register with one reference.
    ///
    /// # Panics
    ///
    /// Panics if the file is exhausted (the pipeline must size
    /// `phys_regs` above its maximum in-flight demand).
    pub fn alloc(&mut self) -> PhysReg {
        let p = self.free.pop().expect("physical register file exhausted");
        self.vals[p as usize] = 0;
        self.done_at[p as usize] = NEVER;
        self.cluster[p as usize] = ANY_CLUSTER;
        self.refcnt[p as usize] = 1;
        PhysReg(p)
    }

    /// Adds a reference (move aliasing, or a consumer holding the register
    /// as a source until it retires). References to `$zero` are not
    /// counted — it is immortal.
    pub fn acquire(&mut self, p: PhysReg) {
        if p == Self::ZERO {
            return;
        }
        debug_assert!(self.refcnt[p.0 as usize] > 0, "acquire of dead register");
        self.refcnt[p.0 as usize] += 1;
    }

    /// Drops a reference, freeing the register when it was the last.
    pub fn release(&mut self, p: PhysReg) {
        if p == Self::ZERO {
            return;
        }
        let r = &mut self.refcnt[p.0 as usize];
        debug_assert!(*r > 0, "release of dead register {p:?}");
        *r -= 1;
        if *r == 0 {
            self.free.push(p.0);
        }
    }

    /// Writes the value a producer computed, visible in the producer's
    /// cluster at `done_at` and elsewhere one cross-cluster hop later.
    pub fn write(&mut self, p: PhysReg, val: u32, done_at: u64, cluster: u8) {
        debug_assert_ne!(
            p,
            Self::ZERO,
            "writes to the zero register are dropped earlier"
        );
        self.vals[p.0 as usize] = val;
        self.done_at[p.0 as usize] = done_at;
        self.cluster[p.0 as usize] = cluster;
    }

    /// Marks a register as holding an architectural (everywhere-visible)
    /// value, used when seeding reset state.
    pub fn write_arch(&mut self, p: PhysReg, val: u32) {
        self.vals[p.0 as usize] = val;
        self.done_at[p.0 as usize] = 0;
        self.cluster[p.0 as usize] = ANY_CLUSTER;
    }

    /// The register's value. Only meaningful once scheduled; callers gate
    /// on [`avail_at`](Self::avail_at).
    pub fn value(&self, p: PhysReg) -> u32 {
        self.vals[p.0 as usize]
    }

    /// Cycle at which the value is usable by a consumer in `cluster`
    /// ([`NEVER`] if the producer has not even been scheduled).
    pub fn avail_at(&self, p: PhysReg, cluster: u8) -> u64 {
        let i = p.0 as usize;
        let done = self.done_at[i];
        if done == NEVER {
            return NEVER;
        }
        let prod = self.cluster[i];
        if prod == ANY_CLUSTER || prod == cluster {
            done
        } else {
            done.saturating_add(self.cross_latency)
        }
    }

    /// Cycle at which the value exists at its producer (no bypass
    /// penalty) — the Figure 7 comparison point.
    pub fn done_at(&self, p: PhysReg) -> u64 {
        self.done_at[p.0 as usize]
    }

    /// Number of free registers (for backpressure checks and tests).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Live reference count of `p` (test hook).
    pub fn refcount(&self, p: PhysReg) -> u32 {
        self.refcnt[p.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut f = PhysFile::new(4, 1);
        let a = f.alloc();
        let b = f.alloc();
        let c = f.alloc();
        assert_eq!(f.free_count(), 0);
        f.release(b);
        assert_eq!(f.free_count(), 1);
        let b2 = f.alloc();
        assert_eq!(b2, b); // LIFO reuse
        f.release(a);
        f.release(c);
        f.release(b2);
        assert_eq!(f.free_count(), 3);
    }

    #[test]
    fn aliasing_keeps_register_alive() {
        let mut f = PhysFile::new(4, 1);
        let p = f.alloc();
        f.acquire(p); // move alias
        f.release(p);
        assert_eq!(f.free_count(), 2); // still live
        f.release(p);
        assert_eq!(f.free_count(), 3);
    }

    #[test]
    fn zero_is_immortal() {
        let mut f = PhysFile::new(4, 1);
        f.release(PhysFile::ZERO);
        f.release(PhysFile::ZERO);
        assert_eq!(f.value(PhysFile::ZERO), 0);
        assert_eq!(f.avail_at(PhysFile::ZERO, 3), 0);
    }

    #[test]
    fn cross_cluster_penalty() {
        let mut f = PhysFile::new(4, 1);
        let p = f.alloc();
        assert_eq!(f.avail_at(p, 0), NEVER);
        f.write(p, 42, 100, 2);
        assert_eq!(f.avail_at(p, 2), 100);
        assert_eq!(f.avail_at(p, 0), 101);
        assert_eq!(f.done_at(p), 100);
        // Architectural values have no penalty.
        f.write_arch(p, 7);
        assert_eq!(f.avail_at(p, 0), 0);
    }
}
