//! Simulation statistics — everything the paper's tables and figures need.

use crate::cpi::CpiStack;
use tracefill_core::tcache::TraceCacheStats;
use tracefill_uarch::cache::CacheStats;
use tracefill_util::{Json, Registry};

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions retired (the numerator of IPC).
    pub retired: u64,
    /// Retired instructions that had been marked as register moves.
    pub retired_moves: u64,
    /// Retired instructions whose immediate had been reassociated.
    pub retired_reassoc: u64,
    /// Retired instructions executed as scaled adds.
    pub retired_scadd: u64,
    /// Retired instructions fetched from the trace cache.
    pub retired_from_tc: u64,
    /// Retired instructions whose last-arriving operand was delayed by the
    /// cross-cluster bypass network (Figure 7 numerator).
    pub bypass_delayed: u64,
    /// Retired instructions that executed in a functional unit (Figure 7
    /// denominator; excludes moves, which never visit a FU, and other
    /// zero-source completions).
    pub fu_executed: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches mispredicted (including promoted ones).
    pub branch_mispredicts: u64,
    /// Mispredictions rescued by inactive issue (the trace's embedded path
    /// was correct and its blocks were already in flight).
    pub inactive_rescues: u64,
    /// Inactive-issued instructions that were eventually activated.
    pub activated_uops: u64,
    /// Inactive-issued instructions that were discarded.
    pub discarded_inactive_uops: u64,
    /// Indirect jumps retired / mispredicted.
    pub indirects: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Wrong-path (squashed) uops that had entered the window.
    pub squashed_uops: u64,
    /// Fetch cycles stalled on instruction-cache misses.
    pub icache_stall_cycles: u64,
    /// Cycles the front end was serialized behind a syscall.
    pub serialize_stall_cycles: u64,
}

impl Stats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of retired instructions that were transformed by the fill
    /// unit (Table 2's "Total" column).
    pub fn transformed_fraction(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            (self.retired_moves + self.retired_reassoc + self.retired_scadd) as f64
                / self.retired as f64
        }
    }

    /// Fraction of FU-executed instructions delayed by the bypass network
    /// (Figure 7).
    pub fn bypass_delay_fraction(&self) -> f64 {
        if self.fu_executed == 0 {
            0.0
        } else {
            self.bypass_delayed as f64 / self.fu_executed as f64
        }
    }

    /// Conditional branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of retired instructions supplied by the trace cache.
    pub fn tc_fraction(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.retired_from_tc as f64 / self.retired as f64
        }
    }
}

impl Stats {
    /// All counters as a flat JSON object (deterministic member order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("cycles", self.cycles)
            .with("retired", self.retired)
            .with("retired_moves", self.retired_moves)
            .with("retired_reassoc", self.retired_reassoc)
            .with("retired_scadd", self.retired_scadd)
            .with("retired_from_tc", self.retired_from_tc)
            .with("bypass_delayed", self.bypass_delayed)
            .with("fu_executed", self.fu_executed)
            .with("branches", self.branches)
            .with("branch_mispredicts", self.branch_mispredicts)
            .with("inactive_rescues", self.inactive_rescues)
            .with("activated_uops", self.activated_uops)
            .with("discarded_inactive_uops", self.discarded_inactive_uops)
            .with("indirects", self.indirects)
            .with("indirect_mispredicts", self.indirect_mispredicts)
            .with("squashed_uops", self.squashed_uops)
            .with("icache_stall_cycles", self.icache_stall_cycles)
            .with("serialize_stall_cycles", self.serialize_stall_cycles)
    }

    /// Reconstructs counters from [`to_json`](Self::to_json) output.
    /// Unknown members are ignored; missing members default to zero.
    #[must_use]
    pub fn from_json(v: &Json) -> Stats {
        let f = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        Stats {
            cycles: f("cycles"),
            retired: f("retired"),
            retired_moves: f("retired_moves"),
            retired_reassoc: f("retired_reassoc"),
            retired_scadd: f("retired_scadd"),
            retired_from_tc: f("retired_from_tc"),
            bypass_delayed: f("bypass_delayed"),
            fu_executed: f("fu_executed"),
            branches: f("branches"),
            branch_mispredicts: f("branch_mispredicts"),
            inactive_rescues: f("inactive_rescues"),
            activated_uops: f("activated_uops"),
            discarded_inactive_uops: f("discarded_inactive_uops"),
            indirects: f("indirects"),
            indirect_mispredicts: f("indirect_mispredicts"),
            squashed_uops: f("squashed_uops"),
            icache_stall_cycles: f("icache_stall_cycles"),
            serialize_stall_cycles: f("serialize_stall_cycles"),
        }
    }
}

/// A full report: pipeline counters plus the underlying structures' stats,
/// the CPI stack and the metrics registry.
#[derive(Debug, Clone)]
pub struct Report {
    /// Pipeline counters.
    pub stats: Stats,
    /// Trace cache hit/miss/fill counters.
    pub tcache: TraceCacheStats,
    /// L1I, L1D, L2 hit/miss counters.
    pub caches: (CacheStats, CacheStats, CacheStats),
    /// Fill-unit transformation counts (build-time view).
    pub fill_segments: u64,
    /// Mean finalized segment length.
    pub mean_segment_len: f64,
    /// Commit-slot stall attribution (see [`crate::cpi`]).
    pub cpi: CpiStack,
    /// Counters/gauges/histograms: fill-unit opt accept/reject telemetry,
    /// segment-length and window-occupancy distributions, and the mirrored
    /// retire-time transformation counts the Table 2 path consumes.
    pub metrics: Registry,
}

impl Report {
    /// The full report as a JSON object tree (deterministic member order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let cache = |c: &CacheStats| Json::object().with("hits", c.hits).with("misses", c.misses);
        Json::object()
            .with("stats", self.stats.to_json())
            .with(
                "tcache",
                Json::object()
                    .with("hits", self.tcache.hits)
                    .with("misses", self.tcache.misses)
                    .with("full_path_hits", self.tcache.full_path_hits)
                    .with("fills", self.tcache.fills)
                    .with("refreshes", self.tcache.refreshes)
                    .with("evictions", self.tcache.evictions),
            )
            .with(
                "caches",
                Json::object()
                    .with("l1i", cache(&self.caches.0))
                    .with("l1d", cache(&self.caches.1))
                    .with("l2", cache(&self.caches.2)),
            )
            .with("fill_segments", self.fill_segments)
            .with("mean_segment_len", self.mean_segment_len)
            .with("cpi", self.cpi.to_json())
            .with("metrics", self.metrics.to_json())
    }

    /// Rebuilds a report from [`to_json`](Self::to_json) output, so stored
    /// harness rows can be re-rendered without re-simulating. Unknown
    /// members are ignored; missing members default to zero/empty (the
    /// round-trip partner of `to_json`).
    #[must_use]
    pub fn from_json(v: &Json) -> Report {
        let u = |node: Option<&Json>, k: &str| {
            node.and_then(|n| n.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let cache = |node: Option<&Json>| CacheStats {
            hits: u(node, "hits"),
            misses: u(node, "misses"),
        };
        let tc = v.get("tcache");
        let caches = v.get("caches");
        Report {
            stats: v.get("stats").map(Stats::from_json).unwrap_or_default(),
            tcache: TraceCacheStats {
                hits: u(tc, "hits"),
                misses: u(tc, "misses"),
                full_path_hits: u(tc, "full_path_hits"),
                fills: u(tc, "fills"),
                refreshes: u(tc, "refreshes"),
                evictions: u(tc, "evictions"),
            },
            caches: (
                cache(caches.and_then(|c| c.get("l1i"))),
                cache(caches.and_then(|c| c.get("l1d"))),
                cache(caches.and_then(|c| c.get("l2"))),
            ),
            fill_segments: v.get("fill_segments").and_then(Json::as_u64).unwrap_or(0),
            mean_segment_len: v
                .get("mean_segment_len")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            cpi: v.get("cpi").map(CpiStack::from_json).unwrap_or_default(),
            metrics: v
                .get("metrics")
                .and_then(|m| Registry::from_json(m).ok())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = Stats {
            cycles: 100,
            retired: 420,
            retired_moves: 21,
            retired_reassoc: 10,
            retired_scadd: 11,
            fu_executed: 200,
            bypass_delayed: 70,
            branches: 50,
            branch_mispredicts: 5,
            ..Stats::default()
        };
        assert!((s.ipc() - 4.2).abs() < 1e-12);
        assert!((s.transformed_fraction() - 0.1).abs() < 1e-12);
        assert!((s.bypass_delay_fraction() - 0.35).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_defined() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.transformed_fraction(), 0.0);
        assert_eq!(s.bypass_delay_fraction(), 0.0);
    }

    #[test]
    fn stats_json_roundtrips() {
        let s = Stats {
            cycles: 7,
            retired: 42,
            retired_moves: 3,
            branch_mispredicts: 1,
            serialize_stall_cycles: 2,
            ..Stats::default()
        };
        let back = Stats::from_json(&s.to_json());
        assert_eq!(back, s);
        // Byte-identical re-serialization (deterministic member order).
        assert_eq!(back.to_json().dump(), s.to_json().dump());
    }

    #[test]
    fn stats_from_json_tolerates_unknown_and_missing_members() {
        // A row written by a *future* version: extra members must be
        // ignored, and members this version knows but the row lacks must
        // default to zero rather than poisoning the parse.
        let text = r#"{
            "cycles": 10,
            "retired": 55,
            "a_counter_from_the_future": 999,
            "nested_future": {"x": 1},
            "retired_moves": 4
        }"#;
        let s = Stats::from_json(&Json::parse(text).unwrap());
        assert_eq!(s.cycles, 10);
        assert_eq!(s.retired, 55);
        assert_eq!(s.retired_moves, 4);
        // Everything absent from the row is zero.
        assert_eq!(s.retired_reassoc, 0);
        assert_eq!(s.branches, 0);
        assert_eq!(s.serialize_stall_cycles, 0);
        // Degenerate inputs parse to all-zero stats, not a panic.
        assert_eq!(
            Stats::from_json(&Json::parse("{}").unwrap()),
            Stats::default()
        );
        assert_eq!(
            Stats::from_json(&Json::parse("3").unwrap()),
            Stats::default()
        );
    }
}
