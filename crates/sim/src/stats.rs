//! Simulation statistics — everything the paper's tables and figures need.

use serde::{Deserialize, Serialize};
use tracefill_core::tcache::TraceCacheStats;
use tracefill_uarch::cache::CacheStats;

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions retired (the numerator of IPC).
    pub retired: u64,
    /// Retired instructions that had been marked as register moves.
    pub retired_moves: u64,
    /// Retired instructions whose immediate had been reassociated.
    pub retired_reassoc: u64,
    /// Retired instructions executed as scaled adds.
    pub retired_scadd: u64,
    /// Retired instructions fetched from the trace cache.
    pub retired_from_tc: u64,
    /// Retired instructions whose last-arriving operand was delayed by the
    /// cross-cluster bypass network (Figure 7 numerator).
    pub bypass_delayed: u64,
    /// Retired instructions that executed in a functional unit (Figure 7
    /// denominator; excludes moves, which never visit a FU, and other
    /// zero-source completions).
    pub fu_executed: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches mispredicted (including promoted ones).
    pub branch_mispredicts: u64,
    /// Mispredictions rescued by inactive issue (the trace's embedded path
    /// was correct and its blocks were already in flight).
    pub inactive_rescues: u64,
    /// Inactive-issued instructions that were eventually activated.
    pub activated_uops: u64,
    /// Inactive-issued instructions that were discarded.
    pub discarded_inactive_uops: u64,
    /// Indirect jumps retired / mispredicted.
    pub indirects: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Wrong-path (squashed) uops that had entered the window.
    pub squashed_uops: u64,
    /// Fetch cycles stalled on instruction-cache misses.
    pub icache_stall_cycles: u64,
    /// Cycles the front end was serialized behind a syscall.
    pub serialize_stall_cycles: u64,
}

impl Stats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of retired instructions that were transformed by the fill
    /// unit (Table 2's "Total" column).
    pub fn transformed_fraction(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            (self.retired_moves + self.retired_reassoc + self.retired_scadd) as f64
                / self.retired as f64
        }
    }

    /// Fraction of FU-executed instructions delayed by the bypass network
    /// (Figure 7).
    pub fn bypass_delay_fraction(&self) -> f64 {
        if self.fu_executed == 0 {
            0.0
        } else {
            self.bypass_delayed as f64 / self.fu_executed as f64
        }
    }

    /// Conditional branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of retired instructions supplied by the trace cache.
    pub fn tc_fraction(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.retired_from_tc as f64 / self.retired as f64
        }
    }
}

/// A full report: pipeline counters plus the underlying structures' stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Pipeline counters.
    pub stats: Stats,
    /// Trace cache hit/miss/fill counters.
    pub tcache: TraceCacheStats,
    /// L1I, L1D, L2 hit/miss counters.
    pub caches: (CacheStats, CacheStats, CacheStats),
    /// Fill-unit transformation counts (build-time view).
    pub fill_segments: u64,
    /// Mean finalized segment length.
    pub mean_segment_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = Stats {
            cycles: 100,
            retired: 420,
            retired_moves: 21,
            retired_reassoc: 10,
            retired_scadd: 11,
            fu_executed: 200,
            bypass_delayed: 70,
            branches: 50,
            branch_mispredicts: 5,
            ..Stats::default()
        };
        assert!((s.ipc() - 4.2).abs() < 1e-12);
        assert!((s.transformed_fraction() - 0.1).abs() < 1e-12);
        assert!((s.bypass_delay_fraction() - 0.35).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_defined() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.transformed_fraction(), 0.0);
        assert_eq!(s.bypass_delay_fraction(), 0.0);
    }
}
