//! In-flight micro-operations and fetch bundles.

use crate::physreg::PhysReg;
use std::sync::Arc;
use tracefill_core::segment::{ScAdd, Segment, SrcRef};
use tracefill_isa::{ArchReg, Instr, Op};
use tracefill_uarch::pht::{HistorySnapshot, Prediction};
use tracefill_uarch::ras::RasSnapshot;

/// Identity of an in-flight uop (monotonic, never reused within a run).
pub type UopId = u64;

/// Execution state of a uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopState {
    /// In a reservation station, waiting for operands.
    Waiting,
    /// Executing; completes at the stored cycle.
    Executing {
        /// Completion cycle.
        done: u64,
    },
    /// Result produced (moves are born `Done`).
    Done,
}

/// Memory-operation progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemState {
    /// Load (true) or store (false).
    pub is_load: bool,
    /// Access size in bytes.
    pub size: u32,
    /// Effective address, once generated.
    pub addr: Option<u32>,
    /// Store data (captured at execute) or loaded value.
    pub value: u32,
    /// For loads: the value was forwarded from an in-flight store.
    pub forwarded: bool,
}

/// Branch/jump resolution context.
#[derive(Debug, Clone)]
pub struct BranchCtx {
    /// Direction the fetch engine followed (conditional branches).
    pub pred_taken: Option<bool>,
    /// Predicted target (indirect jumps).
    pub pred_target: Option<u32>,
    /// PHT training handle, if a dynamic prediction was made.
    pub prediction: Option<Prediction>,
    /// The branch was promoted (statically predicted) in its trace line.
    pub promoted: bool,
    /// Embedded direction in the trace line, if fetched from the TC.
    pub embedded: Option<bool>,
    /// Checkpoint owned by this uop.
    pub checkpoint: Option<u64>,
    /// Resolved direction.
    pub actual_taken: Option<bool>,
    /// Resolved target PC (the PC that follows this instruction).
    pub actual_next: Option<u32>,
    /// Resolution happened.
    pub resolved: bool,
}

/// One in-flight micro-operation.
#[derive(Debug, Clone)]
pub struct Uop {
    /// Identity.
    pub id: UopId,
    /// PC of the instruction.
    pub pc: u32,
    /// The architectural instruction (for retire-time oracle comparison).
    pub instr: Instr,
    /// Executed opcode.
    pub op: Op,
    /// Executed immediate (possibly reassociated).
    pub imm: i32,
    /// Scaled-add annotation.
    pub scadd: Option<ScAdd>,
    /// Physical source registers.
    pub srcs: [Option<PhysReg>; 2],
    /// Destination: architectural register and its physical mapping.
    pub dest: Option<(ArchReg, PhysReg)>,
    /// The physical register this uop's destination mapping displaced
    /// (freed when this uop retires).
    pub prev_phys: Option<PhysReg>,
    /// The destination mapping is an alias of the source (marked move).
    pub aliased: bool,
    /// Functional unit (issue slot) assignment.
    pub fu: u8,
    /// Execution state.
    pub state: UopState,
    /// Branch context.
    pub branch: Option<BranchCtx>,
    /// Memory context.
    pub mem: Option<MemState>,
    /// Fetched from the trace cache.
    pub from_tc: bool,
    /// Head of a trace-cache-miss fetch bundle (see
    /// [`FetchSlot::miss_head`]).
    pub miss_head: bool,
    /// Marked register move (completed in rename).
    pub is_move: bool,
    /// Immediate was reassociated by the fill unit.
    pub reassociated: bool,
    /// Currently inactive (in a shadow context).
    pub inactive: bool,
    /// Shadow memory op: execution deferred until activation.
    pub mem_deferred: bool,
    /// Last-arriving operand was delayed by the cross-cluster bypass.
    pub bypass_delayed: bool,
    /// Ran through a functional unit (Figure 7 denominator).
    pub fu_executed: bool,
    /// The trace segment this uop was fetched from (`None` on the
    /// instruction-cache path). Carried to retirement so a lockstep
    /// divergence can name the originating segment and the passes that
    /// touched it.
    pub seg: Option<Arc<Segment>>,
}

impl Uop {
    /// Whether the uop's result is produced and visible.
    pub fn is_done(&self) -> bool {
        self.state == UopState::Done
    }

    /// Whether this uop is a serializing system op.
    pub fn is_system(&self) -> bool {
        matches!(self.op, Op::Syscall | Op::Break)
    }

    /// Whether this uop needs a checkpoint (conditional branch or
    /// indirect jump).
    pub fn needs_checkpoint(&self) -> bool {
        self.op.is_cond_branch() || self.op.is_indirect()
    }
}

/// Per-branch fetch-time snapshots used to build checkpoints.
#[derive(Debug, Clone)]
pub struct BranchFetchMeta {
    /// Predicted direction (conditional) at fetch.
    pub pred_taken: Option<bool>,
    /// Predicted target (indirect) at fetch.
    pub pred_target: Option<u32>,
    /// PHT handle for retire-time training.
    pub prediction: Option<Prediction>,
    /// Promoted in the fetched line.
    pub promoted: bool,
    /// Embedded direction in the fetched line.
    pub embedded: Option<bool>,
    /// RAS state before this branch's own RAS effect.
    pub ras_snap: RasSnapshot,
    /// History state before this branch's own history push.
    pub ghr_snap: HistorySnapshot,
}

/// One slot of a fetch bundle, uniform across the trace-cache and
/// instruction-cache paths.
#[derive(Debug, Clone)]
pub struct FetchSlot {
    /// PC.
    pub pc: u32,
    /// Architectural instruction.
    pub instr: Instr,
    /// Executed opcode (from the segment, or `instr.op` on the raw path).
    pub op: Op,
    /// Executed immediate.
    pub imm: i32,
    /// Scaled-add annotation.
    pub scadd: Option<ScAdd>,
    /// Dataflow sources (`LiveIn` on the raw path).
    pub srcs: [Option<SrcRef>; 2],
    /// Architectural destination.
    pub dest: Option<ArchReg>,
    /// Marked move and its source.
    pub is_move: bool,
    /// Move source location.
    pub move_src: Option<SrcRef>,
    /// Issue slot (functional unit) assignment.
    pub fu: u8,
    /// Reassociated immediate.
    pub reassociated: bool,
    /// Fetched from the trace cache.
    pub from_tc: bool,
    /// First instruction of a bundle fetched after a trace-cache miss —
    /// i.e. an address the fetch engine actually looked up and missed.
    /// The fill unit starts new segments at these addresses so stored
    /// segments answer to real fetch addresses.
    pub miss_head: bool,
    /// Inactive (past the divergence point of the line).
    pub inactive: bool,
    /// Branch metadata.
    pub branch: Option<BranchFetchMeta>,
    /// The trace segment this slot came from (`None` on the
    /// instruction-cache path); see [`Uop::seg`].
    pub seg: Option<Arc<Segment>>,
}

/// Where fetch resumes after a shadow context is activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowResume {
    /// A known PC (the line's embedded continuation).
    Pc(u32),
    /// After the line's terminal indirect jump (identified by its slot
    /// index in the bundle); the target is predicted/resolved later.
    Indirect,
}

/// A bundle of fetched instructions awaiting issue.
#[derive(Debug, Clone)]
pub struct FetchBundle {
    /// Slots in original program order.
    pub slots: Vec<FetchSlot>,
    /// Index of the divergence branch, if the line's embedded path departs
    /// from the predictions (slots after it are inactive).
    pub diverge_at: Option<usize>,
    /// Where fetch resumes along the shadow path if it is activated.
    pub shadow_resume: ShadowResume,
    /// Return addresses pushed by calls in the shadow portion, applied at
    /// activation.
    pub shadow_ras_pushes: Vec<u32>,
    /// Embedded directions of shadow-portion conditional branches, pushed
    /// into the history at activation.
    pub shadow_ghr: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracefill_isa::instr::NOP;

    #[test]
    fn uop_flags() {
        let u = Uop {
            id: 0,
            pc: 0,
            instr: NOP,
            op: Op::Beq,
            imm: 0,
            scadd: None,
            srcs: [None, None],
            dest: None,
            prev_phys: None,
            aliased: false,
            fu: 0,
            state: UopState::Waiting,
            branch: None,
            mem: None,
            from_tc: false,
            miss_head: false,
            is_move: false,
            reassociated: false,
            inactive: false,
            mem_deferred: false,
            bypass_delayed: false,
            fu_executed: false,
            seg: None,
        };
        assert!(u.needs_checkpoint());
        assert!(!u.is_done());
        assert!(!u.is_system());
        let jr = Uop {
            op: Op::Jr,
            ..u.clone()
        };
        assert!(jr.needs_checkpoint());
        let sys = Uop {
            op: Op::Syscall,
            ..u
        };
        assert!(sys.is_system());
        assert!(!sys.needs_checkpoint());
    }
}
