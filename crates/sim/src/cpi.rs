//! CPI-stack stall attribution: per-cycle commit-slot accounting.
//!
//! Every simulated cycle offers `fetch_width` commit slots. Slots filled
//! by retirements count toward [`CpiStack::base`]; the remaining slots of
//! the cycle are charged to exactly **one** stall cause, chosen by a
//! priority cascade over machine state at the end of the cycle. The stack
//! is therefore *conservative and complete*:
//!
//! ```text
//! base + icache_miss + tc_miss + fetch_redirect + window_full
//!      + fu_contention + bypass_delay + branch_recovery + serialize
//!      == cycles × width
//! ```
//!
//! holds as an exact integer identity (asserted by
//! [`CpiStack::check_complete`] and a sim integration test), and because
//! `base` slots are precisely retirements, `base / cycles` reproduces IPC
//! bit-for-bit. This is what lets every IPC delta in the paper's Figure 8
//! decompose into named cycles instead of "IPC moved".
//!
//! The attribution cascade (highest priority first):
//!
//! 1. **branch_recovery** — a misprediction recovery squashed the window
//!    this cycle (flag raised in `recover.rs`);
//! 2. **serialize** — a serializing system op is in flight and the front
//!    end is drained behind it;
//! 3. window empty (nothing to retire):
//!    * **icache_miss** — fetch is stalled on an instruction-cache refill
//!      (flag raised in `frontend.rs`);
//!    * **tc_miss** — the last fetch came from the supporting instruction
//!      cache, i.e. the trace cache missed and delivery is block-limited;
//!    * **fetch_redirect** — otherwise: the pipeline is refilling behind a
//!      redirect (or cold start) with trace-cache supply;
//! 4. window occupied but the head could not retire:
//!    * **bypass_delay** — the head uop is executing and its last operand
//!      paid a cross-cluster bypass penalty (recorded in `exec.rs`);
//!    * **window_full** — issue was blocked by backpressure this cycle
//!      (window capacity, RS space, checkpoint or physical-register
//!      limits; flags raised in `issue.rs`);
//!    * **fu_contention** — otherwise: the head is waiting on a functional
//!      unit, operand or memory latency.

use tracefill_util::Json;

/// Names of the stack's stall components, in canonical report order
/// (`base` excluded).
pub const STALL_COMPONENTS: [&str; 8] = [
    "icache_miss",
    "tc_miss",
    "fetch_redirect",
    "window_full",
    "fu_contention",
    "bypass_delay",
    "branch_recovery",
    "serialize",
];

/// Commit-slot counts accumulated over a run (all in units of *slots*,
/// where one cycle offers `width` slots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Commit slots per cycle (the machine's fetch/retire width).
    pub width: u64,
    /// Cycles attributed (matches `Stats::cycles`).
    pub cycles: u64,
    /// Slots filled by retirements (`== Stats::retired`).
    pub base: u64,
    /// Slots lost to instruction-cache refill stalls.
    pub icache_miss: u64,
    /// Slots lost to trace-cache misses (block-limited icache supply).
    pub tc_miss: u64,
    /// Slots lost refilling the pipe behind a redirect or cold start.
    pub fetch_redirect: u64,
    /// Slots lost to issue backpressure (window/RS/checkpoint/phys-reg).
    pub window_full: u64,
    /// Slots lost waiting on functional units, operands or memory.
    pub fu_contention: u64,
    /// Slots lost behind a head uop delayed by the cross-cluster bypass.
    pub bypass_delay: u64,
    /// Slots lost to misprediction recovery flushes.
    pub branch_recovery: u64,
    /// Slots lost while serialized behind a system op.
    pub serialize: u64,
}

/// One stall cause, as picked by the attribution cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Instruction-cache refill stall.
    IcacheMiss,
    /// Trace-cache miss (icache-supplied fetch).
    TcMiss,
    /// Pipeline refill behind a redirect / cold start.
    FetchRedirect,
    /// Issue backpressure.
    WindowFull,
    /// Functional-unit / operand / memory latency.
    FuContention,
    /// Cross-cluster bypass penalty at the window head.
    BypassDelay,
    /// Misprediction recovery.
    BranchRecovery,
    /// Serialized behind a system op.
    Serialize,
}

impl CpiStack {
    /// Creates an empty stack for a machine with `width` commit slots per
    /// cycle.
    #[must_use]
    pub fn new(width: usize) -> CpiStack {
        CpiStack {
            width: width as u64,
            ..CpiStack::default()
        }
    }

    /// Accounts one cycle: `retired` slots go to `base`, the remaining
    /// `width - retired` slots are charged to `cause`.
    pub fn account_cycle(&mut self, retired: u64, cause: StallCause) {
        debug_assert!(retired <= self.width, "retired more than width");
        self.cycles += 1;
        self.base += retired;
        let lost = self.width - retired.min(self.width);
        if lost == 0 {
            return;
        }
        *self.slot_mut(cause) += lost;
    }

    fn slot_mut(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::IcacheMiss => &mut self.icache_miss,
            StallCause::TcMiss => &mut self.tc_miss,
            StallCause::FetchRedirect => &mut self.fetch_redirect,
            StallCause::WindowFull => &mut self.window_full,
            StallCause::FuContention => &mut self.fu_contention,
            StallCause::BypassDelay => &mut self.bypass_delay,
            StallCause::BranchRecovery => &mut self.branch_recovery,
            StallCause::Serialize => &mut self.serialize,
        }
    }

    /// Stall components as `(name, slots)` pairs in canonical order
    /// (`base` excluded).
    #[must_use]
    pub fn stall_slots(&self) -> [(&'static str, u64); 8] {
        [
            ("icache_miss", self.icache_miss),
            ("tc_miss", self.tc_miss),
            ("fetch_redirect", self.fetch_redirect),
            ("window_full", self.window_full),
            ("fu_contention", self.fu_contention),
            ("bypass_delay", self.bypass_delay),
            ("branch_recovery", self.branch_recovery),
            ("serialize", self.serialize),
        ]
    }

    /// Total accounted slots (`base` plus every stall component).
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.base + self.stall_slots().iter().map(|(_, v)| v).sum::<u64>()
    }

    /// Whether the stack is conservative and complete:
    /// `total_slots() == cycles × width`.
    #[must_use]
    pub fn check_complete(&self) -> bool {
        self.total_slots() == self.cycles * self.width
    }

    /// IPC reconstructed from the stack's `base` component. Equals
    /// `Stats::ipc` exactly (both are `retired / cycles`).
    #[must_use]
    pub fn ipc_from_base(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.base as f64 / self.cycles as f64
        }
    }

    /// The CPI contribution of one component's slot count:
    /// `slots / (width × retired)`. Because the slot counts sum to
    /// `cycles × width`, the contributions of `base` and all stall
    /// components sum exactly to the run's CPI (`cycles / retired`).
    #[must_use]
    pub fn cpi_of(&self, slots: u64) -> f64 {
        if self.base == 0 || self.width == 0 {
            0.0
        } else {
            slots as f64 / (self.width as f64 * self.base as f64)
        }
    }

    /// Field-wise difference (`self - earlier`), for measuring a window of
    /// a longer run. Both operands must share `width`.
    #[must_use]
    pub fn delta_since(&self, earlier: &CpiStack) -> CpiStack {
        debug_assert_eq!(self.width, earlier.width);
        CpiStack {
            width: self.width,
            cycles: self.cycles - earlier.cycles,
            base: self.base - earlier.base,
            icache_miss: self.icache_miss - earlier.icache_miss,
            tc_miss: self.tc_miss - earlier.tc_miss,
            fetch_redirect: self.fetch_redirect - earlier.fetch_redirect,
            window_full: self.window_full - earlier.window_full,
            fu_contention: self.fu_contention - earlier.fu_contention,
            bypass_delay: self.bypass_delay - earlier.bypass_delay,
            branch_recovery: self.branch_recovery - earlier.branch_recovery,
            serialize: self.serialize - earlier.serialize,
        }
    }

    /// Field-wise sum, for aggregating across runs of the same machine
    /// width.
    pub fn merge(&mut self, other: &CpiStack) {
        debug_assert!(self.width == 0 || other.width == 0 || self.width == other.width);
        if self.width == 0 {
            self.width = other.width;
        }
        self.cycles += other.cycles;
        self.base += other.base;
        self.icache_miss += other.icache_miss;
        self.tc_miss += other.tc_miss;
        self.fetch_redirect += other.fetch_redirect;
        self.window_full += other.window_full;
        self.fu_contention += other.fu_contention;
        self.bypass_delay += other.bypass_delay;
        self.branch_recovery += other.branch_recovery;
        self.serialize += other.serialize;
    }

    /// All counters as a flat JSON object (deterministic member order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object()
            .with("width", self.width)
            .with("cycles", self.cycles)
            .with("base", self.base);
        for (name, slots) in self.stall_slots() {
            obj = obj.with(name, slots);
        }
        obj
    }

    /// Reconstructs a stack from [`to_json`](Self::to_json) output.
    /// Unknown members are ignored; missing members default to zero.
    #[must_use]
    pub fn from_json(v: &Json) -> CpiStack {
        let f = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        CpiStack {
            width: f("width"),
            cycles: f("cycles"),
            base: f("base"),
            icache_miss: f("icache_miss"),
            tc_miss: f("tc_miss"),
            fetch_redirect: f("fetch_redirect"),
            window_full: f("window_full"),
            fu_contention: f("fu_contention"),
            bypass_delay: f("bypass_delay"),
            branch_recovery: f("branch_recovery"),
            serialize: f("serialize"),
        }
    }
}

/// Per-cycle attribution hints raised by the pipeline stages and consumed
/// (then cleared) at the end of each [`Simulator::step_cycle`].
///
/// [`Simulator::step_cycle`]: crate::Simulator::step_cycle
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CpiFlags {
    /// `retire.rs`: instructions retired this cycle (the cycle's `base`
    /// commit slots).
    pub retired: u64,
    /// `recover.rs`: a misprediction recovery flushed the window.
    pub recovered: bool,
    /// `frontend.rs`: fetch stalled on an instruction-cache refill.
    pub icache_stall: bool,
    /// `issue.rs`: dispatch stopped on structural backpressure
    /// (window capacity, RS space, checkpoint or phys-reg limits).
    pub issue_backpressure: bool,
    /// `exec.rs`: the window-head uop is executing with a cross-cluster
    /// bypass penalty on its critical operand.
    pub head_bypass_delayed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_is_conservative_and_complete() {
        let mut s = CpiStack::new(16);
        s.account_cycle(16, StallCause::FuContention); // full cycle: no loss
        s.account_cycle(5, StallCause::TcMiss);
        s.account_cycle(0, StallCause::BranchRecovery);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.base, 21);
        assert_eq!(s.tc_miss, 11);
        assert_eq!(s.branch_recovery, 16);
        assert_eq!(s.fu_contention, 0);
        assert!(s.check_complete());
        assert_eq!(s.total_slots(), 48);
    }

    #[test]
    fn ipc_from_base_is_exact() {
        let mut s = CpiStack::new(16);
        for _ in 0..7 {
            s.account_cycle(3, StallCause::WindowFull);
        }
        assert_eq!(s.ipc_from_base(), 21.0 / 7.0);
    }

    #[test]
    fn delta_and_merge_are_fieldwise() {
        let mut a = CpiStack::new(16);
        a.account_cycle(4, StallCause::IcacheMiss);
        a.account_cycle(2, StallCause::Serialize);
        let snapshot = a;
        a.account_cycle(1, StallCause::IcacheMiss);
        let window = a.delta_since(&snapshot);
        assert_eq!(window.cycles, 1);
        assert_eq!(window.base, 1);
        assert_eq!(window.icache_miss, 15);
        assert!(window.check_complete());

        let mut m = CpiStack::default();
        m.merge(&snapshot);
        m.merge(&window);
        assert_eq!(m, a);
        assert!(m.check_complete());
    }

    #[test]
    fn json_roundtrip_ignores_unknown_members() {
        let mut s = CpiStack::new(16);
        s.account_cycle(9, StallCause::BypassDelay);
        let back = CpiStack::from_json(&s.to_json());
        assert_eq!(back, s);
        let sparse = Json::object()
            .with("width", 16u64)
            .with("cycles", 1u64)
            .with("base", 16u64)
            .with("future_component", 3u64);
        let got = CpiStack::from_json(&sparse);
        assert_eq!(got.base, 16);
        assert_eq!(got.icache_miss, 0);
    }

    #[test]
    fn component_order_is_canonical() {
        let s = CpiStack::new(16);
        let names: Vec<&str> = s.stall_slots().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, STALL_COMPONENTS);
    }
}
