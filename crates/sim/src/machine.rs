//! The simulator: machine state, reset, and the cycle loop.
//!
//! One [`Simulator`] owns every structure of the paper's machine. Each
//! simulated cycle runs five phases in a fixed order chosen so that every
//! pipeline stage costs at least one cycle:
//!
//! 1. **complete** — execution results whose latency elapses this cycle
//!    become visible; branches resolve (possibly triggering checkpoint
//!    recovery or shadow activation);
//! 2. **retire** — completed head-of-window uops retire in order, checked
//!    against the functional oracle and fed to the fill unit;
//! 3. **execute** — each functional unit selects the oldest ready uop in
//!    its reservation station and begins execution;
//! 4. **issue** — the previously fetched bundle renames and dispatches
//!    (bounded by width, checkpoints/cycle and RS space);
//! 5. **fetch** — the next bundle is fetched from the trace cache or the
//!    instruction cache.

use crate::config::SimConfig;
use crate::cpi::{CpiFlags, CpiStack, StallCause};
use crate::inject::FaultInjector;
use crate::oracle::{DivergenceReport, RetireEcho};
use crate::physreg::{PhysFile, PhysReg};
use crate::stats::{Report, Stats};
use crate::tracelog::TraceLog;
use crate::uop::{FetchBundle, Uop, UopId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use tracefill_core::fill::FillUnit;
use tracefill_core::tcache::TraceCache;
use tracefill_isa::interp::{Halt, Interp};
use tracefill_isa::mem::Memory;
use tracefill_isa::program::{Program, STACK_TOP};
use tracefill_isa::reg::NUM_ARCH_REGS;
use tracefill_isa::syscall::IoCtx;
use tracefill_isa::ArchReg;
use tracefill_uarch::bias::BiasTable;
use tracefill_uarch::hierarchy::MemHierarchy;
use tracefill_uarch::indirect::TargetBuffer;
use tracefill_uarch::pht::{HistorySnapshot, MultiBranchPredictor};
use tracefill_uarch::ras::{RasSnapshot, ReturnStack};

/// A checkpoint taken at a conditional branch or indirect jump.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    #[allow(dead_code)] // diagnostic identity, shown in Debug dumps
    pub id: u64,
    pub branch: UopId,
    pub rat: [PhysReg; NUM_ARCH_REGS],
    pub ras: RasSnapshot,
    pub ghr: HistorySnapshot,
}

/// An inactive (shadow) continuation created by inactive issue.
#[derive(Debug)]
pub(crate) struct Shadow {
    /// The divergence branch this shadow hangs off.
    #[allow(dead_code)] // diagnostic identity, shown in Debug dumps
    pub anchor: UopId,
    /// Shadow uops in program order.
    pub uops: Vec<UopId>,
    /// Shadow rename state after all shadow uops.
    pub rat: [PhysReg; NUM_ARCH_REGS],
    /// Per-shadow-branch rename snapshots, for checkpoint creation at
    /// activation (RAS/history snapshots are reconstructed by walking the
    /// shadow uops in order at activation time).
    pub branch_snaps: Vec<(UopId, [PhysReg; NUM_ARCH_REGS])>,
    /// Where fetch resumes after activation.
    pub resume: crate::uop::ShadowResume,
}

/// A bundle being issued, possibly across several cycles.
#[derive(Debug)]
pub(crate) struct PendingIssue {
    pub bundle: FetchBundle,
    /// Next slot index to issue.
    pub next: usize,
    /// Rename state at segment entry. Trace-line `LiveIn` sources resolve
    /// against this (the whole line renames "at once", as in the paper);
    /// raw instruction-cache slots resolve against the running RAT, since
    /// they carry no explicit dependency marking.
    pub entry_rat: [PhysReg; NUM_ARCH_REGS],
    /// Physical destination of each already-issued slot (for `Internal`
    /// dataflow references). Moves record their aliased register.
    pub line_phys: Vec<Option<PhysReg>>,
    /// Shadow context under construction (slots past the divergence).
    pub shadow: Option<ShadowBuild>,
}

/// Shadow state while its slots are still issuing.
#[derive(Debug)]
pub(crate) struct ShadowBuild {
    pub anchor: UopId,
    pub uops: Vec<UopId>,
    pub rat: [PhysReg; NUM_ARCH_REGS],
    pub branch_snaps: Vec<(UopId, [PhysReg; NUM_ARCH_REGS])>,
}

/// Why a simulation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// The program exited via the `EXIT` service.
    Exited(u32),
    /// A `BREAK` instruction retired.
    Break,
    /// The cycle budget ran out before the program finished.
    CycleLimit,
    /// The instruction budget was reached (see
    /// [`Simulator::run_budgeted`]).
    InstrLimit,
    /// An external cancellation flag was raised mid-run (see
    /// [`Simulator::run_budgeted`]).
    Cancelled,
}

/// A fatal simulation error (always a simulator bug, an injected fault
/// the checkers caught, or a bad program).
#[derive(Debug, Clone)]
pub enum SimError {
    /// The pipeline retired an architectural effect the oracle disagrees
    /// with (or a strict-mode segment verification failed) — the full
    /// structured report names the cycle, the expected/actual effects,
    /// the recent-retirement ring and the originating trace segment.
    Divergence(Box<DivergenceReport>),
    /// The machine stopped making progress.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Last retired instruction count.
        retired: u64,
    },
    /// The functional oracle itself faulted (bad program).
    Oracle(tracefill_isa::interp::InterpError),
}

impl SimError {
    /// The divergence report, when this error is a lockstep divergence.
    pub fn divergence(&self) -> Option<&DivergenceReport> {
        match self {
            SimError::Divergence(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Divergence(report) => write!(f, "{report}"),
            SimError::Deadlock { cycle, retired } => {
                write!(
                    f,
                    "no retirement progress by cycle {cycle} ({retired} retired)"
                )
            }
            SimError::Oracle(e) => write!(f, "oracle fault: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The trace-cache microprocessor simulator.
///
/// # Examples
///
/// ```
/// use tracefill_isa::asm::assemble;
/// use tracefill_sim::{SimConfig, Simulator};
///
/// let prog = assemble(r#"
///         .text
/// main:   li   $t0, 100
///         li   $t1, 0
/// loop:   add  $t1, $t1, $t0
///         addi $t0, $t0, -1
///         bgtz $t0, loop
///         move $a0, $t1
///         li   $v0, 1
///         syscall
///         li   $v0, 10
///         syscall
/// "#)?;
/// let mut sim = Simulator::new(&prog, SimConfig::default());
/// let exit = sim.run(1_000_000)?;
/// // The EXIT service reports `$a0` as the exit code.
/// assert!(matches!(exit, tracefill_sim::RunExit::Exited(_)));
/// assert_eq!(sim.io().output, vec![5050]);
/// assert!(sim.stats().ipc() > 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    pub(crate) cfg: SimConfig,

    // Memory and architectural oracle.
    pub(crate) mem: Memory,
    pub(crate) io: IoCtx,
    pub(crate) oracle: Interp,

    // Front-end structures.
    pub(crate) tcache: TraceCache,
    pub(crate) fill: FillUnit,
    pub(crate) predictor: MultiBranchPredictor,
    pub(crate) bias: BiasTable,
    pub(crate) ras: ReturnStack,
    pub(crate) itb: TargetBuffer,
    pub(crate) hier: MemHierarchy,

    // Fetch state.
    pub(crate) fetch_pc: u32,
    pub(crate) fetch_stall_until: u64,
    pub(crate) fetch_buffer: Option<FetchBundle>,
    pub(crate) pending: Option<PendingIssue>,
    /// Serializing uop in flight: fetch halts until it retires.
    pub(crate) serialize: Option<UopId>,

    // Rename state.
    pub(crate) rat: [PhysReg; NUM_ARCH_REGS],
    pub(crate) phys: PhysFile,
    pub(crate) next_uop_id: UopId,
    pub(crate) next_ckpt_id: u64,
    pub(crate) checkpoints: Vec<Checkpoint>,

    // Window and backend.
    pub(crate) uops: HashMap<UopId, Uop>,
    pub(crate) window: VecDeque<UopId>,
    pub(crate) shadows: HashMap<UopId, Shadow>,
    pub(crate) rs: Vec<Vec<UopId>>,
    pub(crate) lsq: VecDeque<UopId>,
    pub(crate) completions: BTreeMap<u64, Vec<UopId>>,

    // Control.
    pub(crate) cycle: u64,
    pub(crate) halted: Option<Halt>,
    pub(crate) stats: Stats,
    pub(crate) last_retire_cycle: u64,
    pub(crate) trace: TraceLog,

    // Robustness.
    /// Ring buffer of recent retirements for divergence reports (bounded
    /// by `cfg.divergence_ring`).
    pub(crate) retire_ring: VecDeque<RetireEcho>,
    /// Deterministic fault injector, when the config carries a plan.
    pub(crate) injector: Option<FaultInjector>,
    /// Contained failures, in occurrence order (empty unless
    /// `cfg.self_repair.enabled` and something actually diverged).
    pub(crate) repairs: Vec<crate::repair::RepairEvent>,

    // Observability.
    pub(crate) cpi: CpiStack,
    pub(crate) cpi_flags: CpiFlags,
    /// Whether the most recent fetch bundle came from the trace cache
    /// (false at cold start, when supply is icache by definition).
    pub(crate) last_fetch_tc: bool,
    pub(crate) metrics: tracefill_util::Registry,
    /// Segment lifetime ledger (no-op unless `cfg.ledger`).
    pub(crate) ledger: tracefill_core::ledger::Ledger,
}

/// Bucket bounds for the per-cycle window-occupancy histogram.
pub(crate) const WINDOW_OCC_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Bucket bounds for the fetch-bundle-size histogram (instructions per
/// delivered bundle, up to the 16-wide fetch path).
pub(crate) const FETCH_BUNDLE_BOUNDS: &[u64] = &[1, 2, 4, 6, 8, 10, 12, 14, 16];

impl Simulator {
    /// Creates a simulator with the program loaded and the machine reset.
    pub fn new(program: &Program, cfg: SimConfig) -> Simulator {
        Simulator::with_io(program, cfg, IoCtx::default())
    }

    /// Creates a simulator with an input stream for `READ_INT`.
    pub fn with_io(program: &Program, cfg: SimConfig, io: IoCtx) -> Simulator {
        let mut phys = PhysFile::new(cfg.phys_regs, cfg.cross_cluster_latency);
        let mut rat = [PhysFile::ZERO; NUM_ARCH_REGS];
        for r in ArchReg::all() {
            if r.is_zero() {
                continue;
            }
            let p = phys.alloc();
            let v = if r == ArchReg::SP { STACK_TOP } else { 0 };
            phys.write_arch(p, v);
            rat[r.index()] = p;
        }
        let num_fus = cfg.num_fus();
        let mut fill = FillUnit::new(cfg.fill);
        if cfg.self_repair.enabled {
            fill.enable_quarantine(cfg.self_repair.quarantine());
        }
        Simulator {
            mem: program.load(),
            io: io.clone(),
            oracle: Interp::with_io(program, io),
            tcache: TraceCache::new(cfg.tcache),
            fill,
            predictor: MultiBranchPredictor::new(cfg.predictor),
            bias: BiasTable::new(cfg.bias),
            ras: ReturnStack::new(cfg.ras_depth),
            itb: TargetBuffer::new(cfg.target_buffer),
            hier: MemHierarchy::new(cfg.hierarchy),
            fetch_pc: program.entry,
            fetch_stall_until: 0,
            fetch_buffer: None,
            pending: None,
            serialize: None,
            rat,
            phys,
            next_uop_id: 0,
            next_ckpt_id: 0,
            checkpoints: Vec::new(),
            uops: HashMap::new(),
            window: VecDeque::new(),
            shadows: HashMap::new(),
            rs: (0..num_fus).map(|_| Vec::new()).collect(),
            lsq: VecDeque::new(),
            completions: BTreeMap::new(),
            cycle: 0,
            halted: None,
            stats: Stats::default(),
            last_retire_cycle: 0,
            trace: TraceLog::new(cfg.trace_depth),
            retire_ring: VecDeque::new(),
            injector: cfg.fault_plan.clone().map(FaultInjector::new),
            repairs: Vec::new(),
            cpi: CpiStack::new(cfg.fetch_width),
            cpi_flags: CpiFlags::default(),
            last_fetch_tc: false,
            metrics: tracefill_util::Registry::new(),
            ledger: tracefill_core::ledger::Ledger::new(cfg.ledger),
            cfg,
        }
    }

    /// Pipeline statistics so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// The I/O channels (program output lands here).
    pub fn io(&self) -> &IoCtx {
        &self.io
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The committed architectural value of a register (reads through the
    /// rename table — only meaningful between cycles or after halt, when
    /// no speculative mappings are outstanding ahead of the retire point).
    pub fn arch_reg(&self, r: ArchReg) -> u32 {
        self.phys.value(self.rat[r.index()])
    }

    /// The architectural memory (stores commit here at retirement).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// How the program halted, if it has.
    pub fn halted(&self) -> Option<Halt> {
        self.halted
    }

    /// Faults that actually fired from the configured
    /// [`FaultPlan`](crate::inject::FaultPlan) (0 without a plan).
    pub fn faults_fired(&self) -> u64 {
        self.injector.as_ref().map_or(0, FaultInjector::fired)
    }

    /// Contained failures so far, in occurrence order (empty unless
    /// [`SimConfig::self_repair`](crate::config::SimConfig::self_repair)
    /// is enabled and something actually diverged).
    pub fn repairs(&self) -> &[crate::repair::RepairEvent] {
        &self.repairs
    }

    /// Assembles the run's self-repair report: every contained failure
    /// plus the escalation ladder's final state. Byte-deterministic for a
    /// fixed seed and fault plan.
    pub fn repair_report(&self) -> crate::repair::RepairReport {
        crate::repair::RepairReport {
            events: self.repairs.clone(),
            ladder: self
                .fill
                .quarantine()
                .map_or(tracefill_util::Json::Null, |q| q.to_json()),
        }
    }

    /// The pipeline event trace (empty unless
    /// [`SimConfig::trace_depth`](crate::config::SimConfig::trace_depth)
    /// was set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The CPI stack accumulated so far (commit-slot stall attribution).
    pub fn cpi(&self) -> CpiStack {
        self.cpi
    }

    /// The segment lifetime ledger (empty unless
    /// [`SimConfig::ledger`](crate::config::SimConfig::ledger) was set).
    pub fn ledger(&self) -> &tracefill_core::ledger::Ledger {
        &self.ledger
    }

    /// Assembles a full report (pipeline + structure statistics, the CPI
    /// stack and the metrics registry).
    ///
    /// The registry combines the simulator's own distributions (window
    /// occupancy, fetch bundle size), the fill unit's per-optimization
    /// accept/reject telemetry, and — mirrored mechanically from
    /// [`Stats`] so the two can never drift — the retire-time
    /// transformation counters the Table 2 path consumes
    /// (`retire.moves` / `retire.reassoc` / `retire.scadd`).
    pub fn report(&self) -> Report {
        let mut metrics = self.metrics.clone();
        metrics.merge(self.fill.telemetry());
        if let Some(inj) = &self.injector {
            metrics.merge(inj.metrics());
        }
        metrics.add("retire.moves", self.stats.retired_moves);
        metrics.add("retire.reassoc", self.stats.retired_reassoc);
        metrics.add("retire.scadd", self.stats.retired_scadd);
        metrics.add("retire.from_tc", self.stats.retired_from_tc);
        metrics.add("retire.total", self.stats.retired);
        let tc = self.tcache.stats();
        metrics.add("tcache.hits", tc.hits);
        metrics.add("tcache.misses", tc.misses);
        metrics.add("tcache.full_path_hits", tc.full_path_hits);
        metrics.add("tcache.fills", tc.fills);
        metrics.add("tcache.refreshes", tc.refreshes);
        metrics.add("tcache.evictions", tc.evictions);
        metrics.add(
            &format!("policy.evict.{}", self.tcache.policy_name()),
            tc.evictions,
        );
        // The replacement policy's own bookkeeping; always agrees with
        // the cache statistics above (cross-checked in tests).
        let pc = self.tcache.policy_counters();
        metrics.add("policy.hits", pc.hits);
        metrics.add("policy.evictions", pc.evictions);
        metrics.add("policy.evict_age_ticks", pc.evict_age_ticks);
        if self.ledger.enabled() {
            self.ledger.export_metrics(&mut metrics, self.cycle);
        }
        // Self-repair availability counters, only once something was
        // actually contained: a clean self-repair-on run stays
        // metric-identical (and therefore byte-identical in every export)
        // to a run without self-repair.
        if !self.repairs.is_empty() {
            use tracefill_core::quarantine::Escalation;
            metrics.add("repair.total", self.repairs.len() as u64);
            for ev in &self.repairs {
                metrics.inc(&format!("repair.kind.{}", ev.kind));
                if ev.invalidated {
                    metrics.inc("repair.invalidated");
                }
                for esc in &ev.escalations {
                    metrics.inc(match esc {
                        Escalation::Quarantined { .. } => "repair.quarantined",
                        Escalation::Disabled { .. } => "repair.disabled",
                    });
                }
            }
        }
        Report {
            stats: self.stats,
            tcache: self.tcache.stats(),
            caches: self.hier.stats(),
            fill_segments: self.fill.stats().segments,
            mean_segment_len: self.fill.stats().mean_segment_len(),
            cpi: self.cpi,
            metrics,
        }
    }

    /// Fill-unit statistics (transformation counts at build time).
    pub fn fill_stats(&self) -> tracefill_core::fill::FillStats {
        self.fill.stats()
    }

    /// Trace-cache statistics.
    pub fn tcache_stats(&self) -> tracefill_core::tcache::TraceCacheStats {
        self.tcache.stats()
    }

    /// The replacement policy's own hit/eviction bookkeeping (always
    /// agrees with [`tcache_stats`](Self::tcache_stats)).
    pub fn tcache_policy_counters(&self) -> tracefill_core::tcache::PolicyCounters {
        self.tcache.policy_counters()
    }

    /// Runs until the program exits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Divergence`] if a retirement diverges from
    /// the functional oracle (a simulator bug or an injected fault the
    /// checkers caught), [`SimError::Deadlock`] if no instruction retires
    /// for a long stretch, or [`SimError::Oracle`] for faults in the
    /// program itself.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunExit, SimError> {
        let budget = self.cycle.saturating_add(max_cycles);
        while self.cycle < budget {
            if let Some(h) = self.halted {
                return Ok(Self::halt_exit(h));
            }
            self.step_cycle()?;
        }
        if let Some(h) = self.halted {
            return Ok(Self::halt_exit(h));
        }
        Ok(RunExit::CycleLimit)
    }

    /// Runs until `n` more instructions retire, the program exits, or the
    /// watchdog fires. Used by benchmark harnesses that sample fixed
    /// instruction budgets.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_instrs(&mut self, n: u64) -> Result<RunExit, SimError> {
        let target = self.stats.retired + n;
        while self.stats.retired < target {
            if let Some(h) = self.halted {
                return Ok(Self::halt_exit(h));
            }
            self.step_cycle()?;
        }
        Ok(RunExit::CycleLimit)
    }

    /// Runs until `max_instrs` more instructions retire, `max_cycles` more
    /// cycles elapse, the program exits, or `cancel` is raised — whichever
    /// comes first.
    ///
    /// This is the campaign engine's hook: the instruction budget bounds
    /// the measured window, the cycle budget is a hard watchdog against
    /// pathological configurations that stop retiring (but keep resetting
    /// the internal deadlock detector), and the cancellation flag lets a
    /// worker pool abandon a run from another thread. The flag is polled
    /// every [`CANCEL_POLL_CYCLES`](Self::CANCEL_POLL_CYCLES) cycles, so
    /// cancellation latency is bounded and the hot loop stays branch-cheap.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_budgeted(
        &mut self,
        max_instrs: u64,
        max_cycles: u64,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<RunExit, SimError> {
        let instr_target = self.stats.retired.saturating_add(max_instrs);
        let cycle_target = self.cycle.saturating_add(max_cycles);
        loop {
            if let Some(h) = self.halted {
                return Ok(Self::halt_exit(h));
            }
            if self.stats.retired >= instr_target {
                return Ok(RunExit::InstrLimit);
            }
            if self.cycle >= cycle_target {
                return Ok(RunExit::CycleLimit);
            }
            if self.cycle.is_multiple_of(Self::CANCEL_POLL_CYCLES) {
                if let Some(flag) = cancel {
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        return Ok(RunExit::Cancelled);
                    }
                }
            }
            self.step_cycle()?;
        }
    }

    /// How often (in cycles) [`run_budgeted`](Self::run_budgeted) polls its
    /// cancellation flag.
    pub const CANCEL_POLL_CYCLES: u64 = 1024;

    fn halt_exit(h: Halt) -> RunExit {
        match h {
            Halt::Exited(code) => RunExit::Exited(code),
            Halt::Break => RunExit::Break,
        }
    }

    /// Simulates one cycle.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.phase_complete();
        self.phase_retire()?;
        if self.halted.is_none() {
            self.phase_execute();
            self.phase_issue();
            self.phase_fetch();
        }
        // Every executed cycle is counted and CPI-attributed — including
        // the halting one, whose retirements must land in `base` for the
        // stack to stay slot-exact against `cycles × width`.
        self.stats.cycles = self.cycle;
        self.account_cpi();
        if self.halted.is_some() {
            return Ok(());
        }

        // Watchdog: a healthy machine retires something every few thousand
        // cycles (the worst case is a serialized miss chain).
        if self.cycle - self.last_retire_cycle > 100_000 {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                retired: self.stats.retired,
            });
        }
        Ok(())
    }

    /// End-of-cycle CPI attribution: `retired` slots go to `base`, the
    /// rest of the cycle's commit slots are charged to one stall cause
    /// picked by the priority cascade documented in [`crate::cpi`]. Also
    /// records the per-cycle window-occupancy distribution.
    fn account_cpi(&mut self) {
        let flags = std::mem::take(&mut self.cpi_flags);
        let cause = if flags.recovered {
            StallCause::BranchRecovery
        } else if self.serialize.is_some() {
            StallCause::Serialize
        } else if self.window.is_empty() {
            if flags.icache_stall || self.cycle < self.fetch_stall_until {
                StallCause::IcacheMiss
            } else if !self.last_fetch_tc {
                StallCause::TcMiss
            } else {
                StallCause::FetchRedirect
            }
        } else if flags.head_bypass_delayed {
            StallCause::BypassDelay
        } else if flags.issue_backpressure {
            StallCause::WindowFull
        } else {
            StallCause::FuContention
        };
        self.cpi
            .account_cycle(flags.retired.min(self.cpi.width), cause);
        self.metrics.observe(
            "sim.window_occupancy",
            WINDOW_OCC_BOUNDS,
            self.window.len() as u64,
        );
    }

    // ---- shared helpers used by the stage modules ----

    pub(crate) fn new_uop_id(&mut self) -> UopId {
        let id = self.next_uop_id;
        self.next_uop_id += 1;
        id
    }

    /// Program-order position of `id` in the window (for age comparisons).
    pub(crate) fn window_pos(&self, id: UopId) -> Option<usize> {
        self.window.iter().position(|&u| u == id)
    }

    /// The cluster of a functional unit.
    pub(crate) fn cluster_of(&self, fu: u8) -> u8 {
        self.cfg.clusters.cluster_of(fu)
    }
}

impl Simulator {
    /// Formats a diagnostic dump of the window around the retirement head —
    /// uop states, operand mappings and values. Intended for debugging
    /// simulator issues; the format is unstable.
    pub fn dump_window(&self, n: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycle {} window={} lsq={}",
            self.cycle,
            self.window.len(),
            self.lsq.len()
        );
        for &id in self.window.iter().take(n) {
            let Some(u) = self.uops.get(&id) else {
                continue;
            };
            let srcs: Vec<String> = u
                .srcs
                .iter()
                .flatten()
                .map(|&p| {
                    format!(
                        "p{}={:#x}@{}",
                        p.0,
                        self.phys.value(p),
                        if self.phys.done_at(p) == crate::physreg::NEVER {
                            "never".to_string()
                        } else {
                            self.phys.done_at(p).to_string()
                        }
                    )
                })
                .collect();
            let _ = writeln!(
                s,
                "  [{id}] {:#x} `{}` op={} imm={} srcs={srcs:?} dest={:?} state={:?} tc={} inact={} reassoc={} mem={:?}",
                u.pc, u.instr, u.op, u.imm, u.dest, u.state, u.from_tc, u.inactive, u.reassociated,
                u.mem.as_ref().map(|m| (m.is_load, m.addr, m.value))
            );
        }
        s
    }
}

// The campaign engine moves `Simulator`s across worker threads; every field
// is owned data (no `Rc`, interior pointers or thread affinity), and this
// assertion keeps it that way at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
};
