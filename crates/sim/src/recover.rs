//! Checkpoint recovery, squash, shadow discard and shadow activation.

use crate::machine::Simulator;
use crate::physreg::PhysFile;
use crate::uop::{ShadowResume, UopId, UopState};
use std::collections::HashSet;
use tracefill_isa::reg::NUM_ARCH_REGS;
use tracefill_isa::{ArchReg, Op};

impl Simulator {
    /// Full misprediction recovery at `branch_id`: squash everything
    /// younger, restore the branch's checkpoint, and redirect fetch.
    pub(crate) fn recover_at(&mut self, branch_id: UopId, redirect: u32) {
        // CPI attribution: this cycle's lost commit slots are a
        // misprediction-recovery penalty.
        self.cpi_flags.recovered = true;
        self.squash_younger(branch_id);

        // Restore rename/predictor state from the checkpoint, then re-apply
        // the branch's own speculative effects with the *actual* outcome.
        let ckpt_idx = self
            .checkpoints
            .iter()
            .position(|c| c.branch == branch_id)
            .expect("recovering branch owns a checkpoint");
        let ckpt = self.checkpoints.remove(ckpt_idx);
        self.rat = ckpt.rat;
        self.ras.restore(ckpt.ras);
        self.predictor.restore(ckpt.ghr);

        let (op, pc, actual_taken, promoted, is_return) = {
            let u = &self.uops[&branch_id];
            (
                u.op,
                u.pc,
                u.branch.as_ref().and_then(|b| b.actual_taken),
                u.branch.as_ref().is_some_and(|b| b.promoted),
                u.instr.op == Op::Jr && u.instr.rs == ArchReg::RA,
            )
        };
        match op {
            op if op.is_cond_branch() => {
                let actual = actual_taken.expect("recovered branch resolved");
                if !promoted {
                    self.predictor.push_history(actual);
                }
            }
            // Re-apply the return's pop (the snapshot predates it).
            Op::Jr if is_return => {
                let _ = self.ras.pop();
            }
            Op::Jalr => {
                self.ras.push(pc.wrapping_add(4));
            }
            _ => {}
        }

        if self.trace.enabled() {
            self.trace.push(
                self.cycle,
                crate::tracelog::Event::Recover {
                    anchor: branch_id,
                    redirect,
                },
            );
        }
        self.redirect_fetch(redirect);
    }

    /// Activates the shadow hanging off `branch_id`: the trace's embedded
    /// path was right, its blocks are already renamed and possibly
    /// executed (paper §3, inactive issue).
    pub(crate) fn activate_shadow(&mut self, branch_id: UopId) {
        let shadow = self
            .shadows
            .remove(&branch_id)
            .expect("activation requires a shadow");
        self.squash_younger(branch_id);
        self.stats.inactive_rescues += 1;

        // Rename state continues from the shadow's final map.
        self.rat = shadow.rat;

        // Predictor/RAS state: restore the anchor's checkpoint, then apply
        // the actual outcome and the shadow's own fetch-time effects.
        let ckpt_idx = self
            .checkpoints
            .iter()
            .position(|c| c.branch == branch_id)
            .expect("divergence branch owns a checkpoint");
        let ckpt = self.checkpoints.remove(ckpt_idx);
        self.ras.restore(ckpt.ras);
        self.predictor.restore(ckpt.ghr);
        let (anchor_actual, anchor_promoted) = {
            let u = &self.uops[&branch_id];
            (
                u.branch
                    .as_ref()
                    .and_then(|b| b.actual_taken)
                    .expect("anchor resolved"),
                u.branch.as_ref().is_some_and(|b| b.promoted),
            )
        };
        if !anchor_promoted {
            self.predictor.push_history(anchor_actual);
        }

        // Walk the shadow in program order: join the window, rebuild RAS
        // and history, create checkpoints for shadow branches, and enable
        // deferred memory ops. If an already-resolved shadow branch went
        // against the embedded path, recovery restarts at it.
        let mut mispredicted: Option<(UopId, u32)> = None;
        for (i, &id) in shadow.uops.iter().enumerate() {
            let snap = shadow
                .branch_snaps
                .iter()
                .find(|(b, _)| *b == id)
                .map(|(_, rat)| *rat);
            let ras_snap = self.ras.snapshot();
            let ghr_snap = self.predictor.snapshot();

            let (op, pc, has_mem, is_sys, is_return) = {
                let u = self.uops.get_mut(&id).expect("shadow uop exists");
                u.inactive = false;
                u.mem_deferred = false;
                (
                    u.op,
                    u.pc,
                    u.mem.is_some(),
                    u.is_system(),
                    u.instr.op == Op::Jr && u.instr.rs == ArchReg::RA,
                )
            };
            self.window.push_back(id);
            if has_mem {
                self.lsq.push_back(id);
            }
            if is_sys {
                self.serialize = Some(id);
            }
            if matches!(op, Op::Jal | Op::Jalr) {
                self.ras.push(pc.wrapping_add(4));
            }

            if op.is_cond_branch() || op.is_indirect() {
                let ckpt_id = self.next_ckpt_id;
                self.next_ckpt_id += 1;
                let rat = snap.expect("shadow branch has a rename snapshot");
                self.checkpoints.push(crate::machine::Checkpoint {
                    id: ckpt_id,
                    branch: id,
                    rat,
                    ras: ras_snap,
                    ghr: ghr_snap,
                });
                let (embedded, promoted, resolved, actual_taken, actual_next) = {
                    let u = self.uops.get_mut(&id).unwrap();
                    let b = u.branch.as_mut().expect("branch uop has context");
                    b.checkpoint = Some(ckpt_id);
                    (
                        b.embedded,
                        b.promoted,
                        b.resolved,
                        b.actual_taken,
                        b.actual_next,
                    )
                };

                if op.is_cond_branch() {
                    let embedded = embedded.expect("trace branch has embedded direction");
                    if !promoted {
                        self.predictor.push_history(embedded);
                    }
                    if resolved && actual_taken != Some(embedded) {
                        let target = actual_next.expect("resolved branch has target");
                        if mispredicted.is_none() {
                            mispredicted = Some((id, target));
                        }
                    }
                } else {
                    // Terminal indirect jump of the line.
                    debug_assert_eq!(i, shadow.uops.len() - 1);
                    let target = if resolved {
                        actual_next
                    } else {
                        // Predict now (verified when it resolves).
                        Some(
                            if is_return { self.ras.pop() } else { None }
                                .or_else(|| self.itb.predict(pc))
                                .unwrap_or(pc.wrapping_add(4)),
                        )
                    };
                    let u = self.uops.get_mut(&id).unwrap();
                    u.branch.as_mut().unwrap().pred_target = target;
                }
            }
            self.stats.activated_uops += 1;
        }

        if self.trace.enabled() {
            self.trace.push(
                self.cycle,
                crate::tracelog::Event::Activate {
                    anchor: branch_id,
                    count: shadow.uops.len() as u32,
                },
            );
        }
        // Decide where fetch resumes.
        let resume_pc = match shadow.resume {
            ShadowResume::Pc(pc) => pc,
            ShadowResume::Indirect => {
                let last = *shadow.uops.last().expect("indirect shadow is nonempty");
                let b = self.uops[&last].branch.as_ref().expect("terminal indirect");
                b.pred_target.expect("assigned above")
            }
        };

        if let Some((bad_branch, target)) = mispredicted {
            // A shadow branch itself went off the embedded path; recover
            // from the checkpoint just created for it.
            self.recover_at(bad_branch, target);
        } else if self.serialize.is_some() {
            // A serializing op is in flight: fetch waits for its retire.
            self.flush_frontend();
        } else {
            self.redirect_fetch(resume_pc);
        }
    }

    /// Discards the shadow owned by `branch_id`, if any (the prediction
    /// turned out correct, or the owner was squashed).
    pub(crate) fn drop_shadow(&mut self, branch_id: UopId) {
        let Some(shadow) = self.shadows.remove(&branch_id) else {
            return;
        };
        for id in shadow.uops {
            self.stats.discarded_inactive_uops += 1;
            if self.serialize == Some(id) {
                self.serialize = None;
            }
            self.discard_uop(id);
        }
    }

    /// Squashes every active uop younger than `branch_id` (and their
    /// checkpoints and shadows) and flushes the front end.
    pub(crate) fn squash_younger(&mut self, branch_id: UopId) {
        let pos = self
            .window_pos(branch_id)
            .expect("recovery anchor is in the window");
        let removed: Vec<UopId> = self.window.split_off(pos + 1).into();
        let mut dead: HashSet<UopId> = removed.iter().copied().collect();

        // Shadows anchored on squashed branches die with them.
        let shadow_owners: Vec<UopId> = self
            .shadows
            .keys()
            .copied()
            .filter(|k| dead.contains(k))
            .collect();
        for owner in shadow_owners {
            let sh = self.shadows.remove(&owner).unwrap();
            for id in sh.uops {
                dead.insert(id);
                self.stats.discarded_inactive_uops += 1;
            }
        }

        // A partially issued bundle (and its shadow under construction) is
        // wrong-path by definition.
        if let Some(p) = self.pending.take() {
            if let Some(sb) = p.shadow {
                for id in sb.uops {
                    dead.insert(id);
                    self.stats.discarded_inactive_uops += 1;
                }
            }
        }
        self.fetch_buffer = None;

        if self.ledger.enabled() {
            // Attribute each squashed trace-cache uop back to the segment
            // that supplied it, before the uop table forgets it.
            for id in &dead {
                if let Some(sid) = self
                    .uops
                    .get(id)
                    .filter(|u| u.from_tc)
                    .and_then(|u| u.seg.as_ref())
                    .map(|s| s.provenance.seg_id)
                {
                    self.ledger.on_squash(sid);
                }
            }
        }
        for &id in &dead {
            self.discard_uop_inner(id);
        }
        self.lsq.retain(|id| !dead.contains(id));
        for rs in &mut self.rs {
            rs.retain(|id| !dead.contains(id));
        }
        self.checkpoints.retain(|c| !dead.contains(&c.branch));
        if self.serialize.is_some_and(|s| dead.contains(&s)) {
            self.serialize = None;
        }
        self.stats.squashed_uops += dead.len() as u64;
    }

    /// Self-repair full squash: every in-flight uop — active, inactive
    /// and partially issued — dies, every speculative structure empties,
    /// and the rename state is rebuilt wholesale from the oracle's
    /// architectural registers (the oracle has already executed through
    /// the diverging instruction). Unlike [`squash_younger`], no anchor
    /// survives; the caller redirects fetch afterwards.
    ///
    /// [`squash_younger`]: Self::squash_younger
    pub(crate) fn repair_squash(&mut self) {
        if self.ledger.enabled() {
            for u in self.uops.values() {
                if let Some(sid) = u
                    .seg
                    .as_ref()
                    .filter(|_| u.from_tc)
                    .map(|s| s.provenance.seg_id)
                {
                    self.ledger.on_squash(sid);
                }
            }
        }
        self.stats.squashed_uops += self.uops.len() as u64;
        self.uops.clear();
        self.window.clear();
        self.shadows.clear();
        self.checkpoints.clear();
        self.lsq.clear();
        self.completions.clear();
        for rs in &mut self.rs {
            rs.clear();
        }
        self.pending = None;
        self.fetch_buffer = None;
        self.serialize = None;
        // Fresh physical file and rename table holding the oracle's
        // architectural values (same shape as machine reset).
        let mut phys = PhysFile::new(self.cfg.phys_regs, self.cfg.cross_cluster_latency);
        let mut rat = [PhysFile::ZERO; NUM_ARCH_REGS];
        for r in ArchReg::all() {
            if r.is_zero() {
                continue;
            }
            let p = phys.alloc();
            phys.write_arch(p, self.oracle.reg(r));
            rat[r.index()] = p;
        }
        self.phys = phys;
        self.rat = rat;
    }

    /// Removes one uop and releases its destination mapping. Used for
    /// both squash and shadow discard; the caller fixes up the shared
    /// structures (`lsq`, `rs`, checkpoint list).
    fn discard_uop_inner(&mut self, id: UopId) {
        if let Some(u) = self.uops.remove(&id) {
            for p in u.srcs.into_iter().flatten() {
                self.phys.release(p);
            }
            if let Some((_, p)) = u.dest {
                self.phys.release(p);
            }
            let _ = u.state == UopState::Done; // results are simply dropped
        }
    }

    /// Removes a discarded-shadow uop (not in window/lsq; may be in RS).
    fn discard_uop(&mut self, id: UopId) {
        self.discard_uop_inner(id);
        for rs in &mut self.rs {
            rs.retain(|&x| x != id);
        }
    }

    /// Flushes the fetch buffer and partially issued bundle and redirects.
    fn redirect_fetch(&mut self, pc: u32) {
        self.flush_frontend();
        self.fetch_pc = pc;
    }

    fn flush_frontend(&mut self) {
        // squash_younger already dropped pending/fetch_buffer; this also
        // covers paths that call redirect without a squash.
        debug_assert!(self.pending.is_none());
        self.fetch_buffer = None;
        self.fetch_stall_until = 0;
    }
}
