//! Assembler corner cases: error reporting, directives, pseudo expansion
//! edges, and symbol arithmetic.

use tracefill_isa::asm::assemble;
use tracefill_isa::encode::decode;
use tracefill_isa::program::{DATA_BASE, TEXT_BASE};
use tracefill_isa::Op;

#[test]
fn error_lines_are_precise() {
    let cases: &[(&str, usize, &str)] = &[
        ("\n\n        bogus $t0\n", 3, "unknown mnemonic"),
        (".text\naddi $t0, $t1\n", 2, "takes 3 operand"),
        (".text\naddi $t0, $t1, $t2, $t3\n", 2, "takes 3 operand"),
        (".text\nlw $t0, $t1\n", 2, "disp(base)"),
        (".text\nsll $t0, $t1, 32\n", 2, "out of range"),
        (".text\nlui $t0, 65536\n", 2, "exceeds 16 bits"),
        (".text\nj 0x2\n", 2, "not word aligned"),
        (".data\nadd $t0, $t1, $t2\n", 2, "only allowed in .text"),
        (".text\n.word oops\n", 2, "undefined symbol"),
        (".text\n.frobnicate 3\n", 2, "unknown directive"),
        (".text\nli $t0, somewhere\n", 2, "literal immediate"),
    ];
    for (src, line, needle) in cases {
        let e = assemble(src).expect_err(src);
        assert_eq!(e.line, *line, "wrong line for {src:?}: {e}");
        assert!(
            e.msg.contains(needle),
            "expected `{needle}` in `{}` for {src:?}",
            e.msg
        );
    }
}

#[test]
fn branch_range_limits_are_enforced() {
    // A branch 40000 instructions forward exceeds the 16-bit word offset.
    let mut src = String::from("        .text\nmain:   beq $t0, $t1, far\n");
    for _ in 0..40_000 {
        src.push_str("        nop\n");
    }
    src.push_str("far:    nop\n");
    let e = assemble(&src).unwrap_err();
    assert!(e.msg.contains("out of range"), "{e}");
}

#[test]
fn symbol_arithmetic_in_operands() {
    let p = assemble(
        r#"
        .text
main:   lw   $t0, 4($s0)
        .data
base:   .word 1, 2, 3
mid:    .word base+8, mid-4
"#,
    )
    .unwrap();
    let mem = p.load();
    assert_eq!(mem.read_u32(DATA_BASE + 12), DATA_BASE + 8);
    assert_eq!(mem.read_u32(DATA_BASE + 16), DATA_BASE + 8);
}

#[test]
fn sections_can_be_revisited_and_placed() {
    let p = assemble(
        r#"
        .text
main:   nop
        .data 0x20000000
far:    .word 7
        .text
more:   nop
"#,
    )
    .unwrap();
    assert_eq!(p.symbol("far"), Some(0x2000_0000));
    // The second .text continues after the first.
    assert_eq!(p.symbol("more"), Some(TEXT_BASE + 4));
}

#[test]
fn pseudo_li_boundary_values() {
    // Exactly representable as addi / ori / requiring lui+ori.
    let p = assemble(
        "        .text\nmain:   li $t0, 32767\n        li $t1, -32768\n        li $t2, 65535\n        li $t3, 65536\n",
    )
    .unwrap();
    let ops: Vec<Op> = p.text_words().map(|(_, w)| decode(w).unwrap().op).collect();
    assert_eq!(ops, vec![Op::Addi, Op::Addi, Op::Ori, Op::Lui, Op::Ori]);
    // Values must survive the expansion.
    let mut i = tracefill_isa::interp::Interp::new(&p);
    for _ in 0..5 {
        i.step().unwrap();
    }
    assert_eq!(i.reg(tracefill_isa::ArchReg::gpr(8)), 32767);
    assert_eq!(i.reg(tracefill_isa::ArchReg::gpr(9)), (-32768i32) as u32);
    assert_eq!(i.reg(tracefill_isa::ArchReg::gpr(10)), 65535);
    assert_eq!(i.reg(tracefill_isa::ArchReg::gpr(11)), 65536);
}

#[test]
fn comments_and_blank_lines_are_free() {
    let p = assemble(
        "# header comment\n;another\n\n        .text\nmain:   nop  # trailing\n        nop  ; both styles\n",
    )
    .unwrap();
    assert_eq!(p.text_len(), 2);
}

#[test]
fn labels_stack_on_one_address() {
    let p = assemble("        .text\na: b: c: nop\n").unwrap();
    assert_eq!(p.symbol("a"), p.symbol("b"));
    assert_eq!(p.symbol("b"), p.symbol("c"));
}

#[test]
fn entry_defaults_to_first_text_without_main() {
    let p = assemble("        .text\nstart:  nop\n").unwrap();
    assert_eq!(p.entry, TEXT_BASE);
}

#[test]
fn jalr_accepts_one_or_two_operands() {
    let p = assemble("        .text\nmain:   jalr $t0\n        jalr $t1, $t2\n").unwrap();
    let instrs: Vec<_> = p.text_words().map(|(_, w)| decode(w).unwrap()).collect();
    assert_eq!(instrs[0].rd, tracefill_isa::ArchReg::RA);
    assert_eq!(instrs[1].rd, tracefill_isa::ArchReg::gpr(9));
}
