//! ISA conformance: every opcode executed through the full pipeline —
//! assembler → encoder → loader → interpreter — with checked results.
//!
//! Each case is a small program that computes through one opcode (or one
//! corner of its semantics) and prints the result; the expected values
//! are computed independently in Rust.

use tracefill_isa::asm::assemble;
use tracefill_isa::interp::Interp;
use tracefill_isa::syscall::IoCtx;

/// Runs a program and returns its printed output.
fn outputs(src: &str) -> Vec<u32> {
    outputs_with(src, &[])
}

fn outputs_with(src: &str, input: &[u32]) -> Vec<u32> {
    let prog = assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"));
    let mut i = Interp::with_io(&prog, IoCtx::with_input(input.iter().copied()));
    i.run(1_000_000)
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    i.io().output.clone()
}

/// One-instruction ALU checks: computes `op` over two loaded constants.
fn check_alu3(op: &str, a: u32, b: u32, expect: u32) {
    let src = format!(
        r#"
        .text
main:   li   $t0, {a}
        li   $t1, {b}
        {op}  $a0, $t0, $t1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#,
        a = a as i64,
        b = b as i64,
    );
    assert_eq!(outputs(&src), vec![expect], "{op} {a:#x},{b:#x}");
}

#[test]
fn three_register_alu_semantics() {
    check_alu3("add", 7, 9, 16);
    check_alu3("add", u32::MAX, 1, 0); // wraps
    check_alu3("sub", 5, 9, (-4i32) as u32);
    check_alu3("and", 0xff00_f0f0, 0x0ff0_ffff, 0x0f00_f0f0);
    check_alu3("or", 0xff00_0000, 0x0000_00ff, 0xff00_00ff);
    check_alu3("xor", 0xaaaa_aaaa, 0xffff_ffff, 0x5555_5555);
    check_alu3("nor", 0xf0f0_f0f0, 0x0f0f_0f0f, 0);
    check_alu3("slt", (-1i32) as u32, 0, 1);
    check_alu3("slt", 0, (-1i32) as u32, 0);
    check_alu3("sltu", (-1i32) as u32, 0, 0); // unsigned: MAX not < 0
    check_alu3("sltu", 0, 1, 1);
    check_alu3("sllv", 1, 5, 32);
    check_alu3("sllv", 1, 37, 32); // amount masked to 5 bits
    check_alu3("srlv", 0x8000_0000, 31, 1);
    check_alu3("srav", 0x8000_0000, 31, 0xffff_ffff);
    check_alu3("mul", 100_000, 100_000, 100_000u64.pow(2) as u32);
    check_alu3(
        "mulh",
        100_000,
        100_000,
        ((100_000i64 * 100_000i64) >> 32) as u32,
    );
    check_alu3("mulh", (-2i32) as u32, 3, 0xffff_ffff); // negative high word
    check_alu3("div", (-7i32) as u32, 2, (-3i32) as u32); // trunc toward zero
    check_alu3("div", 7, 0, 0); // defined: no trap
    check_alu3("rem", (-7i32) as u32, 2, (-1i32) as u32);
    check_alu3("rem", i32::MIN as u32, (-1i32) as u32, 0);
}

#[test]
fn immediate_alu_semantics() {
    let src = r#"
        .text
main:   li   $t0, 1000
        addi $a0, $t0, -1500     # sign-extended immediate
        li   $v0, 1
        syscall
        andi $a0, $t0, 0xff      # zero-extended immediate
        li   $v0, 1
        syscall
        ori  $a0, $zero, 0xabc
        li   $v0, 1
        syscall
        xori $a0, $t0, 0xfff
        li   $v0, 1
        syscall
        slti $a0, $t0, 1001
        li   $v0, 1
        syscall
        sltiu $a0, $t0, -1       # imm sign-extends then compares unsigned
        li   $v0, 1
        syscall
        lui  $a0, 0x1234
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
    assert_eq!(
        outputs(src),
        vec![
            (-500i32) as u32,
            1000 & 0xff,
            0xabc,
            1000 ^ 0xfff,
            1,
            1, // 1000 < 0xffffffff unsigned
            0x1234 << 16,
        ]
    );
}

#[test]
fn shift_immediate_semantics() {
    let src = r#"
        .text
main:   li   $t0, 0x80000001
        sll  $a0, $t0, 4
        li   $v0, 1
        syscall
        srl  $a0, $t0, 4
        li   $v0, 1
        syscall
        sra  $a0, $t0, 4
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
    assert_eq!(outputs(src), vec![0x0000_0010, 0x0800_0000, 0xf800_0000]);
}

#[test]
fn load_store_semantics_all_sizes() {
    let src = r#"
        .text
main:   la   $s0, buf
        li   $t0, 0x81828384
        sw   $t0, 0($s0)
        lw   $a0, 0($s0)
        li   $v0, 1
        syscall
        lb   $a0, 0($s0)         # 0x84 sign-extends
        li   $v0, 1
        syscall
        lbu  $a0, 3($s0)         # 0x81 zero-extends
        li   $v0, 1
        syscall
        lh   $a0, 0($s0)         # 0x8384 sign-extends
        li   $v0, 1
        syscall
        lhu  $a0, 2($s0)
        li   $v0, 1
        syscall
        sb   $zero, 1($s0)       # punch out one byte
        lw   $a0, 0($s0)
        li   $v0, 1
        syscall
        sh   $zero, 2($s0)
        lw   $a0, 0($s0)
        li   $v0, 1
        syscall
        li   $t1, 4
        lwx  $a0, $s0, $t1       # indexed load of the next word
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
        .data
buf:    .word 0, 0xc0ffee
"#;
    assert_eq!(
        outputs(src),
        vec![
            0x8182_8384,
            0xffff_ff84,
            0x81,
            0xffff_8384,
            0x8182,
            0x8182_0084,
            0x0000_0084,
            0xc0ffee,
        ]
    );
}

#[test]
fn branch_semantics_each_direction() {
    // Each branch opcode tested on its taken and not-taken side.
    let src = r#"
        .text
main:   li   $s0, 0
        li   $t0, 5
        li   $t1, 5
        beq  $t0, $t1, a1       # taken
        j    fail
a1:     bne  $t0, $t1, fail     # not taken
        ori  $s0, $s0, 1
        li   $t2, -3
        bltz $t2, a2            # taken
        j    fail
a2:     bgez $t2, fail          # not taken
        ori  $s0, $s0, 2
        blez $zero, a3          # taken (zero)
        j    fail
a3:     bgtz $zero, fail        # not taken (zero)
        ori  $s0, $s0, 4
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
fail:   li   $a0, 999
        li   $v0, 1
        syscall
        break
"#;
    assert_eq!(outputs(src), vec![7]);
}

#[test]
fn jumps_and_links() {
    let src = r#"
        .text
main:   jal  f                  # link in $ra
        move $a0, $v1
        li   $v0, 1
        syscall
        la   $t0, g
        jalr $t1, $t0           # link in $t1, call via register
        move $a0, $v1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
f:      li   $v1, 41
        jr   $ra
g:      li   $v1, 42
        jr   $t1
"#;
    assert_eq!(outputs(src), vec![41, 42]);
}

#[test]
fn read_int_exhaustion_returns_zero() {
    let src = r#"
        .text
main:   li   $v0, 5
        syscall
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 5
        syscall                 # input exhausted -> 0
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
    assert_eq!(outputs_with(src, &[77]), vec![77, 0]);
}

#[test]
fn zero_register_is_immutable() {
    let src = r#"
        .text
main:   li   $t0, 123
        add  $zero, $t0, $t0    # architecturally dropped
        move $a0, $zero
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
"#;
    assert_eq!(outputs(src), vec![0]);
}
