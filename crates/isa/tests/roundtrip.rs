//! Property tests for the ISA: encode/decode roundtrips and assembler
//! output validity.

use proptest::prelude::*;
use tracefill_isa::encode::{decode, encode};
use tracefill_isa::{ArchReg, Instr, Op};

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (0u8..32).prop_map(ArchReg::gpr)
}

/// Strategy producing only *valid* instructions (ones `validate` accepts).
fn arb_instr() -> impl Strategy<Value = Instr> {
    let ops: Vec<Op> = Op::all().collect();
    (0..ops.len(), arb_reg(), arb_reg(), arb_reg(), any::<i32>()).prop_map(
        move |(opi, rd, rs, rt, raw)| {
            let op = ops[opi];
            use Op::*;
            let imm = match op {
                Sll | Srl | Sra => raw.rem_euclid(32),
                Addi | Slti | Sltiu | Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw | Beq | Bne
                | Blez | Bgtz | Bltz | Bgez => (raw as i16) as i32,
                Andi | Ori | Xori => (raw as u16) as i32,
                Lui => ((raw as u16) as i32) << 16,
                J | Jal => raw & 0x03ff_ffff,
                _ => 0,
            };
            // Normalize unused register fields to $zero the way the
            // constructors do, so decode output compares equal.
            match op {
                Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav | Mul | Mulh
                | Div | Rem | Lwx => Instr::alu(op, rd, rs, rt),
                Sll | Srl | Sra | Addi | Andi | Ori | Xori | Slti | Sltiu => {
                    Instr::alu_imm(op, rd, rs, imm)
                }
                Lui => Instr::alu_imm(op, rd, ArchReg::ZERO, imm),
                Lb | Lbu | Lh | Lhu | Lw => Instr::load(op, rd, rs, imm),
                Sb | Sh | Sw => Instr::store(op, rt, rs, imm),
                Beq | Bne => Instr::branch(op, rs, rt, imm),
                Blez | Bgtz | Bltz | Bgez => Instr::branch(op, rs, ArchReg::ZERO, imm),
                J | Jal => Instr {
                    op,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm,
                },
                Jr => Instr {
                    op,
                    rd: ArchReg::ZERO,
                    rs,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                Jalr => Instr {
                    op,
                    rd,
                    rs,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                Syscall | Break => Instr {
                    op,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
            }
        },
    )
}

proptest! {
    /// encode → decode is the identity on valid instructions.
    #[test]
    fn encode_decode_roundtrip(i in arb_instr()) {
        let word = encode(&i).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, i);
    }

    /// decode → encode is the identity on words that decode at all and
    /// whose decode re-validates (canonical encodings).
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            prop_assert!(i.validate().is_ok(), "decode produced invalid instr {i:?}");
            // Re-encoding may differ only in don't-care fields; decoding
            // again must give the same instruction.
            let w2 = encode(&i).unwrap();
            prop_assert_eq!(decode(w2).unwrap(), i);
        }
    }

    /// Moves detected by `as_register_move` really are value-preserving:
    /// executing the instruction writes exactly the source's value.
    #[test]
    fn detected_moves_preserve_values(i in arb_instr(), a in any::<u32>(), b in any::<u32>()) {
        use tracefill_isa::semantics::alu_result;
        if let Some(src) = i.as_register_move() {
            // Only ALU-class instructions are detected as moves.
            let va = if i.rs.is_zero() { 0 } else { a };
            let vb = if i.rt.is_zero() { 0 } else { b };
            let result = alu_result(i.op, va, vb, i.imm);
            let src_val = if src.is_zero() {
                0
            } else if src == i.rs {
                va
            } else {
                vb
            };
            prop_assert_eq!(result, src_val, "move idiom {} did not copy its source", i);
        }
    }

    /// The disassembly of any valid instruction reassembles to the same
    /// instruction (for non-control instructions, whose text is position
    /// independent).
    #[test]
    fn disasm_reassembles(i in arb_instr()) {
        use tracefill_isa::op::OpKind;
        if matches!(i.op.kind(), OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div | OpKind::Load | OpKind::Store) {
            let text = format!("        .text\nmain:   {i}\n");
            let prog = tracefill_isa::asm::assemble(&text)
                .unwrap_or_else(|e| panic!("reassembly of `{i}` failed: {e}"));
            let words: Vec<u32> = prog.text_words().map(|(_, w)| w).collect();
            prop_assert_eq!(words.len(), 1);
            prop_assert_eq!(decode(words[0]).unwrap(), i);
        }
    }
}
