//! System-call services and their shared implementation.
//!
//! `SYSCALL` is a serializing instruction: the pipeline drains before it
//! executes and the fill unit terminates trace segments at it. The service
//! number is taken from `$v0` and the argument from `$a0`. Both the
//! functional interpreter and the pipeline simulator execute services
//! through [`execute`] on their own [`IoCtx`], so observable I/O behaviour
//! is identical by construction.

use crate::reg::ArchReg;
use std::collections::VecDeque;

/// Service numbers (in `$v0`) understood by `SYSCALL`.
pub mod service {
    /// Append `$a0` to the output channel.
    pub const PRINT_INT: u32 = 1;
    /// Pop the next value from the input channel into `$v0` (0 when empty).
    pub const READ_INT: u32 = 5;
    /// Terminate the program with exit code `$a0`.
    pub const EXIT: u32 = 10;
}

/// Input/output channels a program interacts with through `SYSCALL`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoCtx {
    /// Values `READ_INT` will return, in order.
    pub input: VecDeque<u32>,
    /// Values `PRINT_INT` has emitted, in order.
    pub output: Vec<u32>,
}

impl IoCtx {
    /// Creates an I/O context with the given input stream.
    pub fn with_input<I: IntoIterator<Item = u32>>(input: I) -> IoCtx {
        IoCtx {
            input: input.into_iter().collect(),
            output: Vec::new(),
        }
    }
}

/// Architecturally visible outcome of one `SYSCALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Register written by the service, if any (always `$v0` today).
    pub reg_write: Option<(ArchReg, u32)>,
    /// Exit code when the service terminates the program.
    pub exit: Option<u32>,
}

/// Error for a `SYSCALL` with an unknown service number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownService {
    /// The unrecognized `$v0` value.
    pub service: u32,
}

impl std::fmt::Display for UnknownService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown syscall service {}", self.service)
    }
}

impl std::error::Error for UnknownService {}

/// Executes one system call.
///
/// # Errors
///
/// Returns [`UnknownService`] when `service` is not one of the numbers in
/// [`service`].
pub fn execute(service: u32, a0: u32, io: &mut IoCtx) -> Result<SyscallOutcome, UnknownService> {
    match service {
        service::PRINT_INT => {
            io.output.push(a0);
            Ok(SyscallOutcome {
                reg_write: None,
                exit: None,
            })
        }
        service::READ_INT => {
            let v = io.input.pop_front().unwrap_or(0);
            Ok(SyscallOutcome {
                reg_write: Some((ArchReg::V0, v)),
                exit: None,
            })
        }
        service::EXIT => Ok(SyscallOutcome {
            reg_write: None,
            exit: Some(a0),
        }),
        _ => Err(UnknownService { service }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_read() {
        let mut io = IoCtx::with_input([7, 8]);
        let out = execute(service::PRINT_INT, 42, &mut io).unwrap();
        assert_eq!(out.reg_write, None);
        assert_eq!(io.output, vec![42]);

        let out = execute(service::READ_INT, 0, &mut io).unwrap();
        assert_eq!(out.reg_write, Some((ArchReg::V0, 7)));
        let out = execute(service::READ_INT, 0, &mut io).unwrap();
        assert_eq!(out.reg_write, Some((ArchReg::V0, 8)));
        // Exhausted input reads zero.
        let out = execute(service::READ_INT, 0, &mut io).unwrap();
        assert_eq!(out.reg_write, Some((ArchReg::V0, 0)));
    }

    #[test]
    fn exit_and_unknown() {
        let mut io = IoCtx::default();
        assert_eq!(execute(service::EXIT, 3, &mut io).unwrap().exit, Some(3));
        assert!(execute(99, 0, &mut io).is_err());
    }
}
