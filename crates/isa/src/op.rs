//! Opcodes of the SSA ISA and their static classification.
//!
//! The opcode set is modeled on the SimpleScalar PISA (itself a MIPS-IV
//! derivative) with the properties that matter to the fill-unit study:
//!
//! * **no architectural register-to-register move** — compilers synthesize
//!   moves from `ADDI rd <- rs + 0`, `ADD rd <- rs + $zero`, `OR rd <- rs |
//!   $zero`, and friends;
//! * **16-bit immediates** — sign-extended for arithmetic/compare ops and
//!   memory displacements, zero-extended for the logical ops;
//! * **short immediate shifts** — the `SLL/SRL/SRA rd <- rs << shamt` forms
//!   used for array index scaling;
//! * **indexed (register + register) loads** (`LWX`), which SimpleScalar 2.0
//!   adds over MIPS;
//! * **no architectural delay slots**.
//!
//! Multiply and divide are single-destination (`MUL`, `MULH`, `DIV`, `REM`):
//! there are no `HI`/`LO` registers in this ISA.

use std::fmt;

/// Every opcode of the SSA ISA.
///
/// Operand roles are uniform per format; see [`crate::instr::Instr`] for how
/// `rd`/`rs`/`rt`/`imm` are interpreted for each opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is documented by the table in `kind`
pub enum Op {
    // Three-register ALU: rd <- rs OP rt.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    Sllv,
    Srlv,
    Srav,
    // Multiply / divide (single destination): rd <- rs OP rt.
    Mul,
    Mulh,
    Div,
    Rem,
    // Shift by immediate: rd <- rs SHIFT shamt (shamt in `imm`, 0..32).
    Sll,
    Srl,
    Sra,
    // ALU with 16-bit immediate: rd <- rs OP imm.
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    // Load upper immediate: rd <- imm << 16.
    Lui,
    // Loads: rd <- mem[rs + imm].
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    // Indexed load: rd <- mem[rs + rt].
    Lwx,
    // Stores: mem[rs + imm] <- rt. (There is no indexed store: every SSA
    // instruction has at most two register sources, which is what lets the
    // trace segment encode live-in information with one bit per source.)
    Sb,
    Sh,
    Sw,
    // Conditional branches (PC-relative, offset in instructions in `imm`).
    Beq,
    Bne,
    Blez,
    Bgtz,
    Bltz,
    Bgez,
    // Unconditional control: absolute-target jumps and register jumps.
    J,
    Jal,
    Jr,
    Jalr,
    // System: `Syscall` is serializing; `Break` halts with an error code.
    Syscall,
    Break,
}

/// Broad execution class of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Single-cycle integer ALU operation (including compares and `LUI`).
    IntAlu,
    /// Shift (immediate or variable).
    Shift,
    /// Integer multiply (`MUL`, `MULH`).
    Mul,
    /// Integer divide / remainder.
    Div,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional jump (direct, call, register-indirect, call-indirect).
    Jump,
    /// Serializing system operation.
    System,
}

impl Op {
    /// The execution class of this opcode.
    pub fn kind(self) -> OpKind {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Addi | Andi | Ori | Xori | Slti
            | Sltiu | Lui => OpKind::IntAlu,
            Sll | Srl | Sra | Sllv | Srlv | Srav => OpKind::Shift,
            Mul | Mulh => OpKind::Mul,
            Div | Rem => OpKind::Div,
            Lb | Lbu | Lh | Lhu | Lw | Lwx => OpKind::Load,
            Sb | Sh | Sw => OpKind::Store,
            Beq | Bne | Blez | Bgtz | Bltz | Bgez => OpKind::CondBranch,
            J | Jal | Jr | Jalr => OpKind::Jump,
            Syscall | Break => OpKind::System,
        }
    }

    /// Whether this opcode is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        self.kind() == OpKind::CondBranch
    }

    /// Whether this opcode is any control transfer (branch or jump).
    pub fn is_control(self) -> bool {
        matches!(self.kind(), OpKind::CondBranch | OpKind::Jump)
    }

    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        self.kind() == OpKind::Load
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        self.kind() == OpKind::Store
    }

    /// Whether this opcode is an indirect (register-target) control transfer.
    ///
    /// Indirect transfers (`JR`, `JALR`) terminate trace segments in the
    /// fill unit, as do returns (which the ISA expresses as `JR $ra`).
    pub fn is_indirect(self) -> bool {
        matches!(self, Op::Jr | Op::Jalr)
    }

    /// Whether this opcode is a subroutine call (`JAL`, `JALR`).
    ///
    /// Calls do *not* terminate trace segments.
    pub fn is_call(self) -> bool {
        matches!(self, Op::Jal | Op::Jalr)
    }

    /// Whether this opcode serializes the pipeline (forces segment
    /// termination and drains the machine before executing).
    pub fn is_serializing(self) -> bool {
        self.kind() == OpKind::System
    }

    /// Whether the `imm` field of an instruction with this opcode holds a
    /// 16-bit immediate that is *zero*-extended (the logical immediates).
    pub fn imm_is_zero_extended(self) -> bool {
        matches!(self, Op::Andi | Op::Ori | Op::Xori | Op::Lui)
    }

    /// Whether an instruction with this opcode uses its `imm` field at all.
    pub fn has_imm(self) -> bool {
        use Op::*;
        matches!(
            self,
            Sll | Srl
                | Sra
                | Addi
                | Andi
                | Ori
                | Xori
                | Slti
                | Sltiu
                | Lui
                | Lb
                | Lbu
                | Lh
                | Lhu
                | Lw
                | Sb
                | Sh
                | Sw
                | Beq
                | Bne
                | Blez
                | Bgtz
                | Bltz
                | Bgez
                | J
                | Jal
        )
    }

    /// Number of bytes a memory opcode accesses, or `None` for non-memory.
    pub fn access_size(self) -> Option<u32> {
        use Op::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lh | Lhu | Sh => Some(2),
            Lw | Lwx | Sw => Some(4),
            _ => None,
        }
    }

    /// The lower-case mnemonic of this opcode.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Slt => "slt",
            Sltu => "sltu",
            Sllv => "sllv",
            Srlv => "srlv",
            Srav => "srav",
            Mul => "mul",
            Mulh => "mulh",
            Div => "div",
            Rem => "rem",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slti => "slti",
            Sltiu => "sltiu",
            Lui => "lui",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwx => "lwx",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            Bltz => "bltz",
            Bgez => "bgez",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Syscall => "syscall",
            Break => "break",
        }
    }

    /// Iterates over every opcode.
    pub fn all() -> impl Iterator<Item = Op> {
        use Op::*;
        [
            Add, Sub, And, Or, Xor, Nor, Slt, Sltu, Sllv, Srlv, Srav, Mul, Mulh, Div, Rem, Sll,
            Srl, Sra, Addi, Andi, Ori, Xori, Slti, Sltiu, Lui, Lb, Lbu, Lh, Lhu, Lw, Lwx, Sb, Sh,
            Sw, Beq, Bne, Blez, Bgtz, Bltz, Bgez, J, Jal, Jr, Jalr, Syscall, Break,
        ]
        .into_iter()
    }

    /// Parses a mnemonic into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        Op::all().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Op::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn classification_is_consistent() {
        for op in Op::all() {
            assert_eq!(op.is_load(), op.kind() == OpKind::Load);
            assert_eq!(op.is_store(), op.kind() == OpKind::Store);
            if op.is_indirect() {
                assert!(op.is_control());
            }
            if op.is_cond_branch() {
                assert!(op.has_imm(), "{op} branches need an offset");
            }
            if let Some(sz) = op.access_size() {
                assert!(op.is_load() || op.is_store());
                assert!(matches!(sz, 1 | 2 | 4));
            }
        }
    }

    #[test]
    fn calls_do_not_serialize() {
        assert!(Op::Jal.is_call());
        assert!(Op::Jalr.is_call());
        assert!(!Op::Jal.is_serializing());
        assert!(Op::Syscall.is_serializing());
    }
}
