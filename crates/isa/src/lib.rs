//! # tracefill-isa
//!
//! The **SSA** instruction set — a from-scratch, SimpleScalar-2.0-like
//! 32-bit ISA — together with everything needed to build and run programs
//! for it:
//!
//! * [`reg`] / [`op`] / [`instr`] — registers, opcodes, decoded instructions;
//! * [`encode`] — the fixed 32-bit binary encoding;
//! * [`asm`] — a two-pass assembler with pseudo-instructions;
//! * [`disasm`] — textual disassembly;
//! * [`mem`] / [`program`] — sparse memory and linked program images;
//! * [`semantics`] — pure value semantics shared by the interpreter and the
//!   pipeline simulator (so the two cannot disagree on arithmetic);
//! * [`interp`] — the functional interpreter used as the architectural
//!   oracle by the `tracefill-sim` pipeline;
//! * [`syscall`] — the serializing system-call services.
//!
//! The ISA deliberately reproduces the properties the fill-unit paper
//! (Friendly, Patel & Patt, MICRO-31 1998) relies on: no architectural
//! register-move instruction, 16-bit immediates, short immediate shifts
//! used for array indexing, indexed loads, and no delay slots.
//!
//! # Examples
//!
//! Assemble and run a program:
//!
//! ```
//! use tracefill_isa::{asm::assemble, interp::Interp};
//!
//! let prog = assemble(r#"
//!         .text
//! main:   li   $a0, 5
//!         jal  square
//!         move $a0, $v1
//!         li   $v0, 1          # print $a0
//!         syscall
//!         li   $v0, 10         # exit
//!         syscall
//! square: mul  $v1, $a0, $a0
//!         jr   $ra
//! "#)?;
//! let mut cpu = Interp::new(&prog);
//! cpu.run(1_000)?;
//! assert_eq!(cpu.io().output, vec![25]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod op;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod syscall;

pub use instr::Instr;
pub use op::{Op, OpKind};
pub use program::Program;
pub use reg::ArchReg;
