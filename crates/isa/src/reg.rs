//! Architectural register identifiers.
//!
//! The SSA ISA (see the crate docs) has 32 general-purpose registers with
//! `$0` hardwired to zero. Register identifiers are newtypes ([`ArchReg`]) so
//! they cannot be confused with physical registers or plain indices elsewhere
//! in the workspace.

use std::fmt;
use std::str::FromStr;

/// Number of general-purpose registers (and of architectural registers:
/// the SSA ISA has no `HI`/`LO`; multiply/divide ops are single-destination).
pub const NUM_GPRS: usize = 32;
/// Total number of architectural registers.
pub const NUM_ARCH_REGS: usize = NUM_GPRS;

/// An architectural register.
///
/// # Examples
///
/// ```
/// use tracefill_isa::reg::ArchReg;
///
/// let sp: ArchReg = "$sp".parse()?;
/// assert_eq!(sp, ArchReg::SP);
/// assert_eq!(sp.index(), 29);
/// # Ok::<(), tracefill_isa::reg::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The hardwired zero register, `$0`.
    pub const ZERO: ArchReg = ArchReg(0);
    /// Assembler temporary, `$1`.
    pub const AT: ArchReg = ArchReg(1);
    /// First return-value register, `$2`.
    pub const V0: ArchReg = ArchReg(2);
    /// Second return-value register, `$3`.
    pub const V1: ArchReg = ArchReg(3);
    /// First argument register, `$4`.
    pub const A0: ArchReg = ArchReg(4);
    /// Second argument register, `$5`.
    pub const A1: ArchReg = ArchReg(5);
    /// Third argument register, `$6`.
    pub const A2: ArchReg = ArchReg(6);
    /// Fourth argument register, `$7`.
    pub const A3: ArchReg = ArchReg(7);
    /// Global pointer, `$28`.
    pub const GP: ArchReg = ArchReg(28);
    /// Stack pointer, `$29`.
    pub const SP: ArchReg = ArchReg(29);
    /// Frame pointer, `$30`.
    pub const FP: ArchReg = ArchReg(30);
    /// Return-address register, `$31`.
    pub const RA: ArchReg = ArchReg(31);
    /// Creates a GPR from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn gpr(n: u8) -> ArchReg {
        assert!((n as usize) < NUM_GPRS, "GPR number out of range: {n}");
        ArchReg(n)
    }

    /// Creates a register from a raw index, returning `None` when the index
    /// is out of range.
    pub fn from_index(n: usize) -> Option<ArchReg> {
        if n < NUM_ARCH_REGS {
            Some(ArchReg(n as u8))
        } else {
            None
        }
    }

    /// The raw index of this register, in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(|n| ArchReg(n as u8))
    }

    /// The conventional ABI name of this register (e.g. `"$sp"`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; NUM_ARCH_REGS] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for ArchReg {
    type Err = ParseRegError;

    /// Parses either a numeric name (`$7`) or an ABI name (`$a3`, `$sp`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        let body = s.strip_prefix('$').ok_or_else(err)?;
        if let Ok(n) = body.parse::<u8>() {
            if (n as usize) < NUM_GPRS {
                return Ok(ArchReg(n));
            }
            return Err(err());
        }
        for r in ArchReg::all() {
            if r.name() == s {
                return Ok(r);
            }
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_and_abi_names_agree() {
        for r in ArchReg::all() {
            let numeric: ArchReg = format!("${}", r.index()).parse().unwrap();
            let abi: ArchReg = r.name().parse().unwrap();
            assert_eq!(numeric, abi);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("$32".parse::<ArchReg>().is_err());
        assert!("r5".parse::<ArchReg>().is_err());
        assert!("$xyz".parse::<ArchReg>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for r in ArchReg::all() {
            let back: ArchReg = r.to_string().parse().unwrap();
            assert_eq!(back, r);
        }
    }
}
