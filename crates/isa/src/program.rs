//! Linked program images and the conventional memory layout.

use crate::mem::Memory;
use std::collections::BTreeMap;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0x7fff_f000;

/// What a [`Section`] contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Executable instructions.
    Text,
    /// Initialized data.
    Data,
}

/// A contiguous chunk of the program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Load address of the first byte.
    pub base: u32,
    /// Raw little-endian contents.
    pub bytes: Vec<u8>,
    /// Section classification.
    pub kind: SectionKind,
}

impl Section {
    /// The first address past this section.
    pub fn end(&self) -> u32 {
        self.base.wrapping_add(self.bytes.len() as u32)
    }
}

/// A fully linked program: sections, entry point and symbol table.
///
/// Programs are produced by the assembler ([`crate::asm::assemble`]) or
/// built directly, and are loaded into a fresh [`Memory`] for either the
/// functional interpreter or the pipeline simulator.
///
/// # Examples
///
/// ```
/// use tracefill_isa::asm::assemble;
///
/// let prog = assemble(r#"
///         .text
/// main:   li   $v0, 10        # exit service
///         syscall
/// "#)?;
/// assert_eq!(prog.entry, tracefill_isa::program::TEXT_BASE);
/// # Ok::<(), tracefill_isa::asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Address of the first instruction to execute.
    pub entry: u32,
    /// All loadable sections.
    pub sections: Vec<Section>,
    /// Label addresses, for diagnostics and tests.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Loads every section into a fresh memory image.
    pub fn load(&self) -> Memory {
        let mut mem = Memory::new();
        for s in &self.sections {
            mem.write_bytes(s.base, &s.bytes);
        }
        mem
    }

    /// The address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total number of instruction words in text sections.
    pub fn text_len(&self) -> usize {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::Text)
            .map(|s| s.bytes.len() / 4)
            .sum()
    }

    /// Iterates over `(pc, word)` pairs of all text sections.
    pub fn text_words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::Text)
            .flat_map(|s| {
                s.bytes.chunks_exact(4).enumerate().map(move |(i, w)| {
                    (
                        s.base + 4 * i as u32,
                        u32::from_le_bytes(w.try_into().unwrap()),
                    )
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_places_sections() {
        let prog = Program {
            entry: TEXT_BASE,
            sections: vec![
                Section {
                    base: TEXT_BASE,
                    bytes: vec![1, 0, 0, 0, 2, 0, 0, 0],
                    kind: SectionKind::Text,
                },
                Section {
                    base: DATA_BASE,
                    bytes: vec![0xff],
                    kind: SectionKind::Data,
                },
            ],
            symbols: BTreeMap::new(),
        };
        let mem = prog.load();
        assert_eq!(mem.read_u32(TEXT_BASE), 1);
        assert_eq!(mem.read_u32(TEXT_BASE + 4), 2);
        assert_eq!(mem.read_u8(DATA_BASE), 0xff);
        assert_eq!(prog.text_len(), 2);
        let words: Vec<_> = prog.text_words().collect();
        assert_eq!(words, vec![(TEXT_BASE, 1), (TEXT_BASE + 4, 2)]);
    }
}
