//! Binary encoding and decoding of SSA instructions.
//!
//! Instructions are fixed 32-bit words in a MIPS-style layout:
//!
//! ```text
//!  31    26 25  21 20  16 15  11 10   6 5     0
//! +--------+------+------+------+------+-------+
//! |   op   |  rs  |  rt  |  rd  | shamt| funct |   R-type (op = 0)
//! +--------+------+------+------+------+-------+
//! |   op   |  rs  |  rt  |      imm16          |   I-type
//! +--------+------+------+---------------------+
//! |   op   |            target26               |   J-type
//! +--------+-----------------------------------+
//! ```
//!
//! The destination of I-type instructions lives in the `rt` field, as in
//! MIPS. The simulator never stores encoded words in its pipeline — it works
//! on decoded [`Instr`] values — but programs are loaded from and assembled
//! to encoded words, and the trace cache charges storage for them.

use crate::instr::Instr;
use crate::op::Op;
use crate::reg::ArchReg;
use std::fmt;

/// Error returned when a 32-bit word is not a valid SSA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Error returned when an [`Instr`] cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// Why the instruction is not encodable.
    pub reason: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unencodable instruction: {}", self.reason)
    }
}

impl std::error::Error for EncodeError {}

// Primary opcode numbers.
const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;

// SPECIAL funct numbers.
const FN_SLL: u32 = 0x00;
const FN_SRL: u32 = 0x02;
const FN_SRA: u32 = 0x03;
const FN_SLLV: u32 = 0x04;
const FN_SRLV: u32 = 0x06;
const FN_SRAV: u32 = 0x07;
const FN_JR: u32 = 0x08;
const FN_JALR: u32 = 0x09;
const FN_SYSCALL: u32 = 0x0c;
const FN_BREAK: u32 = 0x0d;
const FN_MUL: u32 = 0x18;
const FN_MULH: u32 = 0x19;
const FN_DIV: u32 = 0x1a;
const FN_REM: u32 = 0x1b;
const FN_ADD: u32 = 0x20;
const FN_SUB: u32 = 0x22;
const FN_AND: u32 = 0x24;
const FN_OR: u32 = 0x25;
const FN_XOR: u32 = 0x26;
const FN_NOR: u32 = 0x27;
const FN_SLT: u32 = 0x2a;
const FN_SLTU: u32 = 0x2b;
const FN_LWX: u32 = 0x30;

fn special_funct(op: Op) -> Option<u32> {
    Some(match op {
        Op::Sll => FN_SLL,
        Op::Srl => FN_SRL,
        Op::Sra => FN_SRA,
        Op::Sllv => FN_SLLV,
        Op::Srlv => FN_SRLV,
        Op::Srav => FN_SRAV,
        Op::Jr => FN_JR,
        Op::Jalr => FN_JALR,
        Op::Syscall => FN_SYSCALL,
        Op::Break => FN_BREAK,
        Op::Mul => FN_MUL,
        Op::Mulh => FN_MULH,
        Op::Div => FN_DIV,
        Op::Rem => FN_REM,
        Op::Add => FN_ADD,
        Op::Sub => FN_SUB,
        Op::And => FN_AND,
        Op::Or => FN_OR,
        Op::Xor => FN_XOR,
        Op::Nor => FN_NOR,
        Op::Slt => FN_SLT,
        Op::Sltu => FN_SLTU,
        Op::Lwx => FN_LWX,
        _ => return None,
    })
}

fn primary_opcode(op: Op) -> Option<u32> {
    Some(match op {
        Op::J => 0x02,
        Op::Jal => 0x03,
        Op::Beq => 0x04,
        Op::Bne => 0x05,
        Op::Blez => 0x06,
        Op::Bgtz => 0x07,
        Op::Addi => 0x08,
        Op::Slti => 0x0a,
        Op::Sltiu => 0x0b,
        Op::Andi => 0x0c,
        Op::Ori => 0x0d,
        Op::Xori => 0x0e,
        Op::Lui => 0x0f,
        Op::Lb => 0x20,
        Op::Lh => 0x21,
        Op::Lw => 0x23,
        Op::Lbu => 0x24,
        Op::Lhu => 0x25,
        Op::Sb => 0x28,
        Op::Sh => 0x29,
        Op::Sw => 0x2b,
        _ => return None,
    })
}

fn pack_r(rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (OP_SPECIAL << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn pack_i(op: u32, rs: u32, rt: u32, imm16: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm16 & 0xffff)
}

/// Encodes a decoded instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] if [`Instr::validate`] rejects the instruction
/// (out-of-range immediate or shift amount, misused fields).
pub fn encode(i: &Instr) -> Result<u32, EncodeError> {
    i.validate().map_err(|reason| EncodeError { reason })?;
    let rd = i.rd.index() as u32;
    let rs = i.rs.index() as u32;
    let rt = i.rt.index() as u32;
    use Op::*;
    let word = match i.op {
        // Shift-immediate: source in rs, amount in shamt.
        Sll | Srl | Sra => pack_r(rs, 0, rd, i.imm as u32 & 0x1f, special_funct(i.op).unwrap()),
        // Register jumps: target in rs; jalr link register in rd.
        Jr => pack_r(rs, 0, 0, 0, FN_JR),
        Jalr => pack_r(rs, 0, rd, 0, FN_JALR),
        Syscall => pack_r(0, 0, 0, 0, FN_SYSCALL),
        Break => pack_r(0, 0, 0, 0, FN_BREAK),
        // All remaining SPECIAL ops are rd <- rs OP rt.
        Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav | Mul | Mulh | Div
        | Rem | Lwx => pack_r(rs, rt, rd, 0, special_funct(i.op).unwrap()),
        Bltz => pack_i(OP_REGIMM, rs, 0x00, i.imm as u32),
        Bgez => pack_i(OP_REGIMM, rs, 0x01, i.imm as u32),
        Beq | Bne => pack_i(primary_opcode(i.op).unwrap(), rs, rt, i.imm as u32),
        Blez | Bgtz => pack_i(primary_opcode(i.op).unwrap(), rs, 0, i.imm as u32),
        // I-type ALU: destination in the rt field.
        Addi | Andi | Ori | Xori | Slti | Sltiu => {
            pack_i(primary_opcode(i.op).unwrap(), rs, rd, i.imm as u32)
        }
        Lui => pack_i(0x0f, 0, rd, (i.imm as u32) >> 16),
        Lb | Lbu | Lh | Lhu | Lw => pack_i(primary_opcode(i.op).unwrap(), rs, rd, i.imm as u32),
        Sb | Sh | Sw => pack_i(primary_opcode(i.op).unwrap(), rs, rt, i.imm as u32),
        J | Jal => {
            let prim = primary_opcode(i.op).unwrap();
            (prim << 26) | (i.imm as u32 & 0x03ff_ffff)
        }
    };
    Ok(word)
}

fn reg(n: u32) -> ArchReg {
    ArchReg::gpr(n as u8)
}

fn sext16(v: u32) -> i32 {
    v as u16 as i16 as i32
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unassigned primary opcodes, funct codes, or
/// REGIMM selectors.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = DecodeError { word };
    let prim = word >> 26;
    let rs = (word >> 21) & 0x1f;
    let rt = (word >> 16) & 0x1f;
    let rd = (word >> 11) & 0x1f;
    let shamt = (word >> 6) & 0x1f;
    let funct = word & 0x3f;
    let imm16 = word & 0xffff;

    let instr = match prim {
        OP_SPECIAL => {
            let op = match funct {
                FN_SLL => Op::Sll,
                FN_SRL => Op::Srl,
                FN_SRA => Op::Sra,
                FN_SLLV => Op::Sllv,
                FN_SRLV => Op::Srlv,
                FN_SRAV => Op::Srav,
                FN_JR => Op::Jr,
                FN_JALR => Op::Jalr,
                FN_SYSCALL => Op::Syscall,
                FN_BREAK => Op::Break,
                FN_MUL => Op::Mul,
                FN_MULH => Op::Mulh,
                FN_DIV => Op::Div,
                FN_REM => Op::Rem,
                FN_ADD => Op::Add,
                FN_SUB => Op::Sub,
                FN_AND => Op::And,
                FN_OR => Op::Or,
                FN_XOR => Op::Xor,
                FN_NOR => Op::Nor,
                FN_SLT => Op::Slt,
                FN_SLTU => Op::Sltu,
                FN_LWX => Op::Lwx,
                _ => return Err(err),
            };
            // Canonicalize: zero every field the opcode does not use, so
            // decode -> encode -> decode is the identity.
            match op {
                Op::Sll | Op::Srl | Op::Sra => Instr::alu_imm(op, reg(rd), reg(rs), shamt as i32),
                Op::Jr => Instr {
                    op,
                    rd: ArchReg::ZERO,
                    rs: reg(rs),
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                Op::Jalr => Instr {
                    op,
                    rd: reg(rd),
                    rs: reg(rs),
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                Op::Syscall | Op::Break => Instr {
                    op,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                _ => Instr {
                    op,
                    rd: reg(rd),
                    rs: reg(rs),
                    rt: reg(rt),
                    imm: 0,
                },
            }
        }
        OP_REGIMM => {
            let op = match rt {
                0x00 => Op::Bltz,
                0x01 => Op::Bgez,
                _ => return Err(err),
            };
            Instr::branch(op, reg(rs), ArchReg::ZERO, sext16(imm16))
        }
        0x02 | 0x03 => Instr {
            op: if prim == 0x02 { Op::J } else { Op::Jal },
            rd: ArchReg::ZERO,
            rs: ArchReg::ZERO,
            rt: ArchReg::ZERO,
            imm: (word & 0x03ff_ffff) as i32,
        },
        0x04 => Instr::branch(Op::Beq, reg(rs), reg(rt), sext16(imm16)),
        0x05 => Instr::branch(Op::Bne, reg(rs), reg(rt), sext16(imm16)),
        0x06 => Instr::branch(Op::Blez, reg(rs), ArchReg::ZERO, sext16(imm16)),
        0x07 => Instr::branch(Op::Bgtz, reg(rs), ArchReg::ZERO, sext16(imm16)),
        0x08 => Instr::alu_imm(Op::Addi, reg(rt), reg(rs), sext16(imm16)),
        0x0a => Instr::alu_imm(Op::Slti, reg(rt), reg(rs), sext16(imm16)),
        0x0b => Instr::alu_imm(Op::Sltiu, reg(rt), reg(rs), sext16(imm16)),
        0x0c => Instr::alu_imm(Op::Andi, reg(rt), reg(rs), imm16 as i32),
        0x0d => Instr::alu_imm(Op::Ori, reg(rt), reg(rs), imm16 as i32),
        0x0e => Instr::alu_imm(Op::Xori, reg(rt), reg(rs), imm16 as i32),
        0x0f => Instr::alu_imm(Op::Lui, reg(rt), ArchReg::ZERO, (imm16 << 16) as i32),
        0x20 => Instr::load(Op::Lb, reg(rt), reg(rs), sext16(imm16)),
        0x21 => Instr::load(Op::Lh, reg(rt), reg(rs), sext16(imm16)),
        0x23 => Instr::load(Op::Lw, reg(rt), reg(rs), sext16(imm16)),
        0x24 => Instr::load(Op::Lbu, reg(rt), reg(rs), sext16(imm16)),
        0x25 => Instr::load(Op::Lhu, reg(rt), reg(rs), sext16(imm16)),
        0x28 => Instr::store(Op::Sb, reg(rt), reg(rs), sext16(imm16)),
        0x29 => Instr::store(Op::Sh, reg(rt), reg(rs), sext16(imm16)),
        0x2b => Instr::store(Op::Sw, reg(rt), reg(rs), sext16(imm16)),
        _ => return Err(err),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(encode(&crate::instr::NOP).unwrap(), 0);
        assert_eq!(decode(0).unwrap(), crate::instr::NOP);
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unassigned primary opcode 0x3f.
        assert!(decode(0x3f << 26).is_err());
        // SPECIAL with unassigned funct 0x3f.
        assert!(decode(0x3f).is_err());
        // REGIMM with unassigned selector.
        assert!(decode((OP_REGIMM << 26) | (0x1f << 16)).is_err());
    }

    #[test]
    fn negative_displacements_roundtrip() {
        let i = Instr::load(Op::Lw, ArchReg::gpr(4), ArchReg::SP, -8);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn lui_roundtrip_high_bit() {
        let i = Instr::alu_imm(
            Op::Lui,
            ArchReg::gpr(4),
            ArchReg::ZERO,
            0x8001u32 as i32 - 1,
        );
        // 0x8000 << 16 pattern: build directly to avoid arithmetic confusion.
        let i = Instr {
            imm: (0x8000u32 << 16) as i32,
            ..i
        };
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn encode_rejects_invalid() {
        let bad = Instr::alu_imm(Op::Addi, ArchReg::gpr(1), ArchReg::gpr(2), 1 << 20);
        assert!(encode(&bad).is_err());
    }
}
