//! Two-pass assembler for the SSA ISA.
//!
//! The accepted syntax is a small MIPS-style assembly:
//!
//! ```text
//!         .text                 # optional address argument
//! main:   li   $t0, 100        # pseudo-instructions expand automatically
//! loop:   addi $t0, $t0, -1
//!         bgtz $t0, loop
//!         li   $v0, 10
//!         syscall
//!         .data
//! table:  .word 1, 2, 3, main   # label references allowed in .word
//! buf:    .space 64
//! ```
//!
//! Comments run from `#` or `;` to end of line. Labels may appear on their
//! own line or before an instruction/directive. Simple `symbol+offset`
//! expressions are allowed wherever an address is expected.
//!
//! # Pseudo-instructions
//!
//! | pseudo | expansion |
//! |---|---|
//! | `nop` | `sll $zero, $zero, 0` |
//! | `move rd, rs` | `addi rd, rs, 0` |
//! | `li rd, imm` | `addi`/`ori`/`lui`+`ori` depending on the value |
//! | `la rd, sym` | `lui rd, hi` ; `ori rd, rd, lo` |
//! | `b lbl` | `beq $zero, $zero, lbl` |
//! | `beqz/bnez rs, lbl` | `beq/bne rs, $zero, lbl` |
//! | `blt/bge/bgt/ble rs, rt, lbl` | `slt $at, …` ; `bne/beq $at, $zero, lbl` |
//! | `neg rd, rs` | `sub rd, $zero, rs` |
//! | `not rd, rs` | `nor rd, rs, $zero` |
//! | `ret` | `jr $ra` |

use crate::encode::encode;
use crate::instr::Instr;
use crate::op::Op;
use crate::program::{Program, Section, SectionKind, DATA_BASE, TEXT_BASE};
use crate::reg::ArchReg;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced while assembling, with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// A symbol reference plus a constant offset.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expr {
    symbol: Option<String>,
    offset: i64,
}

impl Expr {
    fn literal(v: i64) -> Expr {
        Expr {
            symbol: None,
            offset: v,
        }
    }

    fn eval(&self, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i64, AsmError> {
        let base = match &self.symbol {
            Some(name) => *symbols.get(name).ok_or_else(|| AsmError {
                line,
                msg: format!("undefined symbol `{name}`"),
            })? as i64,
            None => 0,
        };
        Ok(base + self.offset)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(ArchReg),
    Expr(Expr),
    /// `disp(base)` memory operand.
    Mem(Expr, ArchReg),
}

#[derive(Debug, Clone)]
enum Item {
    /// One real instruction, possibly not yet resolvable.
    Instr {
        line: usize,
        mnemonic: String,
        operands: Vec<Operand>,
    },
    Words(Vec<Expr>, usize),
    Halves(Vec<Expr>, usize),
    Bytes(Vec<Expr>, usize),
    Space(usize),
}

impl Item {
    /// Size in bytes; instruction sizes account for pseudo expansion.
    fn size(&self, line: usize) -> Result<usize, AsmError> {
        Ok(match self {
            Item::Instr {
                mnemonic, operands, ..
            } => 4 * expansion_len(mnemonic, operands, line)?,
            Item::Words(v, _) => 4 * v.len(),
            Item::Halves(v, _) => 2 * v.len(),
            Item::Bytes(v, _) => v.len(),
            Item::Space(n) => *n,
        })
    }
}

/// Number of real instructions a (possibly pseudo) mnemonic expands to.
fn expansion_len(mnemonic: &str, operands: &[Operand], line: usize) -> Result<usize, AsmError> {
    Ok(match mnemonic {
        "nop" | "move" | "b" | "beqz" | "bnez" | "ret" | "neg" | "not" => 1,
        "la" => 2,
        "blt" | "bge" | "bgt" | "ble" => 2,
        "li" => {
            let v = match operands.get(1) {
                Some(Operand::Expr(e)) if e.symbol.is_none() => e.offset,
                _ => {
                    return Err(AsmError {
                        line,
                        msg: "li needs a literal immediate (use la for addresses)".into(),
                    })
                }
            };
            if (-(1 << 15)..(1 << 15)).contains(&v) || (0..(1 << 16)).contains(&v) {
                1
            } else {
                2
            }
        }
        _ => 1,
    })
}

struct Cursor {
    line: usize,
}

impl Cursor {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError {
            line: self.line,
            msg: msg.into(),
        }
    }
}

fn parse_operand(cur: &Cursor, text: &str) -> Result<Operand, AsmError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(cur.err("empty operand"));
    }
    if text.starts_with('$') {
        let reg: ArchReg = text.parse().map_err(|e| cur.err(format!("{e}")))?;
        return Ok(Operand::Reg(reg));
    }
    // disp(base) form.
    if let Some(open) = text.find('(') {
        let close = text
            .rfind(')')
            .ok_or_else(|| cur.err("unterminated memory operand"))?;
        let disp = &text[..open];
        let base: ArchReg = text[open + 1..close]
            .trim()
            .parse()
            .map_err(|e| cur.err(format!("{e}")))?;
        let expr = if disp.trim().is_empty() {
            Expr::literal(0)
        } else {
            parse_expr(cur, disp)?
        };
        return Ok(Operand::Mem(expr, base));
    }
    Ok(Operand::Expr(parse_expr(cur, text)?))
}

fn parse_number(cur: &Cursor, text: &str) -> Result<i64, AsmError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, text),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| cur.err(format!("invalid number `{text}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_expr(cur: &Cursor, text: &str) -> Result<Expr, AsmError> {
    let text = text.trim();
    let first = text
        .chars()
        .next()
        .ok_or_else(|| cur.err("empty expression"))?;
    if first.is_ascii_digit() || first == '-' {
        return Ok(Expr::literal(parse_number(cur, text)?));
    }
    // symbol[+|- offset]
    let split = text[1..]
        .find(['+', '-'])
        .map(|i| i + 1)
        .unwrap_or(text.len());
    let (sym, rest) = text.split_at(split);
    let sym = sym.trim();
    if !sym
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return Err(cur.err(format!("invalid symbol name `{sym}`")));
    }
    let offset = if rest.is_empty() {
        0
    } else {
        parse_number(cur, rest)?
    };
    Ok(Expr {
        symbol: Some(sym.to_owned()),
        offset,
    })
}

/// Encodes one source instruction (expanding pseudos) at address `addr`.
fn emit_instr(
    line: usize,
    mnemonic: &str,
    operands: &[Operand],
    addr: u32,
    symbols: &BTreeMap<String, u32>,
    out: &mut Vec<Instr>,
) -> Result<(), AsmError> {
    let err = |msg: String| AsmError { line, msg };
    let reg_at = |i: usize| -> Result<ArchReg, AsmError> {
        match operands.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => Err(err(format!(
                "operand {} of {mnemonic} must be a register",
                i + 1
            ))),
        }
    };
    let expr_at = |i: usize| -> Result<i64, AsmError> {
        match operands.get(i) {
            Some(Operand::Expr(e)) => e.eval(symbols, line),
            _ => Err(err(format!(
                "operand {} of {mnemonic} must be an immediate or label",
                i + 1
            ))),
        }
    };
    let mem_at = |i: usize| -> Result<(i64, ArchReg), AsmError> {
        match operands.get(i) {
            Some(Operand::Mem(e, base)) => Ok((e.eval(symbols, line)?, *base)),
            // Bare `label` is accepted as absolute address with $zero base
            // only when it fits; keep it strict instead: require (base).
            _ => Err(err(format!(
                "operand {} of {mnemonic} must be of the form disp(base)",
                i + 1
            ))),
        }
    };
    let narg = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "{mnemonic} takes {n} operand(s), got {}",
                operands.len()
            )))
        }
    };
    // Branch displacement from the *current* expansion position.
    let branch_disp = |target: i64, slot: usize| -> Result<i32, AsmError> {
        let pc = addr as i64 + 4 * slot as i64;
        let delta = target - (pc + 4);
        if delta % 4 != 0 {
            return Err(err(format!(
                "branch target {target:#x} is not word aligned"
            )));
        }
        let words = delta / 4;
        if !(-(1 << 15)..(1 << 15)).contains(&words) {
            return Err(err(format!("branch target out of range ({words} words)")));
        }
        Ok(words as i32)
    };

    // Pseudo-instructions first.
    match mnemonic {
        "nop" => {
            narg(0)?;
            out.push(crate::instr::NOP);
            return Ok(());
        }
        "move" => {
            narg(2)?;
            out.push(Instr::alu_imm(Op::Addi, reg_at(0)?, reg_at(1)?, 0));
            return Ok(());
        }
        "li" | "la" => {
            narg(2)?;
            let rd = reg_at(0)?;
            let v = expr_at(1)? as u32 as i64;
            let signed = expr_at(1)?;
            let force_wide = mnemonic == "la";
            if !force_wide && (-(1 << 15)..(1 << 15)).contains(&signed) {
                out.push(Instr::alu_imm(Op::Addi, rd, ArchReg::ZERO, signed as i32));
            } else if !force_wide && (0..(1 << 16)).contains(&signed) {
                out.push(Instr::alu_imm(Op::Ori, rd, ArchReg::ZERO, signed as i32));
            } else {
                let hi = ((v as u32) >> 16) as i32;
                let lo = (v as u32 & 0xffff) as i32;
                out.push(Instr::alu_imm(Op::Lui, rd, ArchReg::ZERO, hi << 16));
                out.push(Instr::alu_imm(Op::Ori, rd, rd, lo));
            }
            return Ok(());
        }
        "b" => {
            narg(1)?;
            let disp = branch_disp(expr_at(0)?, 0)?;
            out.push(Instr::branch(Op::Beq, ArchReg::ZERO, ArchReg::ZERO, disp));
            return Ok(());
        }
        "beqz" | "bnez" => {
            narg(2)?;
            let op = if mnemonic == "beqz" { Op::Beq } else { Op::Bne };
            let disp = branch_disp(expr_at(1)?, 0)?;
            out.push(Instr::branch(op, reg_at(0)?, ArchReg::ZERO, disp));
            return Ok(());
        }
        "blt" | "bge" | "bgt" | "ble" => {
            narg(3)?;
            let (rs, rt) = (reg_at(0)?, reg_at(1)?);
            let (ca, cb, br) = match mnemonic {
                "blt" => (rs, rt, Op::Bne),
                "bge" => (rs, rt, Op::Beq),
                "bgt" => (rt, rs, Op::Bne),
                _ => (rt, rs, Op::Beq),
            };
            out.push(Instr::alu(Op::Slt, ArchReg::AT, ca, cb));
            let disp = branch_disp(expr_at(2)?, 1)?;
            out.push(Instr::branch(br, ArchReg::AT, ArchReg::ZERO, disp));
            return Ok(());
        }
        "neg" => {
            narg(2)?;
            out.push(Instr::alu(Op::Sub, reg_at(0)?, ArchReg::ZERO, reg_at(1)?));
            return Ok(());
        }
        "not" => {
            narg(2)?;
            out.push(Instr::alu(Op::Nor, reg_at(0)?, reg_at(1)?, ArchReg::ZERO));
            return Ok(());
        }
        "ret" => {
            narg(0)?;
            out.push(Instr {
                op: Op::Jr,
                rd: ArchReg::ZERO,
                rs: ArchReg::RA,
                rt: ArchReg::ZERO,
                imm: 0,
            });
            return Ok(());
        }
        _ => {}
    }

    let op =
        Op::from_mnemonic(mnemonic).ok_or_else(|| err(format!("unknown mnemonic `{mnemonic}`")))?;
    use Op::*;
    let instr = match op {
        Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav | Mul | Mulh | Div
        | Rem | Lwx => {
            narg(3)?;
            Instr::alu(op, reg_at(0)?, reg_at(1)?, reg_at(2)?)
        }
        Sll | Srl | Sra | Addi | Andi | Ori | Xori | Slti | Sltiu => {
            narg(3)?;
            Instr::alu_imm(op, reg_at(0)?, reg_at(1)?, expr_at(2)? as i32)
        }
        Lui => {
            narg(2)?;
            let v = expr_at(1)?;
            if !(0..(1 << 16)).contains(&v) {
                return Err(err(format!("lui immediate {v} exceeds 16 bits")));
            }
            Instr::alu_imm(op, reg_at(0)?, ArchReg::ZERO, (v as i32) << 16)
        }
        Lb | Lbu | Lh | Lhu | Lw => {
            narg(2)?;
            let (disp, base) = mem_at(1)?;
            Instr::load(op, reg_at(0)?, base, disp as i32)
        }
        Sb | Sh | Sw => {
            narg(2)?;
            let (disp, base) = mem_at(1)?;
            Instr::store(op, reg_at(0)?, base, disp as i32)
        }
        Beq | Bne => {
            narg(3)?;
            Instr::branch(op, reg_at(0)?, reg_at(1)?, branch_disp(expr_at(2)?, 0)?)
        }
        Blez | Bgtz | Bltz | Bgez => {
            narg(2)?;
            Instr::branch(op, reg_at(0)?, ArchReg::ZERO, branch_disp(expr_at(1)?, 0)?)
        }
        J | Jal => {
            narg(1)?;
            let target = expr_at(0)?;
            if target % 4 != 0 {
                return Err(err(format!("jump target {target:#x} is not word aligned")));
            }
            Instr {
                op,
                rd: ArchReg::ZERO,
                rs: ArchReg::ZERO,
                rt: ArchReg::ZERO,
                imm: (target / 4) as i32,
            }
        }
        Jr => {
            narg(1)?;
            Instr {
                op,
                rd: ArchReg::ZERO,
                rs: reg_at(0)?,
                rt: ArchReg::ZERO,
                imm: 0,
            }
        }
        Jalr => {
            // Accept both `jalr rs` (link in $ra) and `jalr rd, rs`.
            let (rd, rs) = match operands.len() {
                1 => (ArchReg::RA, reg_at(0)?),
                2 => (reg_at(0)?, reg_at(1)?),
                n => return Err(err(format!("jalr takes 1 or 2 operands, got {n}"))),
            };
            Instr {
                op,
                rd,
                rs,
                rt: ArchReg::ZERO,
                imm: 0,
            }
        }
        Syscall | Break => {
            narg(0)?;
            Instr {
                op,
                rd: ArchReg::ZERO,
                rs: ArchReg::ZERO,
                rt: ArchReg::ZERO,
                imm: 0,
            }
        }
    };
    instr
        .validate()
        .map_err(|msg| err(format!("invalid {mnemonic}: {msg}")))?;
    out.push(instr);
    Ok(())
}

#[derive(Debug)]
struct Chunk {
    kind: SectionKind,
    base: u32,
    items: Vec<(u32, Item)>, // (address, item)
    end: u32,
}

/// Assembles a source string into a linked [`Program`].
///
/// The entry point is the `main` label if present, otherwise the first text
/// address.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based line number of the first
/// problem (syntax error, unknown mnemonic, undefined symbol, out-of-range
/// immediate or branch).
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // ---- Pass 1: parse, lay out addresses, collect symbols. ----
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut kind = SectionKind::Text;
    let mut text_pc = TEXT_BASE;
    let mut data_pc = DATA_BASE;

    let ensure_chunk = |chunks: &mut Vec<Chunk>, kind: SectionKind, pc: u32| match chunks.last() {
        Some(c) if c.kind == kind && c.end == pc => {}
        _ => chunks.push(Chunk {
            kind,
            base: pc,
            items: Vec::new(),
            end: pc,
        }),
    };

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let cur = Cursor { line };
        let mut text = raw;
        if let Some(i) = text.find(['#', ';']) {
            text = &text[..i];
        }
        let mut text = text.trim();

        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let here = match kind {
                SectionKind::Text => text_pc,
                SectionKind::Data => data_pc,
            };
            if symbols.insert(label.to_owned(), here).is_some() {
                return Err(cur.err(format!("duplicate label `{label}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = text.strip_prefix('.') {
            let (name, args) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, ""),
            };
            match name {
                "text" | "data" => {
                    kind = if name == "text" {
                        SectionKind::Text
                    } else {
                        SectionKind::Data
                    };
                    if !args.is_empty() {
                        let addr = parse_number(&cur, args)? as u32;
                        match kind {
                            SectionKind::Text => text_pc = addr,
                            SectionKind::Data => data_pc = addr,
                        }
                    }
                }
                "word" | "half" | "byte" => {
                    let exprs = args
                        .split(',')
                        .map(|p| parse_expr(&cur, p))
                        .collect::<Result<Vec<_>, _>>()?;
                    let item = match name {
                        "word" => Item::Words(exprs, line),
                        "half" => Item::Halves(exprs, line),
                        _ => Item::Bytes(exprs, line),
                    };
                    let pc = match kind {
                        SectionKind::Text => &mut text_pc,
                        SectionKind::Data => &mut data_pc,
                    };
                    ensure_chunk(&mut chunks, kind, *pc);
                    let sz = item.size(line)? as u32;
                    let c = chunks.last_mut().unwrap();
                    c.items.push((*pc, item));
                    *pc += sz;
                    c.end = *pc;
                }
                "space" => {
                    let n = parse_number(&cur, args)? as usize;
                    let pc = match kind {
                        SectionKind::Text => &mut text_pc,
                        SectionKind::Data => &mut data_pc,
                    };
                    ensure_chunk(&mut chunks, kind, *pc);
                    let c = chunks.last_mut().unwrap();
                    c.items.push((*pc, Item::Space(n)));
                    *pc += n as u32;
                    c.end = *pc;
                }
                "align" => {
                    let n = parse_number(&cur, args)? as u32;
                    let align = 1u32 << n;
                    let pc = match kind {
                        SectionKind::Text => &mut text_pc,
                        SectionKind::Data => &mut data_pc,
                    };
                    let new_pc = pc.div_ceil(align) * align;
                    let pad = new_pc - *pc;
                    if pad > 0 {
                        ensure_chunk(&mut chunks, kind, *pc);
                        let c = chunks.last_mut().unwrap();
                        c.items.push((*pc, Item::Space(pad as usize)));
                        *pc = new_pc;
                        c.end = *pc;
                    }
                }
                "global" | "globl" | "ent" | "end" => {} // accepted and ignored
                _ => return Err(cur.err(format!("unknown directive `.{name}`"))),
            }
            continue;
        }

        // Instruction.
        if kind != SectionKind::Text {
            return Err(cur.err("instructions are only allowed in .text"));
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let operands = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|p| parse_operand(&cur, p))
                .collect::<Result<Vec<_>, _>>()?
        };
        let item = Item::Instr {
            line,
            mnemonic: mnemonic.to_ascii_lowercase(),
            operands,
        };
        let sz = item.size(line)? as u32;
        ensure_chunk(&mut chunks, SectionKind::Text, text_pc);
        let c = chunks.last_mut().unwrap();
        c.items.push((text_pc, item));
        text_pc += sz;
        c.end = text_pc;
    }

    // ---- Pass 2: resolve and emit. ----
    let mut sections = Vec::new();
    for chunk in &chunks {
        let mut bytes = Vec::with_capacity((chunk.end - chunk.base) as usize);
        for (addr, item) in &chunk.items {
            debug_assert_eq!(chunk.base as usize + bytes.len(), *addr as usize);
            match item {
                Item::Instr {
                    line,
                    mnemonic,
                    operands,
                } => {
                    let mut instrs = Vec::new();
                    emit_instr(*line, mnemonic, operands, *addr, &symbols, &mut instrs)?;
                    debug_assert_eq!(instrs.len(), expansion_len(mnemonic, operands, *line)?);
                    for i in &instrs {
                        let w = encode(i).map_err(|e| AsmError {
                            line: *line,
                            msg: e.to_string(),
                        })?;
                        bytes.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Item::Words(exprs, line) => {
                    for e in exprs {
                        bytes.extend_from_slice(&(e.eval(&symbols, *line)? as u32).to_le_bytes());
                    }
                }
                Item::Halves(exprs, line) => {
                    for e in exprs {
                        bytes.extend_from_slice(&(e.eval(&symbols, *line)? as u16).to_le_bytes());
                    }
                }
                Item::Bytes(exprs, line) => {
                    for e in exprs {
                        bytes.push(e.eval(&symbols, *line)? as u8);
                    }
                }
                Item::Space(n) => bytes.extend(std::iter::repeat_n(0u8, *n)),
            }
        }
        sections.push(Section {
            base: chunk.base,
            bytes,
            kind: chunk.kind,
        });
    }

    let entry = symbols.get("main").copied().unwrap_or_else(|| {
        sections
            .iter()
            .find(|s| s.kind == SectionKind::Text)
            .map(|s| s.base)
            .unwrap_or(TEXT_BASE)
    });

    Ok(Program {
        entry,
        sections,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r#"
            .text
    main:   addi $t0, $zero, 3
    loop:   addi $t0, $t0, -1
            bgtz $t0, loop
            j    main
    "#,
        )
        .unwrap();
        assert_eq!(p.symbol("main"), Some(TEXT_BASE));
        assert_eq!(p.symbol("loop"), Some(TEXT_BASE + 4));
        let words: Vec<u32> = p.text_words().map(|(_, w)| w).collect();
        let bgtz = decode(words[2]).unwrap();
        // Offset back to `loop` from pc+4 = base+12: -2 instructions.
        assert_eq!(bgtz.imm, -2);
        let j = decode(words[3]).unwrap();
        assert_eq!(j.taken_target(0), Some(TEXT_BASE));
    }

    #[test]
    fn li_picks_smallest_encoding() {
        let p = assemble(
            "        .text\nmain:   li $t0, 5\n        li $t1, 0x8000\n        li $t2, 0x12345678\n",
        )
        .unwrap();
        // 1 + 1 + 2 instructions.
        assert_eq!(p.text_len(), 4);
        let w: Vec<_> = p.text_words().map(|(_, w)| decode(w).unwrap()).collect();
        assert_eq!(w[0].op, Op::Addi);
        assert_eq!(w[1].op, Op::Ori);
        assert_eq!(w[2].op, Op::Lui);
        assert_eq!(w[3].op, Op::Ori);
    }

    #[test]
    fn word_directive_takes_labels() {
        let p = assemble(
            r#"
            .text
    main:   nop
            .data
    tbl:    .word main, tbl+4, 7
    "#,
        )
        .unwrap();
        let mem = p.load();
        assert_eq!(mem.read_u32(DATA_BASE), TEXT_BASE);
        assert_eq!(mem.read_u32(DATA_BASE + 4), DATA_BASE + 4);
        assert_eq!(mem.read_u32(DATA_BASE + 8), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("        .text\n        frobnicate $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("        .text\n        addi $t0, $t1, 100000\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("        .text\n        beq $t0, $t1, nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined symbol"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let e = assemble(".text\nx:  nop\nx:  nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn conditional_pseudos_expand() {
        let p = assemble(
            r#"
            .text
    main:   blt $t0, $t1, main
            bge $t0, $t1, main
    "#,
        )
        .unwrap();
        assert_eq!(p.text_len(), 4);
        let instrs: Vec<_> = p.text_words().map(|(_, w)| decode(w).unwrap()).collect();
        assert_eq!(instrs[0].op, Op::Slt);
        assert_eq!(instrs[1].op, Op::Bne);
        assert_eq!(instrs[2].op, Op::Slt);
        assert_eq!(instrs[3].op, Op::Beq);
    }

    #[test]
    fn align_and_space_layout() {
        let p = assemble(
            r#"
            .data
    a:      .byte 1
            .align 2
    b:      .word 2
    "#,
        )
        .unwrap();
        assert_eq!(p.symbol("a"), Some(DATA_BASE));
        assert_eq!(p.symbol("b"), Some(DATA_BASE + 4));
        let mem = p.load();
        assert_eq!(mem.read_u32(DATA_BASE + 4), 2);
    }
}
