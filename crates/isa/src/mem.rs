//! Sparse byte-addressable memory.
//!
//! Memory is organized as 4 KiB pages allocated on first touch, so a 32-bit
//! address space costs only what a program actually uses. All multi-byte
//! accesses are little-endian. Unaligned accesses are supported (they are
//! assembled byte-wise); the *simulator* charges no extra latency for them,
//! and the assembler never produces them for word data.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse, paged, little-endian memory.
///
/// # Examples
///
/// ```
/// use tracefill_isa::mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u32(0x1000_0000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x1000_0000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x1000_0000), 0xef); // little-endian
/// assert_eq!(m.read_u32(0x2000_0000), 0);   // untouched memory reads zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory; every byte reads as zero until written.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of distinct pages that have been written.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, val: u16) {
        for (i, b) in val.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: the whole word lives in one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().unwrap()),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        let off = (addr & PAGE_MASK) as usize;
        if off + 4 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            page[off..off + 4].copy_from_slice(&val.to_le_bytes());
        } else {
            for (i, b) in val.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Reads `size` (1, 2 or 4) bytes as a zero-extended value.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2 or 4.
    pub fn read_sized(&self, addr: u32, size: u32) -> u32 {
        match size {
            1 => self.read_u8(addr) as u32,
            2 => self.read_u16(addr) as u32,
            4 => self.read_u32(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` (1, 2 or 4) bytes of `val`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2 or 4.
    pub fn write_sized(&mut self, addr: u32, size: u32, val: u32) {
        match size {
            1 => self.write_u8(addr, val as u8),
            2 => self.write_u16(addr, val as u16),
            4 => self.write_u32(addr, val),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Address of the first byte where `self` and `other` differ, or
    /// `None` when the two memories hold identical contents. Pages absent
    /// from one side compare as all-zero, so two memories that merely
    /// touched different (but zero-valued) pages are still equal. Used by
    /// the differential tests to compare a sim's memory against the
    /// reference interpreter's.
    pub fn diff(&self, other: &Memory) -> Option<u32> {
        let mut pages: Vec<u32> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        for pn in pages {
            let a = self.pages.get(&pn).map_or(&ZERO, |p| &**p);
            let b = other.pages.get(&pn).map_or(&ZERO, |p| &**p);
            if a != b {
                for i in 0..PAGE_SIZE {
                    if a[i] != b[i] {
                        return Some((pn << PAGE_SHIFT) | i as u32);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endianness_and_sparsity() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
        assert_eq!(m.read_u16(0x102), 0x0403);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn cross_page_word() {
        let mut m = Memory::new();
        let addr = 0x1ffe; // spans pages 1 and 2
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn diff_finds_first_difference_and_ignores_zero_pages() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.diff(&b), None);
        // A page that exists on one side but holds only zeros is equal.
        a.write_u8(0x5000, 0);
        assert_eq!(a.diff(&b), None);
        b.write_u32(0x9004, 0x0102_0304);
        assert_eq!(a.diff(&b), Some(0x9004));
        a.write_u32(0x9004, 0x0102_0304);
        assert_eq!(a.diff(&b), None);
        a.write_u8(0x9007, 0xff);
        assert_eq!(a.diff(&b), Some(0x9007));
    }

    #[test]
    fn sized_accessors_match_fixed() {
        let mut m = Memory::new();
        m.write_sized(8, 2, 0x1234_5678);
        assert_eq!(m.read_sized(8, 2), 0x5678);
        assert_eq!(m.read_sized(8, 1), 0x78);
        m.write_sized(16, 4, 7);
        assert_eq!(m.read_u32(16), 7);
    }
}
