//! Pure value semantics of SSA operations.
//!
//! Both the functional interpreter (the architectural oracle) and the
//! out-of-order pipeline's execute stage call these functions, so the two
//! cannot diverge on arithmetic. All arithmetic wraps; divide-by-zero is
//! defined to produce zero (the SSA ISA has no arithmetic traps, which keeps
//! wrong-path execution total).

use crate::op::Op;

/// Computes the result of a non-memory, non-control operation.
///
/// `a` and `b` are the values of the first and second register sources (the
/// second is ignored by immediate forms) and `imm` is the instruction's
/// already-extended immediate.
///
/// # Panics
///
/// Panics if `op` is a memory, control or system opcode — those do not have
/// a pure ALU result; use [`effective_addr`] / [`branch_taken`] instead.
pub fn alu_result(op: Op, a: u32, b: u32, imm: i32) -> u32 {
    use Op::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Nor => !(a | b),
        Slt => ((a as i32) < (b as i32)) as u32,
        Sltu => (a < b) as u32,
        Sllv => a.wrapping_shl(b & 0x1f),
        Srlv => a.wrapping_shr(b & 0x1f),
        Srav => (a as i32).wrapping_shr(b & 0x1f) as u32,
        Mul => a.wrapping_mul(b),
        Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        Div => {
            if b == 0 {
                0
            } else if a as i32 == i32::MIN && b as i32 == -1 {
                a // wrapping overflow case
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        Rem => {
            if b == 0 || (a as i32 == i32::MIN && b as i32 == -1) {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        Sll => a.wrapping_shl(imm as u32 & 0x1f),
        Srl => a.wrapping_shr(imm as u32 & 0x1f),
        Sra => (a as i32).wrapping_shr(imm as u32 & 0x1f) as u32,
        Addi => a.wrapping_add(imm as u32),
        Andi => a & imm as u32,
        Ori => a | imm as u32,
        Xori => a ^ imm as u32,
        Slti => ((a as i32) < imm) as u32,
        Sltiu => (a < imm as u32) as u32,
        Lui => imm as u32,
        _ => panic!("{op} has no pure ALU result"),
    }
}

/// Whether a conditional branch is taken given its source values.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
pub fn branch_taken(op: Op, a: u32, b: u32) -> bool {
    use Op::*;
    match op {
        Beq => a == b,
        Bne => a != b,
        Blez => (a as i32) <= 0,
        Bgtz => (a as i32) > 0,
        Bltz => (a as i32) < 0,
        Bgez => (a as i32) >= 0,
        _ => panic!("{op} is not a conditional branch"),
    }
}

/// The effective address of a memory operation given its operand values.
///
/// For displacement forms this is `base + imm`; for the indexed load `LWX`
/// it is `rs + rt`.
///
/// # Panics
///
/// Panics if `op` is not a load or store.
pub fn effective_addr(op: Op, base: u32, index: u32, imm: i32) -> u32 {
    use Op::*;
    match op {
        Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw => base.wrapping_add(imm as u32),
        Lwx => base.wrapping_add(index),
        _ => panic!("{op} is not a memory operation"),
    }
}

/// Sign- or zero-extends a loaded value per the load opcode.
///
/// # Panics
///
/// Panics if `op` is not a load.
pub fn extend_load(op: Op, raw: u32) -> u32 {
    use Op::*;
    match op {
        Lb => raw as u8 as i8 as i32 as u32,
        Lbu => raw as u8 as u32,
        Lh => raw as u16 as i16 as i32 as u32,
        Lhu => raw as u16 as u32,
        Lw | Lwx => raw,
        _ => panic!("{op} is not a load"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_vs_unsigned_compares() {
        assert_eq!(alu_result(Op::Slt, 0xffff_ffff, 0, 0), 1); // -1 < 0
        assert_eq!(alu_result(Op::Sltu, 0xffff_ffff, 0, 0), 0);
        assert_eq!(alu_result(Op::Slti, 0xffff_ffff, 0, 0), 1);
        assert_eq!(alu_result(Op::Sltiu, 1, 0, -1), 1); // imm sign-extends to 0xffffffff
    }

    #[test]
    fn division_is_total() {
        assert_eq!(alu_result(Op::Div, 7, 0, 0), 0);
        assert_eq!(alu_result(Op::Rem, 7, 0, 0), 0);
        assert_eq!(
            alu_result(Op::Div, i32::MIN as u32, -1i32 as u32, 0),
            i32::MIN as u32
        );
        assert_eq!(alu_result(Op::Rem, i32::MIN as u32, -1i32 as u32, 0), 0);
        assert_eq!(alu_result(Op::Div, -7i32 as u32, 2, 0), -3i32 as u32);
    }

    #[test]
    fn mulh_matches_wide_multiply() {
        let a = 0x7fff_ffffu32;
        let b = 0x0000_1000u32;
        let wide = (a as i32 as i64) * (b as i32 as i64);
        assert_eq!(alu_result(Op::Mulh, a, b, 0), (wide >> 32) as u32);
        assert_eq!(alu_result(Op::Mul, a, b, 0), wide as u32);
    }

    #[test]
    fn shifts_mask_their_amounts() {
        assert_eq!(alu_result(Op::Sllv, 1, 33, 0), 2);
        assert_eq!(alu_result(Op::Sra, 0x8000_0000, 0, 4), 0xf800_0000);
    }

    #[test]
    fn branch_predicates() {
        assert!(branch_taken(Op::Beq, 5, 5));
        assert!(!branch_taken(Op::Bne, 5, 5));
        assert!(branch_taken(Op::Bltz, -1i32 as u32, 0));
        assert!(branch_taken(Op::Bgez, 0, 0));
        assert!(!branch_taken(Op::Bgtz, 0, 0));
        assert!(branch_taken(Op::Blez, 0, 0));
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(Op::Lb, 0x80), 0xffff_ff80);
        assert_eq!(extend_load(Op::Lbu, 0x80), 0x80);
        assert_eq!(extend_load(Op::Lh, 0x8000), 0xffff_8000);
        assert_eq!(extend_load(Op::Lhu, 0x8000), 0x8000);
    }

    #[test]
    fn effective_addr_forms() {
        assert_eq!(effective_addr(Op::Lw, 100, 999, -4), 96);
        assert_eq!(effective_addr(Op::Lwx, 100, 28, 0), 128);
        assert_eq!(effective_addr(Op::Sw, u32::MAX, 0, 1), 0);
    }
}
