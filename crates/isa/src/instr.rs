//! Decoded instructions and their operand roles.

use crate::op::{Op, OpKind};
use crate::reg::ArchReg;
use std::fmt;

/// A decoded SSA instruction.
///
/// The four operand fields are interpreted per opcode as follows (fields not
/// listed are ignored and should be zero):
///
/// | format | opcodes | semantics |
/// |---|---|---|
/// | three-register | `add sub and or xor nor slt sltu sllv srlv srav mul mulh div rem` | `rd <- rs OP rt` |
/// | shift-immediate | `sll srl sra` | `rd <- rs SHIFT imm` (`imm` in `0..32`) |
/// | ALU-immediate | `addi andi ori xori slti sltiu` | `rd <- rs OP imm` |
/// | load-upper | `lui` | `rd <- imm << 16` |
/// | load | `lb lbu lh lhu lw` | `rd <- mem[rs + imm]` |
/// | indexed load | `lwx` | `rd <- mem[rs + rt]` |
/// | store | `sb sh sw` | `mem[rs + imm] <- rt` |
/// | compare-branch | `beq bne` | `if rs ~ rt: pc <- pc + 4 + (imm << 2)` |
/// | zero-branch | `blez bgtz bltz bgez` | `if rs ~ 0: pc <- pc + 4 + (imm << 2)` |
/// | jump | `j jal` | `pc <- imm << 2` (`jal` also writes `$ra`) |
/// | register jump | `jr jalr` | `pc <- rs` (`jalr` also writes `rd`) |
/// | system | `syscall break` | serializing |
///
/// Arithmetic, compare and memory-displacement immediates are sign-extended
/// 16-bit values; logical immediates (`andi ori xori lui`) are zero-extended.
/// `imm` stores the already-extended value.
///
/// # Examples
///
/// ```
/// use tracefill_isa::{Instr, Op, ArchReg};
///
/// // A register move spelled as `addi $t0, $t1, 0`:
/// let i = Instr::alu_imm(Op::Addi, ArchReg::gpr(8), ArchReg::gpr(9), 0);
/// assert_eq!(i.as_register_move(), Some(ArchReg::gpr(9)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Opcode.
    pub op: Op,
    /// Destination register field.
    pub rd: ArchReg,
    /// First source register field.
    pub rs: ArchReg,
    /// Second source register field (also the store-data register).
    pub rt: ArchReg,
    /// Immediate field, already sign- or zero-extended per the opcode.
    pub imm: i32,
}

/// The canonical no-op (`sll $zero, $zero, 0`).
pub const NOP: Instr = Instr {
    op: Op::Sll,
    rd: ArchReg::ZERO,
    rs: ArchReg::ZERO,
    rt: ArchReg::ZERO,
    imm: 0,
};

impl Instr {
    /// Builds a three-register ALU instruction: `rd <- rs OP rt`.
    pub fn alu(op: Op, rd: ArchReg, rs: ArchReg, rt: ArchReg) -> Instr {
        Instr {
            op,
            rd,
            rs,
            rt,
            imm: 0,
        }
    }

    /// Builds an immediate ALU or shift-immediate instruction: `rd <- rs OP imm`.
    pub fn alu_imm(op: Op, rd: ArchReg, rs: ArchReg, imm: i32) -> Instr {
        Instr {
            op,
            rd,
            rs,
            rt: ArchReg::ZERO,
            imm,
        }
    }

    /// Builds a displacement load: `rd <- mem[rs + imm]`.
    pub fn load(op: Op, rd: ArchReg, base: ArchReg, disp: i32) -> Instr {
        Instr {
            op,
            rd,
            rs: base,
            rt: ArchReg::ZERO,
            imm: disp,
        }
    }

    /// Builds a displacement store: `mem[rs + imm] <- rt`.
    pub fn store(op: Op, data: ArchReg, base: ArchReg, disp: i32) -> Instr {
        Instr {
            op,
            rd: ArchReg::ZERO,
            rs: base,
            rt: data,
            imm: disp,
        }
    }

    /// Builds a conditional branch with an instruction-count offset relative
    /// to the fall-through PC.
    pub fn branch(op: Op, rs: ArchReg, rt: ArchReg, offset: i32) -> Instr {
        Instr {
            op,
            rd: ArchReg::ZERO,
            rs,
            rt,
            imm: offset,
        }
    }

    /// The architectural destination register, if this instruction writes one.
    ///
    /// Writes to `$zero` are architectural no-ops and report `None`.
    pub fn dest(&self) -> Option<ArchReg> {
        use OpKind::*;
        let d = match self.op.kind() {
            IntAlu | Shift | Mul | Div | Load => self.rd,
            Jump => match self.op {
                Op::Jal => ArchReg::RA,
                Op::Jalr => self.rd,
                _ => return None,
            },
            Store | CondBranch | System => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The register sources of this instruction, in operand order.
    ///
    /// `$zero` sources are included (they are always-ready reads); at most
    /// two sources exist for any opcode.
    pub fn srcs(&self) -> SrcIter {
        use Op::*;
        let (a, b) = match self.op {
            Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav | Mul | Mulh
            | Div | Rem | Lwx | Beq | Bne => (Some(self.rs), Some(self.rt)),
            Sll | Srl | Sra | Addi | Andi | Ori | Xori | Slti | Sltiu | Lb | Lbu | Lh | Lhu
            | Lw | Blez | Bgtz | Bltz | Bgez | Jr | Jalr => (Some(self.rs), None),
            Sb | Sh | Sw => (Some(self.rs), Some(self.rt)),
            Lui | J | Jal | Syscall | Break => (None, None),
        };
        SrcIter { a, b }
    }

    /// Whether this instruction reads register `r`.
    pub fn reads(&self, r: ArchReg) -> bool {
        self.srcs().any(|s| s == r)
    }

    /// If this instruction is an idiomatic register-to-register move, returns
    /// the source register whose value it copies.
    ///
    /// The recognized idioms are the ones MIPS-family compilers emit in the
    /// absence of an architectural move (paper §4.2): `addi/ori/xori rd, rs,
    /// 0`, `add/sub/or/xor rd, rs, $zero`, `add/or rd, $zero, rt`,
    /// `sll/srl/sra rd, rs, 0`, and the zero-initialization idioms (`and rd,
    /// rs, $zero`, `andi rd, rs, 0`, `lui rd, 0`, …) which copy `$zero`.
    ///
    /// Instructions whose destination is `$zero` are not moves (they are
    /// no-ops and never need a rename mapping).
    pub fn as_register_move(&self) -> Option<ArchReg> {
        use Op::*;
        self.dest()?;
        match self.op {
            Addi | Ori | Xori if self.imm == 0 => Some(self.rs),
            Sll | Srl | Sra if self.imm == 0 => Some(self.rs),
            Add | Or | Xor if self.rt.is_zero() => Some(self.rs),
            Add | Or if self.rs.is_zero() => Some(self.rt),
            Sub if self.rt.is_zero() => Some(self.rs),
            // Zero-initialization idioms: the "source" is $zero itself.
            And if self.rs.is_zero() || self.rt.is_zero() => Some(ArchReg::ZERO),
            Andi if self.imm == 0 => Some(ArchReg::ZERO),
            Lui if self.imm == 0 => Some(ArchReg::ZERO),
            _ => None,
        }
    }

    /// Whether this instruction has no architectural effect (e.g. `nop` or
    /// any ALU op targeting `$zero`).
    pub fn is_nop(&self) -> bool {
        use OpKind::*;
        matches!(self.op.kind(), IntAlu | Shift | Mul | Div) && self.rd.is_zero()
    }

    /// The taken target of a PC-relative branch or direct jump located at
    /// `pc`, or `None` for non-control and register-indirect instructions.
    pub fn taken_target(&self, pc: u32) -> Option<u32> {
        if self.op.is_cond_branch() {
            Some(
                pc.wrapping_add(4)
                    .wrapping_add((self.imm as u32).wrapping_mul(4)),
            )
        } else if matches!(self.op, Op::J | Op::Jal) {
            Some((self.imm as u32).wrapping_mul(4))
        } else {
            None
        }
    }

    /// Validates field ranges and operand roles for this instruction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field: an out-of-range
    /// immediate or shift amount, or a set field the opcode does not use.
    pub fn validate(&self) -> Result<(), String> {
        use Op::*;
        match self.op {
            Sll | Srl | Sra => {
                if !(0..32).contains(&self.imm) {
                    return Err(format!("shift amount {} out of range 0..32", self.imm));
                }
            }
            Addi | Slti | Lb | Lbu | Lh | Lhu | Lw | Sb | Sh | Sw | Beq | Bne | Blez | Bgtz
            | Bltz | Bgez => {
                if !(-(1 << 15)..(1 << 15)).contains(&self.imm) {
                    return Err(format!("immediate {} exceeds signed 16 bits", self.imm));
                }
            }
            Sltiu => {
                // Comparison is unsigned but the encoded immediate is still a
                // sign-extended 16-bit field, as in MIPS.
                if !(-(1 << 15)..(1 << 15)).contains(&self.imm) {
                    return Err(format!("immediate {} exceeds signed 16 bits", self.imm));
                }
            }
            Andi | Ori | Xori => {
                if !(0..(1 << 16)).contains(&self.imm) {
                    return Err(format!("immediate {} exceeds unsigned 16 bits", self.imm));
                }
            }
            Lui => {
                // `imm` holds the already-shifted value, so only the low 16
                // bits must be clear; any 16-bit payload is representable.
                if self.imm & 0xffff != 0 {
                    return Err(format!(
                        "lui immediate {:#x} must be a left-shifted 16-bit value",
                        self.imm
                    ));
                }
            }
            J | Jal => {
                if !(0..(1 << 26)).contains(&self.imm) {
                    return Err(format!("jump target field {} exceeds 26 bits", self.imm));
                }
            }
            _ => {
                if self.imm != 0 {
                    return Err(format!("opcode {} does not take an immediate", self.op));
                }
            }
        }
        Ok(())
    }
}

/// Iterator over the register sources of an [`Instr`], produced by
/// [`Instr::srcs`].
#[derive(Debug, Clone)]
pub struct SrcIter {
    a: Option<ArchReg>,
    b: Option<ArchReg>,
}

impl Iterator for SrcIter {
    type Item = ArchReg;

    fn next(&mut self) -> Option<ArchReg> {
        self.a.take().or_else(|| self.b.take())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.a.is_some() as usize + self.b.is_some() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SrcIter {}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::disasm::fmt_instr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    #[test]
    fn move_idioms_are_detected() {
        let cases = [
            (Instr::alu_imm(Op::Addi, r(8), r(9), 0), Some(r(9))),
            (Instr::alu_imm(Op::Ori, r(8), r(9), 0), Some(r(9))),
            (Instr::alu(Op::Add, r(8), r(9), r(0)), Some(r(9))),
            (Instr::alu(Op::Add, r(8), r(0), r(9)), Some(r(9))),
            (Instr::alu(Op::Sub, r(8), r(9), r(0)), Some(r(9))),
            (Instr::alu_imm(Op::Sll, r(8), r(9), 0), Some(r(9))),
            (Instr::alu(Op::And, r(8), r(9), r(0)), Some(r(0))),
            (Instr::alu_imm(Op::Addi, r(8), r(9), 4), None),
            (Instr::alu(Op::Add, r(8), r(9), r(10)), None),
            // Destination $zero: a no-op, not a move.
            (Instr::alu_imm(Op::Addi, r(0), r(9), 0), None),
        ];
        for (i, expect) in cases {
            assert_eq!(i.as_register_move(), expect, "instr: {i:?}");
        }
    }

    #[test]
    fn dest_and_srcs_roles() {
        let add = Instr::alu(Op::Add, r(3), r(1), r(2));
        assert_eq!(add.dest(), Some(r(3)));
        assert_eq!(add.srcs().collect::<Vec<_>>(), vec![r(1), r(2)]);

        let sw = Instr::store(Op::Sw, r(5), r(29), 16);
        assert_eq!(sw.dest(), None);
        assert_eq!(sw.srcs().collect::<Vec<_>>(), vec![r(29), r(5)]);

        let jal = Instr {
            op: Op::Jal,
            rd: r(0),
            rs: r(0),
            rt: r(0),
            imm: 0x100,
        };
        assert_eq!(jal.dest(), Some(ArchReg::RA));
        assert_eq!(jal.srcs().count(), 0);

        let lwx = Instr::alu(Op::Lwx, r(4), r(5), r(6));
        assert_eq!(lwx.dest(), Some(r(4)));
        assert_eq!(lwx.srcs().count(), 2);
    }

    #[test]
    fn branch_targets() {
        let b = Instr::branch(Op::Beq, r(1), r(2), -2);
        assert_eq!(b.taken_target(0x1000), Some(0x1000 + 4 - 8));
        let j = Instr {
            op: Op::J,
            rd: r(0),
            rs: r(0),
            rt: r(0),
            imm: 0x40,
        };
        assert_eq!(j.taken_target(0xdead_0000), Some(0x100));
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(Instr::alu_imm(Op::Sll, r(1), r(2), 33).validate().is_err());
        assert!(Instr::alu_imm(Op::Addi, r(1), r(2), 40000)
            .validate()
            .is_err());
        assert!(Instr::alu_imm(Op::Andi, r(1), r(2), -1).validate().is_err());
        assert!(Instr::alu(Op::Add, r(1), r(2), r(3)).validate().is_ok());
        assert!(NOP.validate().is_ok());
    }

    #[test]
    fn writes_to_zero_are_nops() {
        assert!(NOP.is_nop());
        assert!(Instr::alu(Op::Add, r(0), r(1), r(2)).is_nop());
        assert!(!Instr::store(Op::Sw, r(1), r(2), 0).is_nop());
    }
}
