//! Textual disassembly of instructions.
//!
//! The produced syntax is the same the assembler accepts (modulo labels:
//! branch and jump targets print as numeric offsets/addresses).

use crate::instr::Instr;
use crate::op::Op;
use std::fmt;

/// Formats one instruction in assembler syntax.
///
/// This is the implementation behind `Instr`'s [`std::fmt::Display`].
pub fn fmt_instr(i: &Instr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use Op::*;
    let m = i.op.mnemonic();
    match i.op {
        Add | Sub | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav | Mul | Mulh | Div
        | Rem => write!(f, "{m} {}, {}, {}", i.rd, i.rs, i.rt),
        Lwx => write!(f, "{m} {}, {}, {}", i.rd, i.rs, i.rt),
        Sll | Srl | Sra => write!(f, "{m} {}, {}, {}", i.rd, i.rs, i.imm),
        Addi | Andi | Ori | Xori | Slti | Sltiu => {
            write!(f, "{m} {}, {}, {}", i.rd, i.rs, i.imm)
        }
        Lui => write!(f, "{m} {}, {:#x}", i.rd, (i.imm as u32) >> 16),
        Lb | Lbu | Lh | Lhu | Lw => write!(f, "{m} {}, {}({})", i.rd, i.imm, i.rs),
        Sb | Sh | Sw => write!(f, "{m} {}, {}({})", i.rt, i.imm, i.rs),
        Beq | Bne => write!(f, "{m} {}, {}, {}", i.rs, i.rt, i.imm),
        Blez | Bgtz | Bltz | Bgez => write!(f, "{m} {}, {}", i.rs, i.imm),
        J | Jal => write!(f, "{m} {:#x}", (i.imm as u32) << 2),
        Jr => write!(f, "{m} {}", i.rs),
        Jalr => write!(f, "{m} {}, {}", i.rd, i.rs),
        Syscall | Break => write!(f, "{m}"),
    }
}

/// Disassembles one instruction to a `String`.
pub fn disassemble(i: &Instr) -> String {
    i.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    #[test]
    fn representative_formats() {
        let cases = [
            (Instr::alu(Op::Add, r(3), r(1), r(2)), "add $v1, $at, $v0"),
            (
                Instr::alu_imm(Op::Addi, r(8), r(9), -4),
                "addi $t0, $t1, -4",
            ),
            (Instr::load(Op::Lw, r(4), r(29), 8), "lw $a0, 8($sp)"),
            (Instr::store(Op::Sw, r(5), r(29), -12), "sw $a1, -12($sp)"),
            (Instr::branch(Op::Beq, r(1), r(2), 5), "beq $at, $v0, 5"),
            (
                Instr::alu_imm(Op::Lui, r(4), r(0), 0x1234 << 16),
                "lui $a0, 0x1234",
            ),
        ];
        for (i, expect) in cases {
            assert_eq!(disassemble(&i), expect);
        }
    }
}
