//! Functional interpreter — the architectural oracle.
//!
//! The interpreter executes programs one instruction at a time with no
//! timing model. The pipeline simulator retires instructions against a
//! lockstepped interpreter and asserts that every architectural effect
//! (register writes, memory writes, control flow, I/O) matches, which is the
//! workspace's primary end-to-end correctness check.

use crate::encode::decode;
use crate::instr::Instr;
use crate::mem::Memory;
use crate::op::{Op, OpKind};
use crate::program::{Program, STACK_TOP};
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use crate::semantics::{alu_result, branch_taken, effective_addr, extend_load};
use crate::syscall::{self, IoCtx};
use std::fmt;

/// Why the interpreter stopped making progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The program exited via the `EXIT` service with this code.
    Exited(u32),
    /// A `BREAK` instruction was executed.
    Break,
}

/// An unrecoverable execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The word at `pc` is not a valid instruction.
    BadInstruction {
        /// Faulting PC.
        pc: u32,
        /// The invalid word.
        word: u32,
    },
    /// A `SYSCALL` used an unknown service number.
    UnknownSyscall {
        /// Faulting PC.
        pc: u32,
        /// The `$v0` service number.
        service: u32,
    },
    /// The program ran past its instruction budget without exiting.
    InstrLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::BadInstruction { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#010x}")
            }
            InterpError::UnknownSyscall { pc, service } => {
                write!(f, "unknown syscall service {service} at pc {pc:#010x}")
            }
            InterpError::InstrLimit { limit } => {
                write!(f, "instruction budget of {limit} exhausted before exit")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The architectural effects of retiring one instruction.
///
/// This is the unit of comparison for pipeline-vs-oracle lockstep checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// PC of the retired instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// PC of the next instruction in program order.
    pub next_pc: u32,
    /// Register written, with the value, if any.
    pub reg_write: Option<(ArchReg, u32)>,
    /// `(addr, size, value)` stored, if the instruction is a store.
    pub store: Option<(u32, u32, u32)>,
    /// Branch direction, if the instruction is a conditional branch.
    pub taken: Option<bool>,
    /// Whether the program halted at this instruction.
    pub halt: Option<Halt>,
}

/// The functional interpreter.
///
/// # Examples
///
/// ```
/// use tracefill_isa::{asm::assemble, interp::Interp};
///
/// let prog = assemble(r#"
///         .text
/// main:   li   $t0, 6
///         li   $t1, 7
///         mul  $a0, $t0, $t1
///         li   $v0, 1         # print $a0
///         syscall
///         li   $v0, 10        # exit
///         syscall
/// "#)?;
/// let mut interp = Interp::new(&prog);
/// interp.run(1_000)?;
/// assert_eq!(interp.io().output, vec![42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interp {
    regs: [u32; NUM_ARCH_REGS],
    pc: u32,
    mem: Memory,
    io: IoCtx,
    halted: Option<Halt>,
    icount: u64,
}

impl Interp {
    /// Creates an interpreter with the program loaded and `$sp` initialized.
    pub fn new(program: &Program) -> Interp {
        Interp::with_io(program, IoCtx::default())
    }

    /// Creates an interpreter with an input stream for `READ_INT`.
    pub fn with_io(program: &Program, io: IoCtx) -> Interp {
        let mut regs = [0u32; NUM_ARCH_REGS];
        regs[ArchReg::SP.index()] = STACK_TOP;
        Interp {
            regs,
            pc: program.entry,
            mem: program.load(),
            io,
            halted: None,
            icount: 0,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: ArchReg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: ArchReg, val: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = val;
        }
    }

    /// The memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory image (for test setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The I/O channels.
    pub fn io(&self) -> &IoCtx {
        &self.io
    }

    /// Number of instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// How the program halted, if it has.
    pub fn halted(&self) -> Option<Halt> {
        self.halted
    }

    /// Executes one instruction and reports its architectural effects.
    ///
    /// Calling `step` on a halted interpreter returns the halt condition
    /// again without executing anything.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::BadInstruction`] or
    /// [`InterpError::UnknownSyscall`]; the interpreter is left at the
    /// faulting instruction.
    pub fn step(&mut self) -> Result<Retired, InterpError> {
        if let Some(h) = self.halted {
            return Ok(Retired {
                pc: self.pc,
                instr: crate::instr::NOP,
                next_pc: self.pc,
                reg_write: None,
                store: None,
                taken: None,
                halt: Some(h),
            });
        }
        let pc = self.pc;
        let word = self.mem.read_u32(pc);
        let instr = decode(word).map_err(|_| InterpError::BadInstruction { pc, word })?;
        let a = self.reg(instr.rs);
        let b = self.reg(instr.rt);

        let mut next_pc = pc.wrapping_add(4);
        let mut reg_write = None;
        let mut store = None;
        let mut taken = None;
        let mut halt = None;

        match instr.op.kind() {
            OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div => {
                if let Some(d) = instr.dest() {
                    reg_write = Some((d, alu_result(instr.op, a, b, instr.imm)));
                }
            }
            OpKind::Load => {
                let addr = effective_addr(instr.op, a, b, instr.imm);
                let size = instr.op.access_size().unwrap();
                let val = extend_load(instr.op, self.mem.read_sized(addr, size));
                if let Some(d) = instr.dest() {
                    reg_write = Some((d, val));
                }
            }
            OpKind::Store => {
                let addr = effective_addr(instr.op, a, b, instr.imm);
                let size = instr.op.access_size().unwrap();
                store = Some((addr, size, b));
            }
            OpKind::CondBranch => {
                let t = branch_taken(instr.op, a, b);
                taken = Some(t);
                if t {
                    next_pc = instr.taken_target(pc).unwrap();
                }
            }
            OpKind::Jump => match instr.op {
                Op::J => next_pc = instr.taken_target(pc).unwrap(),
                Op::Jal => {
                    reg_write = Some((ArchReg::RA, pc.wrapping_add(4)));
                    next_pc = instr.taken_target(pc).unwrap();
                }
                Op::Jr => next_pc = a,
                Op::Jalr => {
                    if let Some(d) = instr.dest() {
                        reg_write = Some((d, pc.wrapping_add(4)));
                    }
                    next_pc = a;
                }
                _ => unreachable!(),
            },
            OpKind::System => match instr.op {
                Op::Syscall => {
                    let service = self.reg(ArchReg::V0);
                    let a0 = self.reg(ArchReg::A0);
                    let outcome = syscall::execute(service, a0, &mut self.io).map_err(|e| {
                        InterpError::UnknownSyscall {
                            pc,
                            service: e.service,
                        }
                    })?;
                    reg_write = outcome.reg_write;
                    if let Some(code) = outcome.exit {
                        halt = Some(Halt::Exited(code));
                    }
                }
                Op::Break => halt = Some(Halt::Break),
                _ => unreachable!(),
            },
        }

        if let Some((r, v)) = reg_write {
            self.set_reg(r, v);
            if r.is_zero() {
                // Architecturally invisible; do not report it.
                reg_write = None;
            }
        }
        if let Some((addr, size, val)) = store {
            self.mem.write_sized(addr, size, val);
        }
        self.pc = next_pc;
        self.halted = halt;
        self.icount += 1;

        Ok(Retired {
            pc,
            instr,
            next_pc,
            reg_write,
            store,
            taken,
            halt,
        })
    }

    /// Runs until the program halts or `limit` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates [`step`](Interp::step) errors and returns
    /// [`InterpError::InstrLimit`] if the budget runs out first.
    pub fn run(&mut self, limit: u64) -> Result<Halt, InterpError> {
        for _ in 0..limit {
            let r = self.step()?;
            if let Some(h) = r.halt {
                return Ok(h);
            }
        }
        Err(InterpError::InstrLimit { limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(src: &str, input: &[u32]) -> Interp {
        let prog = assemble(src).expect("assembly failed");
        let mut i = Interp::with_io(&prog, IoCtx::with_input(input.iter().copied()));
        i.run(1_000_000).expect("program did not exit cleanly");
        i
    }

    #[test]
    fn loop_sums_to_output() {
        let i = run_program(
            r#"
                .text
        main:   li   $t0, 0          # sum
                li   $t1, 10         # counter
        loop:   add  $t0, $t0, $t1
                addi $t1, $t1, -1
                bgtz $t1, loop
                move $a0, $t0
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
        "#,
            &[],
        );
        assert_eq!(i.io().output, vec![55]);
    }

    #[test]
    fn memory_and_calls() {
        let i = run_program(
            r#"
                .text
        main:   la   $t0, table
                li   $t1, 3
                sll  $t2, $t1, 2
                lwx  $a0, $t0, $t2    # a0 = table[3]
                jal  double
                move $a0, $v1
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
        double: add  $v1, $a0, $a0
                jr   $ra
                .data
        table:  .word 10, 20, 30, 40, 50
        "#,
            &[],
        );
        assert_eq!(i.io().output, vec![80]);
    }

    #[test]
    fn read_int_feeds_v0() {
        let i = run_program(
            r#"
                .text
        main:   li   $v0, 5
                syscall              # v0 <- 21
                add  $a0, $v0, $v0
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
        "#,
            &[21],
        );
        assert_eq!(i.io().output, vec![42]);
    }

    #[test]
    fn break_halts() {
        let prog = assemble("        .text\nmain:   break\n").unwrap();
        let mut i = Interp::new(&prog);
        assert_eq!(i.run(10).unwrap(), Halt::Break);
        // Further steps keep reporting the halt.
        assert_eq!(i.step().unwrap().halt, Some(Halt::Break));
    }

    #[test]
    fn instr_limit_is_an_error() {
        let prog = assemble("        .text\nmain:   j main\n").unwrap();
        let mut i = Interp::new(&prog);
        assert!(matches!(
            i.run(100),
            Err(InterpError::InstrLimit { limit: 100 })
        ));
    }

    #[test]
    fn stores_take_effect() {
        let i = run_program(
            r#"
                .text
        main:   la   $t0, buf
                li   $t1, 0x1234
                sw   $t1, 0($t0)
                lh   $a0, 0($t0)
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
                .data
        buf:    .space 8
        "#,
            &[],
        );
        assert_eq!(i.io().output, vec![0x1234]);
    }
}
