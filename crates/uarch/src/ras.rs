//! Return address stack (RAS) with checkpoint repair.
//!
//! The fetch engine pushes on calls and pops on returns, speculatively.
//! Because the stack is small, checkpoints store a full copy and
//! misprediction recovery restores it wholesale — exact repair at a cost a
//! simulator can afford.

/// A fixed-depth circular return address stack.
///
/// Pushes beyond the configured depth overwrite the oldest entry (as real
/// hardware does); pops from an empty stack return `None`.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::ras::ReturnStack;
///
/// let mut ras = ReturnStack::new(4);
/// ras.push(0x400);
/// let snap = ras.snapshot();
/// ras.push(0x500);
/// assert_eq!(ras.pop(), Some(0x500));
/// ras.restore(snap);
/// assert_eq!(ras.pop(), Some(0x400));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnStack {
    entries: Vec<u32>,
    depth: usize,
}

/// A checkpointed copy of the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RasSnapshot {
    entries: Vec<u32>,
}

impl ReturnStack {
    /// Creates an empty stack holding at most `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> ReturnStack {
        assert!(depth > 0, "return stack needs at least one entry");
        ReturnStack {
            entries: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Pushes a return address, evicting the oldest entry when full.
    pub fn push(&mut self, addr: u32) {
        if self.entries.len() == self.depth {
            self.entries.remove(0);
        }
        self.entries.push(addr);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u32> {
        self.entries.pop()
    }

    /// The address a return would pop, without popping.
    pub fn top(&self) -> Option<u32> {
        self.entries.last().copied()
    }

    /// Captures the full stack for checkpoint repair.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot {
            entries: self.entries.clone(),
        }
    }

    /// Restores a checkpointed stack.
    pub fn restore(&mut self, snap: RasSnapshot) {
        self.entries = snap.entries;
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnStack::new(8);
        r.push(1);
        r.push(2);
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut r = ReturnStack::new(4);
        r.push(10);
        r.push(20);
        let snap = r.snapshot();
        r.pop();
        r.pop();
        r.push(99);
        r.restore(snap);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
    }
}
