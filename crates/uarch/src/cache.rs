//! Generic set-associative cache timing model.
//!
//! The cache tracks tags and true-LRU replacement only — data always lives
//! in the simulator's backing memory (`tracefill_isa::mem::Memory`); the
//! cache model answers "would this access have hit?".

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways * line_bytes`, or non-power-of-two sets/line size).
    pub fn sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^n");
        let per_way = self.bytes / self.ways;
        assert_eq!(
            per_way % self.line_bytes,
            0,
            "capacity {} not divisible by ways {} x line {}",
            self.bytes,
            self.ways,
            self.line_bytes
        );
        let sets = per_way / self.line_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
    /// Higher = more recently used.
    lru: u64,
}

/// Running hit/miss counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses that hit, or 1.0 with no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::cache::{CacheConfig, SetAssocCache};
///
/// // A tiny 2-way cache with two 16-byte lines per way.
/// let mut c = SetAssocCache::new(CacheConfig { bytes: 64, ways: 2, line_bytes: 16 });
/// assert!(!c.access(0x100));     // cold miss
/// assert!(c.access(0x104));      // same line
/// assert!(!c.access(0x200));     // other way of the same set
/// assert!(c.access(0x100));      // still resident
/// assert!(!c.access(0x300));     // evicts LRU (0x200)
/// assert!(!c.access(0x200));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    sets: u32,
    set_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let sets = config.sets();
        SetAssocCache {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            sets,
            set_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line_addr = addr >> self.set_shift;
        let set = line_addr & (self.sets - 1);
        let tag = line_addr >> self.sets.trailing_zeros();
        (set as usize, tag)
    }

    /// Looks up `addr` without modifying cache state.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_lines(set).iter().any(|l| l.valid && l.tag == tag)
    }

    fn set_lines(&self, set: usize) -> &[Line] {
        let w = self.config.ways as usize;
        &self.lines[set * w..(set + 1) * w]
    }

    /// Accesses `addr`: updates LRU, allocates on a miss, and returns
    /// whether it hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.set_and_tag(addr);
        let w = self.config.ways as usize;
        let lines = &mut self.lines[set * w..(set + 1) * w];

        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            self.stats.hits += 1;
            return true;
        }
        // Miss: replace the LRU (or first invalid) way.
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache set cannot be empty");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = clock;
        self.stats.misses += 1;
        false
    }

    /// Invalidates every line (e.g. across a serializing boundary in tests).
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            bytes: 128,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().sets, 4);
        let paper_tc_icache = CacheConfig {
            bytes: 4 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        assert_eq!(paper_tc_icache.sets(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        SetAssocCache::new(CacheConfig {
            bytes: 96,
            ways: 2,
            line_bytes: 16,
        });
    }

    #[test]
    fn lru_is_exact() {
        let mut c = tiny(); // 4 sets, 2 ways
                            // Three lines mapping to set 0 (stride = sets * line = 64).
        let (a, b, d) = (0u32, 64, 128);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        assert!(c.probe(0));
        let before = c.stats();
        assert!(!c.probe(128));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(4);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
