//! The multiple-branch predictor: three skewed pattern history tables.
//!
//! The paper's fetch engine predicts up to three conditional branches per
//! trace segment each cycle. A dedicated pattern history table (PHT) of
//! 2-bit saturating counters serves each *slot*: the first conditional
//! branch of the segment reads table 0, the second table 1, the third table
//! 2. Branch promotion makes later slots rare, so the tables are skewed in
//! size — 64K/16K/8K entries in the paper (≈32 KB of predictor storage
//! including the bias table).
//!
//! Tables are indexed gshare-style by the fetch address hashed with a
//! global history register. The history is updated speculatively at fetch
//! and repaired from checkpoints on misprediction.

/// Sizes of the three per-slot PHTs, in entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in tables for slots 0, 1, 2 (must be powers of two).
    pub table_entries: [u32; 3],
    /// Bits of global history folded into the index.
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    /// The paper's 64K/16K/8K configuration.
    fn default() -> PredictorConfig {
        PredictorConfig {
            table_entries: [64 * 1024, 16 * 1024, 8 * 1024],
            history_bits: 14,
        }
    }
}

/// A snapshot of speculative predictor state, stored in checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistorySnapshot(u32);

/// Outcome of a prediction: the direction plus the table index used, which
/// the caller passes back to [`MultiBranchPredictor::update`] at resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted taken?
    pub taken: bool,
    /// Which slot's table produced it.
    pub slot: u8,
    /// Index within that table.
    pub index: u32,
}

/// The three-table multiple-branch predictor.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::pht::MultiBranchPredictor;
///
/// let mut p = MultiBranchPredictor::default();
/// let pred = p.predict(0x40_0000, 0);
/// // Train the entry taken twice; it then predicts taken.
/// p.update(pred, true);
/// p.update(pred, true);
/// assert!(p.predict(0x40_0000, 0).taken);
/// ```
#[derive(Debug, Clone)]
pub struct MultiBranchPredictor {
    tables: [Vec<u8>; 3],
    ghr: u32,
    history_mask: u32,
}

impl Default for MultiBranchPredictor {
    fn default() -> MultiBranchPredictor {
        MultiBranchPredictor::new(PredictorConfig::default())
    }
}

impl MultiBranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(config: PredictorConfig) -> MultiBranchPredictor {
        for n in config.table_entries {
            assert!(n.is_power_of_two(), "PHT sizes must be powers of two");
        }
        MultiBranchPredictor {
            tables: [
                vec![1; config.table_entries[0] as usize],
                vec![1; config.table_entries[1] as usize],
                vec![1; config.table_entries[2] as usize],
            ],
            ghr: 0,
            history_mask: (1u32 << config.history_bits.min(31)) - 1,
        }
    }

    fn index(&self, fetch_addr: u32, slot: usize) -> u32 {
        let mask = self.tables[slot].len() as u32 - 1;
        ((fetch_addr >> 2) ^ (self.ghr & self.history_mask)) & mask
    }

    /// Predicts the direction of the `slot`-th unpromoted conditional
    /// branch of the segment fetched at `fetch_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 3`.
    pub fn predict(&self, fetch_addr: u32, slot: usize) -> Prediction {
        let index = self.index(fetch_addr, slot);
        Prediction {
            taken: self.tables[slot][index as usize] >= 2,
            slot: slot as u8,
            index,
        }
    }

    /// Trains the counter a prediction came from with the actual outcome.
    pub fn update(&mut self, pred: Prediction, taken: bool) {
        let c = &mut self.tables[pred.slot as usize][pred.index as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Speculatively shifts one predicted outcome into the history.
    pub fn push_history(&mut self, taken: bool) {
        self.ghr = (self.ghr << 1) | taken as u32;
    }

    /// Captures the speculative history for checkpoint repair.
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot(self.ghr)
    }

    /// Restores the history captured at a checkpoint (misprediction repair).
    pub fn restore(&mut self, snap: HistorySnapshot) {
        self.ghr = snap.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_both_ways() {
        let mut p = MultiBranchPredictor::default();
        let pr = p.predict(0x80, 2);
        for _ in 0..10 {
            p.update(pr, true);
        }
        assert!(p.predict(0x80, 2).taken);
        // Two not-taken outcomes flip a saturated counter back.
        p.update(pr, false);
        p.update(pr, false);
        assert!(!p.predict(0x80, 2).taken);
    }

    #[test]
    fn slots_use_distinct_tables() {
        let mut p = MultiBranchPredictor::default();
        let pr0 = p.predict(0x40, 0);
        p.update(pr0, true);
        p.update(pr0, true);
        assert!(p.predict(0x40, 0).taken);
        // Slot 1 for the same address is untrained.
        assert!(!p.predict(0x40, 1).taken);
    }

    #[test]
    fn history_affects_index_and_restores() {
        let mut p = MultiBranchPredictor::default();
        let snap = p.snapshot();
        let before = p.predict(0x1234_0000, 0).index;
        p.push_history(true);
        let after = p.predict(0x1234_0000, 0).index;
        assert_ne!(before, after);
        p.restore(snap);
        assert_eq!(p.predict(0x1234_0000, 0).index, before);
    }
}
