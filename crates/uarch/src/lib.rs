//! # tracefill-uarch
//!
//! Reusable microarchitectural substrates for the `tracefill` simulator:
//!
//! * [`cache`] — generic set-associative cache with true-LRU replacement;
//! * [`hierarchy`] — L1I/L1D/L2/DRAM latency model with the paper's
//!   parameters as defaults;
//! * [`pht`] — the three-table multiple-branch predictor (64K/16K/8K 2-bit
//!   counters) that predicts up to three conditional branches per fetched
//!   trace segment;
//! * [`bias`] — the 8 KB bias table driving branch promotion (threshold:
//!   64 consecutive identical outcomes);
//! * [`ras`] — return address stack with checkpoint repair;
//! * [`indirect`] — last-target buffer for indirect jumps.
//!
//! These structures are deliberately free of pipeline knowledge: the
//! `tracefill-sim` crate wires them into the fetch/rename/execute loop, and
//! `tracefill-core` (the fill unit and trace cache) consumes [`bias`] when
//! deciding which branches to promote.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bias;
pub mod cache;
pub mod hierarchy;
pub mod indirect;
pub mod pht;
pub mod ras;
