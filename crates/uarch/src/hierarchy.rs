//! Memory hierarchy timing: L1 instruction / L1 data / unified L2 / DRAM.
//!
//! Latencies follow §3 of the paper: first-level hits are 1 cycle (loads
//! have a 1-cycle latency after address generation), second-level hits take
//! 6 cycles, and misses to memory take 50 cycles. Contention is not modeled
//! (the paper quotes its memory latency "if there is no bus contention").

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// Latency parameters of the hierarchy, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTimings {
    /// First-level hit latency.
    pub l1_hit: u32,
    /// Additional latency for an L2 hit.
    pub l2_hit: u32,
    /// Additional latency for a DRAM access.
    pub dram: u32,
}

impl Default for MemTimings {
    fn default() -> MemTimings {
        MemTimings {
            l1_hit: 1,
            l2_hit: 6,
            dram: 50,
        }
    }
}

/// Full configuration of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Supporting instruction cache (the paper: 4 KB, 4-way).
    pub l1i: CacheConfig,
    /// Data cache (the paper: 64 KB, 4-way, 1-cycle loads).
    pub l1d: CacheConfig,
    /// Unified second level (the paper: 1 MB, 6-cycle).
    pub l2: CacheConfig,
    /// Latencies.
    pub timings: MemTimings,
}

impl Default for HierarchyConfig {
    /// The paper's configuration.
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                bytes: 4 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l1d: CacheConfig {
                bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l2: CacheConfig {
                bytes: 1024 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            timings: MemTimings::default(),
        }
    }
}

/// The two first-level sides of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Instruction fetch.
    Instr,
    /// Data access.
    Data,
}

/// Timing model of the cache/memory hierarchy.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::hierarchy::{MemHierarchy, HierarchyConfig, Side};
///
/// let mut m = MemHierarchy::new(HierarchyConfig::default());
/// let cold = m.access(Side::Data, 0x1000_0000);
/// assert_eq!(cold, 1 + 6 + 50);             // L1 miss, L2 miss, DRAM
/// assert_eq!(m.access(Side::Data, 0x1000_0000), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    timings: MemTimings,
}

impl MemHierarchy {
    /// Creates a hierarchy with all caches empty.
    pub fn new(config: HierarchyConfig) -> MemHierarchy {
        MemHierarchy {
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            l2: SetAssocCache::new(config.l2),
            timings: config.timings,
        }
    }

    /// Performs one access and returns its total latency in cycles.
    pub fn access(&mut self, side: Side, addr: u32) -> u32 {
        let l1 = match side {
            Side::Instr => &mut self.l1i,
            Side::Data => &mut self.l1d,
        };
        let mut latency = self.timings.l1_hit;
        if !l1.access(addr) {
            latency += self.timings.l2_hit;
            if !self.l2.access(addr) {
                latency += self.timings.dram;
            }
        }
        latency
    }

    /// Per-cache hit/miss statistics `(l1i, l1d, l2)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_of_latencies() {
        let mut m = MemHierarchy::new(HierarchyConfig::default());
        assert_eq!(m.access(Side::Instr, 0x40_0000), 57);
        // Same line now in both L1I and L2.
        assert_eq!(m.access(Side::Instr, 0x40_0004), 1);
        // A *data* access to the same line misses L1D but hits L2.
        assert_eq!(m.access(Side::Data, 0x40_0000), 7);
    }

    #[test]
    fn separate_l1_sides() {
        let mut m = MemHierarchy::new(HierarchyConfig::default());
        m.access(Side::Data, 0x100);
        let (i, d, _) = m.stats();
        assert_eq!(i.hits + i.misses, 0);
        assert_eq!(d.misses, 1);
    }
}
