//! Branch bias table and branch promotion.
//!
//! Branch promotion (Patel, Evers & Patt, ISCA-25) dynamically identifies
//! conditional branches that are strongly biased and *promotes* them: the
//! fill unit embeds a static prediction in the trace segment, and the
//! promoted branch no longer consumes one of the three per-segment dynamic
//! prediction slots. The paper promotes after **64 consecutive identical
//! outcomes** using an 8 KB bias table (one byte per entry: 1 direction bit
//! plus a 7-bit run counter).

/// Configuration of the bias table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiasConfig {
    /// Number of (tagless, PC-indexed) entries; power of two.
    pub entries: u32,
    /// Consecutive identical outcomes required to promote.
    pub threshold: u8,
}

impl Default for BiasConfig {
    /// The paper's 8 K entries / threshold 64.
    fn default() -> BiasConfig {
        BiasConfig {
            entries: 8 * 1024,
            threshold: 64,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BiasEntry {
    dir: bool,
    run: u8,
}

/// The bias table.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::bias::{BiasTable, BiasConfig};
///
/// let mut t = BiasTable::new(BiasConfig { entries: 64, threshold: 4 });
/// for _ in 0..4 {
///     t.observe(0x40, true);
/// }
/// assert_eq!(t.promoted(0x40), Some(true));
/// t.observe(0x40, false); // broken run demotes immediately
/// assert_eq!(t.promoted(0x40), None);
/// ```
#[derive(Debug, Clone)]
pub struct BiasTable {
    entries: Vec<BiasEntry>,
    threshold: u8,
    promotions: u64,
    demotions: u64,
}

impl Default for BiasTable {
    fn default() -> BiasTable {
        BiasTable::new(BiasConfig::default())
    }
}

impl BiasTable {
    /// Creates an empty bias table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `threshold` is 0 or
    /// exceeds 127 (it must fit the 7-bit run counter).
    pub fn new(config: BiasConfig) -> BiasTable {
        assert!(config.entries.is_power_of_two());
        assert!(
            (1..=127).contains(&config.threshold),
            "threshold must fit a 7-bit counter"
        );
        BiasTable {
            entries: vec![BiasEntry::default(); config.entries as usize],
            threshold: config.threshold,
            promotions: 0,
            demotions: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) & (self.entries.len() as u32 - 1)) as usize
    }

    /// Records a retired outcome of the branch at `pc`.
    pub fn observe(&mut self, pc: u32, taken: bool) {
        let threshold = self.threshold;
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if e.run > 0 && e.dir == taken {
            let was = e.run >= threshold;
            e.run = (e.run + 1).min(127);
            if !was && e.run >= threshold {
                self.promotions += 1;
            }
        } else {
            if e.run >= threshold {
                self.demotions += 1;
            }
            e.dir = taken;
            e.run = 1;
        }
    }

    /// If the branch at `pc` is currently promoted, its static direction.
    pub fn promoted(&self, pc: u32) -> Option<bool> {
        let e = self.entries[self.index(pc)];
        (e.run >= self.threshold).then_some(e.dir)
    }

    /// Number of promotion events so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Number of demotion events (bias runs broken after promotion).
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BiasTable {
        BiasTable::new(BiasConfig {
            entries: 16,
            threshold: 3,
        })
    }

    #[test]
    fn promotion_needs_consecutive_outcomes() {
        let mut t = small();
        t.observe(0, true);
        t.observe(0, true);
        t.observe(0, false); // break the run
        t.observe(0, false);
        t.observe(0, false);
        assert_eq!(t.promoted(0), Some(false));
        assert_eq!(t.promotions(), 1);
    }

    #[test]
    fn run_counter_saturates() {
        let mut t = small();
        for _ in 0..1000 {
            t.observe(4, true);
        }
        assert_eq!(t.promoted(4), Some(true));
    }

    #[test]
    fn aliasing_shares_entries() {
        let mut t = small(); // 16 entries => pcs 0 and 64 alias... (64>>2)&15 = 0
        for _ in 0..3 {
            t.observe(0, true);
        }
        assert_eq!(t.promoted(64), Some(true));
    }

    #[test]
    fn demotion_counts() {
        let mut t = small();
        for _ in 0..3 {
            t.observe(8, true);
        }
        t.observe(8, false);
        assert_eq!(t.demotions(), 1);
        assert_eq!(t.promoted(8), None);
    }

    #[test]
    #[should_panic(expected = "7-bit")]
    fn threshold_must_fit() {
        BiasTable::new(BiasConfig {
            entries: 8,
            threshold: 128,
        });
    }
}
