//! Indirect-branch target prediction (last-target buffer).
//!
//! `JR`/`JALR` through jump tables (interpreter dispatch, vtables) need a
//! target prediction before the register value is known. A small tagless
//! table remembers the last observed target per PC; returns are handled by
//! the [`ReturnStack`](crate::ras::ReturnStack) instead.

/// Configuration of the target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetBufferConfig {
    /// Number of entries (power of two).
    pub entries: u32,
}

impl Default for TargetBufferConfig {
    fn default() -> TargetBufferConfig {
        TargetBufferConfig { entries: 512 }
    }
}

/// Last-target predictor for indirect jumps.
///
/// # Examples
///
/// ```
/// use tracefill_uarch::indirect::TargetBuffer;
///
/// let mut t = TargetBuffer::default();
/// assert_eq!(t.predict(0x400), None);
/// t.update(0x400, 0x1234);
/// assert_eq!(t.predict(0x400), Some(0x1234));
/// ```
#[derive(Debug, Clone)]
pub struct TargetBuffer {
    targets: Vec<u32>,
}

impl Default for TargetBuffer {
    fn default() -> TargetBuffer {
        TargetBuffer::new(TargetBufferConfig::default())
    }
}

impl TargetBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is not a power of two.
    pub fn new(config: TargetBufferConfig) -> TargetBuffer {
        assert!(config.entries.is_power_of_two());
        TargetBuffer {
            targets: vec![0; config.entries as usize],
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) & (self.targets.len() as u32 - 1)) as usize
    }

    /// The last observed target for the indirect jump at `pc`, if any.
    pub fn predict(&self, pc: u32) -> Option<u32> {
        let t = self.targets[self.index(pc)];
        (t != 0).then_some(t)
    }

    /// Records the resolved target of the indirect jump at `pc`.
    pub fn update(&mut self, pc: u32, target: u32) {
        let idx = self.index(pc);
        self.targets[idx] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_target_wins() {
        let mut t = TargetBuffer::new(TargetBufferConfig { entries: 8 });
        t.update(4, 100);
        t.update(4, 200);
        assert_eq!(t.predict(4), Some(200));
    }

    #[test]
    fn aliasing() {
        let mut t = TargetBuffer::new(TargetBufferConfig { entries: 8 });
        t.update(0, 42);
        // pc 32 aliases with 8 entries (32>>2 & 7 == 0).
        assert_eq!(t.predict(32), Some(42));
    }
}
