//! Property tests for the microarchitectural substrates.

use proptest::prelude::*;
use tracefill_uarch::bias::{BiasConfig, BiasTable};
use tracefill_uarch::cache::{CacheConfig, SetAssocCache};
use tracefill_uarch::pht::MultiBranchPredictor;
use tracefill_uarch::ras::ReturnStack;

proptest! {
    /// The most recently used line is never the one evicted: after any
    /// access sequence, re-touching the last address always hits.
    #[test]
    fn mru_line_survives(addrs in prop::collection::vec(0u32..0x4000, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig { bytes: 256, ways: 2, line_bytes: 16 });
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed address must be resident");
        }
    }

    /// A direct-mapped-equivalent working set that fits the cache never
    /// misses after the first pass.
    #[test]
    fn resident_working_set_always_hits(start in 0u32..1024) {
        let cfg = CacheConfig { bytes: 1024, ways: 4, line_bytes: 32 };
        let mut c = SetAssocCache::new(cfg);
        let lines: Vec<u32> = (0..cfg.bytes / cfg.line_bytes)
            .map(|i| start + i * cfg.line_bytes)
            .collect();
        for &a in &lines {
            c.access(a);
        }
        let misses_before = c.stats().misses;
        for _ in 0..3 {
            for &a in &lines {
                prop_assert!(c.access(a));
            }
        }
        prop_assert_eq!(c.stats().misses, misses_before);
    }

    /// Training a PHT entry with a constant direction always converges to
    /// predicting that direction within two updates.
    #[test]
    fn pht_converges(pc in any::<u32>(), dir in any::<bool>(), slot in 0usize..3) {
        let mut p = MultiBranchPredictor::default();
        let pr = p.predict(pc, slot);
        p.update(pr, dir);
        p.update(pr, dir);
        prop_assert_eq!(p.predict(pc, slot).taken, dir);
    }

    /// History snapshots restore exactly regardless of intervening pushes.
    #[test]
    fn history_restore_is_exact(pushes in prop::collection::vec(any::<bool>(), 0..40), pc in any::<u32>()) {
        let mut p = MultiBranchPredictor::default();
        let snap = p.snapshot();
        let before = p.predict(pc, 0).index;
        for t in pushes {
            p.push_history(t);
        }
        p.restore(snap);
        prop_assert_eq!(p.predict(pc, 0).index, before);
    }

    /// The bias table promotes after exactly `threshold` consecutive
    /// identical outcomes and demotes on the first contrary one.
    /// (Threshold 1 is excluded: there a single contrary outcome is
    /// itself a full run and legitimately re-promotes the new direction.)
    #[test]
    fn promotion_boundary(threshold in 2u8..32, dir in any::<bool>()) {
        let mut t = BiasTable::new(BiasConfig { entries: 64, threshold });
        for i in 0..threshold {
            prop_assert_eq!(t.promoted(0), None, "promoted after only {} outcomes", i);
            t.observe(0, dir);
        }
        prop_assert_eq!(t.promoted(0), Some(dir));
        t.observe(0, !dir);
        prop_assert_eq!(t.promoted(0), None);
    }

    /// RAS push/pop behaves as a bounded stack: popping after n pushes
    /// returns the last min(n, depth) addresses in reverse order.
    #[test]
    fn ras_is_a_bounded_stack(addrs in prop::collection::vec(any::<u32>(), 0..24), depth in 1usize..12) {
        let mut r = ReturnStack::new(depth);
        for &a in &addrs {
            r.push(a);
        }
        let expect: Vec<u32> = addrs.iter().rev().take(depth).copied().collect();
        let mut got = Vec::new();
        while let Some(a) = r.pop() {
            got.push(a);
        }
        prop_assert_eq!(got, expect);
    }
}
