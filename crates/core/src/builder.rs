//! Segment construction from the retire stream.
//!
//! As the machine retires instructions, the fill unit collects them into a
//! pending segment, marking dependencies as it goes. The builder implements
//! the paper's termination rules: up to 16 instructions and 3 conditional
//! branches per segment; returns, indirect jumps and serializing
//! instructions force termination; subroutine calls and other unconditional
//! branches do not. With trace packing on (the baseline), filling continues
//! straight through block boundaries.

use crate::config::FillConfig;
use crate::segment::{BranchInfo, Provenance, SegEnd, SegSlot, Segment, SrcRef};
use tracefill_isa::reg::NUM_ARCH_REGS;
use tracefill_isa::Instr;

/// One retired instruction offered to the fill unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillInput {
    /// Retired PC.
    pub pc: u32,
    /// The architectural instruction.
    pub instr: Instr,
    /// Resolved direction for conditional branches.
    pub taken: Option<bool>,
    /// The bias table's static direction if the branch is currently
    /// promoted (queried by the caller at retire time).
    pub promoted: Option<bool>,
    /// This instruction headed a fetch bundle after a trace-cache miss:
    /// its address is one the fetch engine looks up, so the fill unit
    /// starts a fresh segment here (fetch-aligned fill).
    pub fetch_miss_head: bool,
}

/// Incremental builder for one trace segment.
#[derive(Debug, Clone)]
pub struct SegmentBuilder {
    slots: Vec<SegSlot>,
    branches: Vec<BranchInfo>,
    last_writer: [Option<u8>; NUM_ARCH_REGS],
    block: u8,
    /// Loop body length observed at the first wrap back to the head
    /// (loop-aligned fill).
    wrap_body: Option<usize>,
}

impl SegmentBuilder {
    /// Creates an empty builder.
    pub fn new() -> SegmentBuilder {
        SegmentBuilder {
            slots: Vec::with_capacity(16),
            branches: Vec::new(),
            last_writer: [None; NUM_ARCH_REGS],
            block: 0,
            wrap_body: None,
        }
    }

    /// Number of instructions collected so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the pending segment can absorb `input` under `cfg`'s limits.
    pub fn can_accept(&self, input: &FillInput, cfg: &FillConfig) -> bool {
        if self.slots.is_empty() {
            return true;
        }
        if self.slots.len() >= cfg.max_slots {
            return false;
        }
        if input.instr.op.is_cond_branch() && self.branches.len() >= cfg.max_cond_branches {
            return false;
        }
        // Loop-aligned fill: when the stream wraps back to our own head
        // and another whole iteration would not fit, start a fresh
        // segment — hot-loop lines then begin at stable addresses and
        // hold a whole number of iterations.
        if cfg.align_loops && input.pc == self.slots[0].pc {
            let body = self.wrap_body.unwrap_or(self.slots.len());
            if self.slots.len() + body > cfg.max_slots {
                return false;
            }
        }
        true
    }

    /// The start address of the pending segment, if any.
    pub fn start_pc(&self) -> Option<u32> {
        self.slots.first().map(|s| s.pc)
    }

    /// Whether the segment must terminate now that `input` has been pushed
    /// (call after [`push`](Self::push)).
    pub fn must_terminate_after(&self, input: &FillInput, cfg: &FillConfig) -> Option<SegEnd> {
        let op = input.instr.op;
        if op.is_indirect() {
            return Some(SegEnd::Indirect);
        }
        if op.is_serializing() {
            return Some(SegEnd::Serialize);
        }
        if self.slots.len() >= cfg.max_slots {
            return Some(SegEnd::Full);
        }
        if !cfg.packing && op.is_cond_branch() && self.branches.len() >= cfg.max_cond_branches {
            // Without trace packing the segment ends with its last block.
            return Some(SegEnd::BranchLimit);
        }
        None
    }

    /// Appends one retired instruction, marking its dependencies.
    ///
    /// # Panics
    ///
    /// Panics if the segment is already at the slot limit (callers check
    /// [`can_accept`](Self::can_accept) first).
    pub fn push(&mut self, input: FillInput) {
        assert!(self.slots.len() < 16 * 4, "builder overfilled");
        if !self.slots.is_empty() && input.pc == self.slots[0].pc && self.wrap_body.is_none() {
            self.wrap_body = Some(self.slots.len());
        }
        let instr = input.instr;
        let idx = self.slots.len() as u8;

        // Source dataflow locations, before recording this slot's write.
        let mut srcs: [Option<SrcRef>; 2] = [None, None];
        for (k, reg) in instr.srcs().enumerate() {
            srcs[k] = Some(if reg.is_zero() {
                SrcRef::LiveIn(reg)
            } else {
                match self.last_writer[reg.index()] {
                    Some(w) => SrcRef::Internal(w),
                    None => SrcRef::LiveIn(reg),
                }
            });
        }
        let dest = instr.dest();
        if let Some(d) = dest {
            self.last_writer[d.index()] = Some(idx);
        }

        if instr.op.is_cond_branch() {
            let taken = input
                .taken
                .expect("conditional branch retired without direction");
            self.branches.push(BranchInfo {
                slot: idx,
                taken,
                promoted: input.promoted == Some(taken),
            });
        }

        self.slots.push(SegSlot {
            pc: input.pc,
            orig: instr,
            op: instr.op,
            imm: instr.imm,
            srcs,
            dest,
            block: self.block,
            live_out: false, // computed at finalize
            is_move: false,
            move_src: None,
            scadd: None,
            taken: input.taken.filter(|_| instr.op.is_cond_branch()),
            reassociated: false,
        });

        if instr.op.is_cond_branch() {
            self.block += 1;
        }
    }

    /// Finalizes the pending segment (computing live-out marking and the
    /// identity issue order) and resets the builder.
    ///
    /// Returns `None` if nothing was collected.
    pub fn finalize(&mut self, end: SegEnd) -> Option<Segment> {
        if self.slots.is_empty() {
            return None;
        }
        let mut slots = std::mem::take(&mut self.slots);
        let branches = std::mem::take(&mut self.branches);
        self.last_writer = [None; NUM_ARCH_REGS];
        self.block = 0;
        self.wrap_body = None;

        // live_out: the final writer of each architectural register.
        let mut seen = [false; NUM_ARCH_REGS];
        for slot in slots.iter_mut().rev() {
            if let Some(d) = slot.dest {
                slot.live_out = !seen[d.index()];
                seen[d.index()] = true;
            }
        }

        let n = slots.len() as u8;
        let seg = Segment {
            start_pc: slots[0].pc,
            slots,
            issue_pos: (0..n).collect(),
            branches,
            end,
            provenance: Provenance::default(),
        };
        debug_assert_eq!(seg.check_invariants(), Ok(()));
        Some(seg)
    }
}

impl Default for SegmentBuilder {
    fn default() -> SegmentBuilder {
        SegmentBuilder::new()
    }
}

/// Convenience: runs a retire stream through a builder with `cfg`,
/// returning every finalized segment. A trailing partial segment is
/// flushed with [`SegEnd::Flushed`] (the in-pipeline [`FillUnit`] keeps it
/// pending instead, as hardware does).
///
/// [`FillUnit`]: crate::fill::FillUnit
pub fn build_segments(inputs: &[FillInput], cfg: &FillConfig) -> Vec<Segment> {
    let mut b = SegmentBuilder::new();
    let mut out = Vec::new();
    for &input in inputs {
        if !b.can_accept(&input, cfg) {
            let end = if b.len() >= cfg.max_slots {
                SegEnd::Full
            } else if cfg.align_loops && b.start_pc() == Some(input.pc) {
                SegEnd::Loop
            } else {
                SegEnd::BranchLimit
            };
            out.extend(b.finalize(end));
        }
        b.push(input);
        if let Some(end) = b.must_terminate_after(&input, cfg) {
            out.extend(b.finalize(end));
        }
    }
    out.extend(b.finalize(SegEnd::Flushed));
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tracefill_isa::{ArchReg, Op};

    pub fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    /// A small straight-line retire stream used across the crate's tests.
    pub fn simple_inputs() -> Vec<FillInput> {
        let base = 0x40_0000u32;
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::alu_imm(Op::Sll, r(10), r(8), 2),
            Instr::alu(Op::Add, r(11), r(10), r(12)),
            Instr::load(Op::Lw, r(13), r(11), 8),
            Instr::branch(Op::Bne, r(13), r(0), 5),
            Instr::alu_imm(Op::Addi, r(14), r(8), 4),
            Instr::store(Op::Sw, r(14), r(29), -4),
            Instr {
                op: Op::Jr,
                rd: r(0),
                rs: ArchReg::RA,
                rt: r(0),
                imm: 0,
            },
        ];
        instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: base + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect()
    }

    pub fn simple_segment() -> Segment {
        let segs = build_segments(&simple_inputs(), &FillConfig::default());
        assert_eq!(segs.len(), 1);
        segs.into_iter().next().unwrap()
    }

    #[test]
    fn dependencies_are_marked() {
        let seg = simple_segment();
        // Slot 1 (sll of $t0) depends internally on slot 0.
        assert_eq!(seg.slots[1].srcs[0], Some(SrcRef::Internal(0)));
        // Slot 2 (add) depends on slot 1 and live-in $t4.
        assert_eq!(seg.slots[2].srcs[0], Some(SrcRef::Internal(1)));
        assert_eq!(seg.slots[2].srcs[1], Some(SrcRef::LiveIn(r(12))));
        // Slot 0's source is live-in.
        assert_eq!(seg.slots[0].srcs[0], Some(SrcRef::LiveIn(r(9))));
        seg.check_invariants().unwrap();
    }

    #[test]
    fn blocks_split_at_conditional_branches() {
        let seg = simple_segment();
        assert_eq!(seg.slots[4].block, 0); // the branch itself
        assert_eq!(seg.slots[5].block, 1); // after the branch
        assert_eq!(seg.end, SegEnd::Indirect);
    }

    #[test]
    fn live_out_marks_final_writers() {
        let seg = simple_segment();
        // $t0 is written at slot 0 only -> live out.
        assert!(seg.slots[0].live_out);
    }

    #[test]
    fn slot_limit_finalizes() {
        let mut inputs = Vec::new();
        for i in 0..40u32 {
            inputs.push(FillInput {
                pc: 0x40_0000 + 4 * i,
                instr: Instr::alu_imm(Op::Addi, r(8), r(8), 1),
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            });
        }
        let segs = build_segments(&inputs, &FillConfig::default());
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].slots.len(), 16);
        assert_eq!(segs[1].slots.len(), 16);
        assert_eq!(segs[0].end, SegEnd::Full);
        assert_eq!(segs[2].end, SegEnd::Flushed);
        assert_eq!(segs[2].slots.len(), 8);
    }

    #[test]
    fn branch_limit_with_and_without_packing() {
        // Stream of branch+add pairs.
        let mut inputs = Vec::new();
        for i in 0..12u32 {
            let instr = if i % 2 == 0 {
                Instr::branch(Op::Beq, r(8), r(0), 1)
            } else {
                Instr::alu_imm(Op::Addi, r(8), r(8), 1)
            };
            inputs.push(FillInput {
                pc: 0x40_0000 + 4 * i,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            });
        }
        let packed = build_segments(&inputs, &FillConfig::default());
        // Packing: the 4th branch cannot enter; segment carries 3 branches
        // plus the adds around them.
        assert_eq!(packed[0].branches.len(), 3);
        assert!(packed[0].slots.len() > 5);

        let cfg = FillConfig {
            packing: false,
            ..FillConfig::default()
        };
        let unpacked = build_segments(&inputs, &cfg);
        // Without packing the segment ends right at its 3rd branch.
        assert_eq!(unpacked[0].branches.len(), 3);
        assert!(unpacked[0].slots.last().unwrap().op.is_cond_branch());
    }

    #[test]
    fn serializing_terminates() {
        let inputs = vec![
            FillInput {
                pc: 0x40_0000,
                instr: Instr::alu_imm(Op::Addi, r(2), r(0), 10),
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
            FillInput {
                pc: 0x40_0004,
                instr: Instr {
                    op: Op::Syscall,
                    rd: r(0),
                    rs: r(0),
                    rt: r(0),
                    imm: 0,
                },
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
        ];
        let segs = build_segments(&inputs, &FillConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, SegEnd::Serialize);
    }

    #[test]
    fn promotion_flag_requires_direction_match() {
        let mk = |promoted, taken| FillInput {
            pc: 0x40_0000,
            instr: Instr::branch(Op::Beq, r(8), r(0), 1),
            taken: Some(taken),
            promoted,
            fetch_miss_head: false,
        };
        let mut b = SegmentBuilder::new();
        b.push(mk(Some(true), true));
        b.push(mk(Some(true), false)); // stale promotion, direction differs
        b.push(mk(None, true));
        let seg = b.finalize(SegEnd::BranchLimit).unwrap();
        assert!(seg.branches[0].promoted);
        assert!(!seg.branches[1].promoted);
        assert!(!seg.branches[2].promoted);
    }
}
