//! Segment lifetime ledger: per-segment, per-pass ROI attribution.
//!
//! The fill unit invests work in every segment it builds — pass
//! latency, verification, cache storage — and the aggregate counters of
//! the metrics registry cannot say *which* segments repaid it. The
//! ledger is a deterministic journal keyed by
//! [`Provenance::seg_id`](crate::segment::Provenance::seg_id) that
//! follows each segment from fill-unit construction (build cycle, pass
//! attribution) through cache residency (hits, eviction cause and age)
//! to the fetch/retire path (uops fetched, retired, and squashed while
//! speculative), and folds the journal into a per-pass ROI report.
//!
//! Collection is event-driven and purely observational: the simulator
//! calls [`Ledger::on_insert`] / [`Ledger::on_fetch`] /
//! [`Ledger::on_retire`] / [`Ledger::on_squash`] only when the ledger is
//! enabled, and none of those calls feed back into timing — a ledger-on
//! run retires the same instructions in the same cycles as a ledger-off
//! run.
//!
//! # The ROI proxy
//!
//! The per-pass "estimated cycles saved" is a deterministic first-order
//! proxy, not a measured counterfactual: each instruction a pass
//! transformed is counted as one issue-slot/dependence-height unit saved
//! *per cache hit* that re-delivered the optimized line (reuse is what
//! amortizes fill-unit work — see the reuse-attribution argument in
//! "Decanting the Contribution of Instruction Types and Loop Structures
//! in the Reuse of Traces"). So a segment with 3 marked moves and 40
//! hits credits the moves pass with 120 units. Placement counts one unit
//! per hit for a permuted segment.

use crate::opt::OptCounts;
use crate::segment::Segment;
use crate::tcache::InsertOutcome;
use std::collections::BTreeMap;
use tracefill_util::{Histogram, Json, Registry};

/// Why a cached line's residency ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictCause {
    /// Displaced by a different line from a full set.
    Conflict,
    /// Replaced in place by a rebuilt same-address, same-path segment.
    Refresh,
    /// Invalidated by the self-repair path after a divergence implicated
    /// the line.
    Repair,
}

impl EvictCause {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EvictCause::Conflict => "conflict",
            EvictCause::Refresh => "refresh",
            EvictCause::Repair => "repair",
        }
    }
}

/// One segment's lifetime record, from cache insertion to eviction (or
/// to end-of-run, for lines still resident).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegRecord {
    /// The fill unit's monotonic segment id.
    pub seg_id: u64,
    /// Fetch address the segment answers to.
    pub start_pc: u32,
    /// Segment length in slots.
    pub len: u8,
    /// Why the fill unit ended the segment (stable name).
    pub end: &'static str,
    /// Per-pass transformation counts from the fill unit.
    pub opt_counts: OptCounts,
    /// The segment ends in a backward (loop) branch.
    pub loop_seg: bool,
    /// At least one slot was rewritten by an optimization pass.
    pub transformed: bool,
    /// Cycle the fill unit finalized the segment.
    pub build_cycle: u64,
    /// Cycle the segment entered the trace cache.
    pub insert_cycle: u64,
    /// Trace-cache lookup hits served by this line.
    pub hits: u64,
    /// Uops delivered to the pipeline from this line's hits.
    pub uops_fetched: u64,
    /// Uops from this line that retired.
    pub uops_retired: u64,
    /// Uops from this line squashed by mispredict recovery.
    pub uops_squashed: u64,
    /// `(cycle, cause)` when the line left the cache; `None` while it is
    /// still resident.
    pub evicted: Option<(u64, EvictCause)>,
}

impl SegRecord {
    /// Cycles the line spent (or has spent) in the cache; still-resident
    /// lines are measured up to `now`.
    pub fn residency(&self, now: u64) -> u64 {
        let end = self.evicted.map_or(now, |(c, _)| c);
        end.saturating_sub(self.insert_cycle)
    }

    /// Dead on arrival: built, cached, and displaced without serving a
    /// single hit.
    pub fn is_doa(&self) -> bool {
        self.evicted.is_some() && self.hits == 0
    }

    /// The ROI proxy for one pass: transformed instructions × hits (see
    /// the module docs for the model).
    fn saved(count: u64, hits: u64) -> u64 {
        count * hits
    }

    /// Estimated cycle units saved by all passes over this segment's
    /// lifetime (the ROI proxy summed across passes).
    pub fn est_cycles_saved(&self) -> u64 {
        Self::saved(self.opt_counts.transformed_instrs(), self.hits)
            + Self::saved(self.opt_counts.placed_segments, self.hits)
    }
}

/// One segment's life rendered as a span, for the Chrome-trace exporter:
/// the span runs from cache insertion to eviction (or to end-of-run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegSpan {
    /// The fill unit's segment id.
    pub seg_id: u64,
    /// Fetch address.
    pub start_pc: u32,
    /// Span start (cache insert cycle).
    pub insert_cycle: u64,
    /// Span end (eviction cycle, or `now` for resident lines).
    pub end_cycle: u64,
    /// Hits served during the span.
    pub hits: u64,
    /// Uops retired from the line.
    pub uops_retired: u64,
    /// Names of the passes that transformed the segment.
    pub passes: Vec<&'static str>,
    /// Eviction cause name, or `"resident"`.
    pub fate: &'static str,
}

/// Bucket bounds for the reuse (hits per segment) distribution.
pub const REUSE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384];
/// Bucket bounds for the residency-lifetime (cycles) distribution.
pub const RESIDENCY_BOUNDS: &[u64] = &[64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304];
/// Bucket bounds for the per-segment estimated-cycles-saved distribution.
pub const SAVED_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
];

/// The pass names the ROI report attributes, in report order.
pub const LEDGER_PASSES: [&str; 5] = ["moves", "cse", "reassoc", "scadd", "placement"];

fn pass_count(c: &OptCounts, pass: &str) -> u64 {
    match pass {
        "moves" => c.moves,
        "cse" => c.cse,
        "reassoc" => c.reassoc,
        "scadd" => c.scadd,
        "placement" => c.placed_segments,
        _ => 0,
    }
}

/// The segment lifetime ledger.
///
/// Construct with [`Ledger::new`]; a disabled ledger ignores every event
/// and reports nothing, so call sites can stay unconditional behind an
/// [`enabled`](Ledger::enabled) check.
#[derive(Debug)]
pub struct Ledger {
    enabled: bool,
    records: BTreeMap<u64, SegRecord>,
}

impl Ledger {
    /// Creates a ledger; `enabled = false` makes every event a no-op.
    pub fn new(enabled: bool) -> Ledger {
        Ledger {
            enabled,
            records: BTreeMap::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of ledgered segments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `seg_id`, if ledgered.
    pub fn get(&self, seg_id: u64) -> Option<&SegRecord> {
        self.records.get(&seg_id)
    }

    /// All records in seg-id order.
    pub fn records(&self) -> impl Iterator<Item = &SegRecord> {
        self.records.values()
    }

    /// A segment entered the trace cache at cycle `now`; `outcome` names
    /// the line it displaced, whose record this closes.
    pub fn on_insert(&mut self, seg: &Segment, outcome: &InsertOutcome, now: u64) {
        if !self.enabled {
            return;
        }
        let cause = match outcome {
            InsertOutcome::Filled => None,
            InsertOutcome::Refreshed(prev) => Some((prev, EvictCause::Refresh)),
            InsertOutcome::Evicted(prev) => Some((prev, EvictCause::Conflict)),
        };
        if let Some((prev, cause)) = cause {
            if let Some(rec) = self.records.get_mut(&prev.provenance.seg_id) {
                rec.evicted = Some((now, cause));
            }
        }
        let p = &seg.provenance;
        self.records.insert(
            p.seg_id,
            SegRecord {
                seg_id: p.seg_id,
                start_pc: seg.start_pc,
                len: seg.slots.len() as u8,
                end: seg.end.name(),
                opt_counts: p.opt_counts,
                loop_seg: seg.end == crate::segment::SegEnd::Loop,
                transformed: seg.slots.iter().any(|s| s.is_transformed()),
                build_cycle: p.build_cycle,
                insert_cycle: now,
                hits: 0,
                uops_fetched: 0,
                uops_retired: 0,
                uops_squashed: 0,
                evicted: None,
            },
        );
    }

    /// A trace-cache hit delivered `uops` slots from segment `seg_id`.
    pub fn on_fetch(&mut self, seg_id: u64, uops: u64) {
        if !self.enabled {
            return;
        }
        if let Some(rec) = self.records.get_mut(&seg_id) {
            rec.hits += 1;
            rec.uops_fetched += uops;
        }
    }

    /// One uop fetched from segment `seg_id` retired.
    pub fn on_retire(&mut self, seg_id: u64) {
        if !self.enabled {
            return;
        }
        if let Some(rec) = self.records.get_mut(&seg_id) {
            rec.uops_retired += 1;
        }
    }

    /// Segment `seg_id` was invalidated out of the cache at cycle `now`
    /// by the self-repair path; closes its record with
    /// [`EvictCause::Repair`].
    pub fn on_invalidate(&mut self, seg_id: u64, now: u64) {
        if !self.enabled {
            return;
        }
        if let Some(rec) = self.records.get_mut(&seg_id) {
            if rec.evicted.is_none() {
                rec.evicted = Some((now, EvictCause::Repair));
            }
        }
    }

    /// One uop fetched from segment `seg_id` was squashed by recovery.
    pub fn on_squash(&mut self, seg_id: u64) {
        if !self.enabled {
            return;
        }
        if let Some(rec) = self.records.get_mut(&seg_id) {
            rec.uops_squashed += 1;
        }
    }

    /// Total retired uops attributed to ledgered segments (the
    /// conservation numerator against the machine's `retired_from_tc`).
    pub fn attributed_retired(&self) -> u64 {
        self.records.values().map(|r| r.uops_retired).sum()
    }

    /// Segment life spans for the Chrome-trace exporter, in seg-id
    /// order; still-resident lines are closed at `now`.
    pub fn spans(&self, now: u64) -> Vec<SegSpan> {
        self.records
            .values()
            .map(|r| SegSpan {
                seg_id: r.seg_id,
                start_pc: r.start_pc,
                insert_cycle: r.insert_cycle,
                end_cycle: r.evicted.map_or(now, |(c, _)| c),
                hits: r.hits,
                uops_retired: r.uops_retired,
                passes: r.opt_counts_passes(),
                fate: r.evicted.map_or("resident", |(_, c)| c.name()),
            })
            .collect()
    }

    /// Folds the journal into the per-pass ROI report at cycle `now`.
    ///
    /// Member order and formatting are fixed, so the same journal always
    /// dumps to identical bytes. `top` caps the most-reused-segments
    /// table (hits descending, then seg-id ascending).
    pub fn report(&self, now: u64, top: usize) -> Json {
        let mut reuse = Histogram::new(REUSE_BOUNDS);
        let mut residency = Histogram::new(RESIDENCY_BOUNDS);
        let mut saved_per_seg = Histogram::new(SAVED_BOUNDS);
        let mut doa = 0u64;
        let mut resident = 0u64;
        let mut conflict = 0u64;
        let mut refresh = 0u64;
        let mut repair = 0u64;
        let (mut hits, mut fetched, mut retired, mut squashed) = (0u64, 0u64, 0u64, 0u64);
        for r in self.records.values() {
            reuse.observe(r.hits);
            residency.observe(r.residency(now));
            saved_per_seg.observe(r.est_cycles_saved());
            doa += r.is_doa() as u64;
            match r.evicted {
                None => resident += 1,
                Some((_, EvictCause::Conflict)) => conflict += 1,
                Some((_, EvictCause::Refresh)) => refresh += 1,
                Some((_, EvictCause::Repair)) => repair += 1,
            }
            hits += r.hits;
            fetched += r.uops_fetched;
            retired += r.uops_retired;
            squashed += r.uops_squashed;
        }
        let mut per_pass = Json::object();
        for pass in LEDGER_PASSES {
            let mut segments = 0u64;
            let mut transforms = 0u64;
            let mut saved = 0u64;
            let mut saved_hist = Histogram::new(SAVED_BOUNDS);
            for r in self.records.values() {
                let n = pass_count(&r.opt_counts, pass);
                if n == 0 {
                    continue;
                }
                segments += 1;
                transforms += n;
                let s = n * r.hits;
                saved += s;
                saved_hist.observe(s);
            }
            per_pass = per_pass.with(
                pass,
                Json::object()
                    .with("segments", segments)
                    .with("transforms", transforms)
                    .with("est_cycles_saved", saved)
                    .with("saved_per_segment", saved_hist.to_json()),
            );
        }
        let mut by_reuse: Vec<&SegRecord> = self.records.values().collect();
        by_reuse.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.seg_id.cmp(&b.seg_id)));
        let top_rows: Vec<Json> = by_reuse
            .iter()
            .take(top)
            .map(|r| {
                Json::object()
                    .with("seg_id", r.seg_id)
                    .with("start_pc", u64::from(r.start_pc))
                    .with("len", u64::from(r.len))
                    .with("end", r.end)
                    .with("hits", r.hits)
                    .with("uops_retired", r.uops_retired)
                    .with("residency", r.residency(now))
                    .with(
                        "passes",
                        Json::Arr(r.opt_counts_passes().into_iter().map(Json::from).collect()),
                    )
                    .with("est_cycles_saved", r.est_cycles_saved())
            })
            .collect();
        Json::object()
            .with("segments", self.records.len())
            .with("resident", resident)
            .with(
                "evicted",
                Json::object()
                    .with("conflict", conflict)
                    .with("refresh", refresh)
                    .with("repair", repair),
            )
            .with("doa", doa)
            .with("hits", hits)
            .with("uops_fetched", fetched)
            .with("uops_retired", retired)
            .with("uops_squashed", squashed)
            .with("reuse", reuse.to_json())
            .with("residency", residency.to_json())
            .with("saved_per_segment", saved_per_seg.to_json())
            .with("per_pass", per_pass)
            .with("top", Json::Arr(top_rows))
    }

    /// Exports the ledger summary into a metrics registry under
    /// `ledger.*` keys, so harness run records carry it without a schema
    /// change.
    pub fn export_metrics(&self, reg: &mut Registry, now: u64) {
        reg.add("ledger.segments", self.records.len() as u64);
        for r in self.records.values() {
            reg.observe("ledger.reuse", REUSE_BOUNDS, r.hits);
            reg.observe("ledger.residency", RESIDENCY_BOUNDS, r.residency(now));
            reg.observe("ledger.saved_per_seg", SAVED_BOUNDS, r.est_cycles_saved());
            if r.is_doa() {
                reg.inc("ledger.doa");
            }
            match r.evicted {
                None => reg.inc("ledger.resident"),
                Some((_, c)) => reg.inc(&format!("ledger.evict.{}", c.name())),
            }
            reg.add("ledger.hits", r.hits);
            reg.add("ledger.uops_fetched", r.uops_fetched);
            reg.add("ledger.uops_retired", r.uops_retired);
            reg.add("ledger.uops_squashed", r.uops_squashed);
            for pass in LEDGER_PASSES {
                let n = pass_count(&r.opt_counts, pass);
                if n > 0 {
                    reg.add(&format!("ledger.saved.{pass}"), n * r.hits);
                }
            }
        }
    }
}

impl SegRecord {
    /// Names of the passes that transformed this segment (report order).
    fn opt_counts_passes(&self) -> Vec<&'static str> {
        LEDGER_PASSES
            .into_iter()
            .filter(|p| pass_count(&self.opt_counts, p) > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::{FillConfig, TraceCacheConfig};
    use crate::tcache::TraceCache;
    use std::sync::Arc;
    use tracefill_isa::{ArchReg, Instr, Op};

    /// A one-branch segment at `pc` with a synthetic seg id.
    fn seg(pc: u32, seg_id: u64, taken: bool) -> Arc<Segment> {
        let inputs = vec![
            FillInput {
                pc,
                instr: Instr::branch(Op::Beq, ArchReg::gpr(8), ArchReg::ZERO, 4),
                taken: Some(taken),
                promoted: None,
                fetch_miss_head: false,
            },
            FillInput {
                pc: if taken { pc + 20 } else { pc + 4 },
                instr: Instr {
                    op: Op::Syscall,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
        ];
        let mut s = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();
        s.provenance.seg_id = seg_id;
        s.provenance.build_cycle = seg_id * 10;
        Arc::new(s)
    }

    fn tc() -> TraceCache {
        TraceCache::new(TraceCacheConfig {
            entries: 8,
            ways: 2,
            ..TraceCacheConfig::default()
        })
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let mut led = Ledger::new(false);
        let mut cache = tc();
        let s = seg(0x1000, 1, true);
        let out = cache.insert(Arc::clone(&s));
        led.on_insert(&s, &out, 5);
        led.on_fetch(1, 2);
        led.on_retire(1);
        assert!(!led.enabled());
        assert!(led.is_empty());
        assert_eq!(led.attributed_retired(), 0);
    }

    #[test]
    fn lifetime_events_fold_into_one_record() {
        let mut led = Ledger::new(true);
        let mut cache = tc();
        let s = seg(0x1000, 7, true);
        let out = cache.insert(Arc::clone(&s));
        led.on_insert(&s, &out, 100);
        led.on_fetch(7, 2);
        led.on_fetch(7, 2);
        led.on_retire(7);
        led.on_retire(7);
        led.on_retire(7);
        led.on_squash(7);
        let r = led.get(7).unwrap();
        assert_eq!(r.build_cycle, 70);
        assert_eq!(r.insert_cycle, 100);
        assert_eq!(r.hits, 2);
        assert_eq!(r.uops_fetched, 4);
        assert_eq!(r.uops_retired, 3);
        assert_eq!(r.uops_squashed, 1);
        assert_eq!(r.residency(250), 150);
        assert!(!r.is_doa());
        assert_eq!(led.attributed_retired(), 3);
    }

    #[test]
    fn displacement_closes_the_victim_record() {
        let mut led = Ledger::new(true);
        let mut cache = tc();
        // Three same-set lines in a 2-way cache: the third insert evicts
        // the first.
        for (i, pc) in [0x1000u32, 0x1010, 0x1020].into_iter().enumerate() {
            let s = seg(pc, i as u64 + 1, true);
            let out = cache.insert(Arc::clone(&s));
            led.on_insert(&s, &out, 10 * (i as u64 + 1));
        }
        let victim = led.get(1).unwrap();
        assert_eq!(victim.evicted, Some((30, EvictCause::Conflict)));
        assert_eq!(victim.residency(1000), 20);
        assert!(victim.is_doa(), "evicted with zero hits");
        // A refresh closes with the refresh cause.
        let s = seg(0x1010, 4, true);
        let out = cache.insert(Arc::clone(&s));
        led.on_insert(&s, &out, 40);
        assert_eq!(led.get(2).unwrap().evicted, Some((40, EvictCause::Refresh)));
        assert!(led.get(3).unwrap().evicted.is_none(), "still resident");
    }

    #[test]
    fn roi_report_attributes_passes_and_is_deterministic() {
        let mut led = Ledger::new(true);
        let mut cache = tc();
        let mut s = seg(0x1000, 1, true);
        {
            let m = Arc::get_mut(&mut s).unwrap();
            m.provenance.opt_counts.moves = 2;
            m.provenance.opt_counts.scadd = 1;
        }
        let out = cache.insert(Arc::clone(&s));
        led.on_insert(&s, &out, 5);
        for _ in 0..10 {
            led.on_fetch(1, 2);
        }
        let rep = led.report(1000, 5);
        let per_pass = rep.get("per_pass").unwrap();
        let moves = per_pass.get("moves").unwrap();
        assert_eq!(moves.get("segments").and_then(Json::as_u64), Some(1));
        assert_eq!(
            moves.get("est_cycles_saved").and_then(Json::as_u64),
            Some(20),
            "2 moves x 10 hits"
        );
        let scadd = per_pass.get("scadd").unwrap();
        assert_eq!(
            scadd.get("est_cycles_saved").and_then(Json::as_u64),
            Some(10)
        );
        assert_eq!(
            per_pass
                .get("cse")
                .and_then(|p| p.get("segments"))
                .and_then(Json::as_u64),
            Some(0)
        );
        let top = rep.get("top").and_then(Json::as_arr).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].get("hits").and_then(Json::as_u64), Some(10));
        // Same journal, same bytes.
        assert_eq!(rep.dump(), led.report(1000, 5).dump());
    }

    #[test]
    fn top_table_orders_by_hits_then_seg_id() {
        let mut led = Ledger::new(true);
        let mut cache = tc();
        for (id, pc) in [(1u64, 0x1000u32), (2, 0x2004), (3, 0x3008)] {
            let s = seg(pc, id, true);
            let out = cache.insert(Arc::clone(&s));
            led.on_insert(&s, &out, id);
        }
        led.on_fetch(2, 2);
        led.on_fetch(2, 2);
        led.on_fetch(3, 2);
        led.on_fetch(1, 2);
        let rep = led.report(100, 2);
        let top = rep.get("top").and_then(Json::as_arr).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get("seg_id").and_then(Json::as_u64), Some(2));
        assert_eq!(
            top[1].get("seg_id").and_then(Json::as_u64),
            Some(1),
            "tie on hits breaks toward the lower seg id"
        );
    }

    #[test]
    fn export_metrics_matches_report_totals() {
        let mut led = Ledger::new(true);
        let mut cache = tc();
        for (i, pc) in [0x1000u32, 0x1010, 0x1020].into_iter().enumerate() {
            let mut s = seg(pc, i as u64 + 1, true);
            Arc::get_mut(&mut s).unwrap().provenance.opt_counts.moves = 1;
            let out = cache.insert(Arc::clone(&s));
            led.on_insert(&s, &out, 10 * (i as u64 + 1));
        }
        led.on_fetch(2, 2);
        led.on_retire(2);
        let mut reg = Registry::new();
        led.export_metrics(&mut reg, 100);
        assert_eq!(reg.counter("ledger.segments"), 3);
        assert_eq!(reg.counter("ledger.doa"), 1);
        assert_eq!(reg.counter("ledger.hits"), 1);
        assert_eq!(reg.counter("ledger.uops_retired"), 1);
        assert_eq!(reg.counter("ledger.evict.conflict"), 1);
        assert_eq!(reg.counter("ledger.resident"), 2);
        assert_eq!(reg.counter("ledger.saved.moves"), 1);
        assert_eq!(
            reg.histogram("ledger.reuse").unwrap().count(),
            3,
            "one reuse sample per segment"
        );
    }
}
