//! The trace cache: path-associative storage of trace segments.
//!
//! The paper's trace cache holds 2048 lines, 4-way set associative —
//! ≈156 KB of storage (128 KB of instruction bits plus 28 KB of 7-bit
//! pre-decode per instruction; the optimizations of §4 add 7 more bits per
//! instruction). Lines are indexed by the segment start address; several
//! segments with the same start address but different embedded branch
//! paths may coexist in the ways of one set. A lookup supplies the current
//! multiple-branch predictions and selects the way whose embedded path
//! matches the longest prediction prefix (with inactive issue, a partial
//! match still issues the whole line).

use crate::config::TraceCacheConfig;
use crate::segment::{SegEnd, Segment};
use std::sync::Arc;
pub use tracefill_policy::PolicyCounters;
use tracefill_policy::{LineAttrs, ReplacePolicy};

/// Hit/miss statistics of the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups that found at least one line with the right start address.
    pub hits: u64,
    /// Lookups that found none.
    pub misses: u64,
    /// Hits whose selected way fully matched the predicted path.
    pub full_path_hits: u64,
    /// Segments written.
    pub fills: u64,
    /// Fills that replaced a same-address, same-path line.
    pub refreshes: u64,
    /// Fills that displaced a different line from a full set.
    pub evictions: u64,
}

impl TraceCacheStats {
    /// Fraction of lookups that hit.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            1.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: u32,
    seg: Arc<Segment>,
}

/// How well a fetched line's embedded path matches the predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathMatch {
    /// Number of leading conditional branches whose embedded direction
    /// agrees with the prediction stream (promoted branches always agree).
    pub matching_branches: u8,
    /// Whether every branch agreed.
    pub full: bool,
}

/// A trace cache lookup result.
#[derive(Debug, Clone)]
pub struct TcHit {
    /// The stored segment.
    pub seg: Arc<Segment>,
    /// How far the predictions follow the embedded path.
    pub path: PathMatch,
}

/// What an [`insert`](TraceCache::insert) did to the cache, reported so
/// the segment ledger can close the displaced line's lifetime record.
#[derive(Debug, Clone)]
pub enum InsertOutcome {
    /// The segment landed in an empty way; nothing was displaced.
    Filled,
    /// The segment replaced a same-address, same-path line (counted in
    /// [`TraceCacheStats::refreshes`]). The displaced segment is returned.
    Refreshed(Arc<Segment>),
    /// The segment displaced a different line from a full set (counted in
    /// [`TraceCacheStats::evictions`]). The displaced segment is returned.
    Evicted(Arc<Segment>),
}

impl InsertOutcome {
    /// The displaced segment, if any line was displaced.
    pub fn displaced(&self) -> Option<&Arc<Segment>> {
        match self {
            InsertOutcome::Filled => None,
            InsertOutcome::Refreshed(s) | InsertOutcome::Evicted(s) => Some(s),
        }
    }
}

/// The trace cache.
#[derive(Debug)]
pub struct TraceCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u32,
    clock: u64,
    stats: TraceCacheStats,
    /// Replacement state, dispatched through `tracefill-policy`. The
    /// cache reports hits/inserts with its lookup clock as the tick, so
    /// the default LRU policy reproduces the historical in-struct LRU
    /// stamps bit-for-bit.
    policy: Box<dyn ReplacePolicy>,
}

/// The replacement-relevant facts about a segment.
fn attrs_of(seg: &Segment) -> LineAttrs {
    LineAttrs {
        loop_seg: seg.end == SegEnd::Loop,
        transformed: seg.slots.iter().any(|s| s.is_transformed()),
        len: seg.slots.len() as u8,
    }
}

/// Computes how many leading branches of `seg` the prediction stream
/// follows. Unpromoted branches consume predictions in order; promoted
/// branches assert their embedded direction.
pub fn match_predictions(seg: &Segment, preds: &[bool]) -> PathMatch {
    let mut matching = 0u8;
    let mut pred_idx = 0usize;
    for b in &seg.branches {
        let agreed = if b.promoted {
            true
        } else {
            let p = preds.get(pred_idx).copied().unwrap_or(false);
            pred_idx += 1;
            p == b.taken
        };
        if agreed {
            matching += 1;
        } else {
            return PathMatch {
                matching_branches: matching,
                full: false,
            };
        }
    }
    PathMatch {
        matching_branches: matching,
        full: true,
    }
}

impl TraceCache {
    /// Creates an empty trace cache.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`TraceCacheConfig::sets`]).
    pub fn new(config: TraceCacheConfig) -> TraceCache {
        let sets = config.sets();
        TraceCache {
            sets: (0..sets).map(|_| Vec::new()).collect(),
            ways: config.ways as usize,
            set_mask: sets - 1,
            clock: 0,
            stats: TraceCacheStats::default(),
            policy: config.policy.build(sets as usize, config.ways as usize),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> TraceCacheStats {
        self.stats
    }

    /// The replacement policy's canonical name (`lru`, `srrip`, `trrip`).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn set_of(&self, pc: u32) -> usize {
        ((pc >> 2) & self.set_mask) as usize
    }

    /// Looks up the segment for fetch address `pc` under the given
    /// multiple-branch predictions, preferring the way with the longest
    /// matching path prefix. Updates LRU and statistics.
    pub fn lookup(&mut self, pc: u32, preds: &[bool]) -> Option<TcHit> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(pc);
        let mut best: Option<(usize, PathMatch, usize)> = None; // (way idx, match, len)
        for (w, way) in self.sets[set].iter().enumerate() {
            if way.tag != pc {
                continue;
            }
            let m = match_predictions(&way.seg, preds);
            let better = match &best {
                None => true,
                Some((_, bm, blen)) => {
                    (m.matching_branches, way.seg.slots.len()) > (bm.matching_branches, *blen)
                }
            };
            if better {
                best = Some((w, m, way.seg.slots.len()));
            }
        }
        match best {
            Some((w, m, _)) => {
                self.policy.on_hit(set, w, clock);
                self.stats.hits += 1;
                if m.full {
                    self.stats.full_path_hits += 1;
                }
                Some(TcHit {
                    seg: Arc::clone(&self.sets[set][w].seg),
                    path: m,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Writes a segment produced by the fill unit, reporting which line
    /// (if any) it displaced.
    pub fn insert(&mut self, seg: Arc<Segment>) -> InsertOutcome {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(seg.start_pc);
        let ways = self.ways;
        let sig = seg.path_sig();
        let attrs = attrs_of(&seg);
        let set_ways = &mut self.sets[set];
        self.stats.fills += 1;

        // Same start address and same path: refresh in place.
        if let Some(w) = set_ways
            .iter()
            .position(|w| w.tag == seg.start_pc && w.seg.path_sig() == sig)
        {
            let prev = std::mem::replace(&mut set_ways[w].seg, seg);
            self.policy.on_insert(set, w, clock, &attrs);
            self.stats.refreshes += 1;
            return InsertOutcome::Refreshed(prev);
        }
        let tag = seg.start_pc;
        if set_ways.len() < ways {
            let w = set_ways.len();
            set_ways.push(Way { tag, seg });
            self.policy.on_insert(set, w, clock, &attrs);
            return InsertOutcome::Filled;
        }
        // Full set: the replacement policy picks the way to displace.
        let victim = self.policy.victim(set, set_ways.len(), clock);
        set_ways[victim].tag = tag;
        let prev = std::mem::replace(&mut set_ways[victim].seg, seg);
        self.policy.on_insert(set, victim, clock, &attrs);
        self.stats.evictions += 1;
        InsertOutcome::Evicted(prev)
    }

    /// Removes the line holding segment `seg_id` at fetch address
    /// `start_pc`, returning it if it was cached. Used by the self-repair
    /// path to surgically drop a segment implicated in a divergence.
    ///
    /// The set is compacted by sliding its last way into the vacated slot
    /// (the policy carries the moved line's state via
    /// [`ReplacePolicy::on_move`]), preserving the left-to-right occupancy
    /// invariant the policies rely on.
    pub fn invalidate(&mut self, start_pc: u32, seg_id: u64) -> Option<Arc<Segment>> {
        let set = self.set_of(start_pc);
        let set_ways = &mut self.sets[set];
        let pos = set_ways
            .iter()
            .position(|w| w.tag == start_pc && w.seg.provenance.seg_id == seg_id)?;
        let last = set_ways.len() - 1;
        let removed = set_ways.swap_remove(pos);
        if pos != last {
            self.policy.on_move(set, last, pos);
        }
        Some(removed.seg)
    }

    /// Hit / eviction / eviction-age totals from the replacement policy's
    /// own bookkeeping. Cross-checkable against [`stats`](Self::stats):
    /// `counters.hits == stats.hits` and
    /// `counters.evictions == stats.evictions` always hold, because the
    /// cache reports every hit and requests every victim through the
    /// policy exactly once.
    pub fn policy_counters(&self) -> PolicyCounters {
        self.policy.counters()
    }

    /// Total storage currently occupied, in bits (for the paper's ≈156 KB
    /// + 7-bit-per-instruction accounting).
    pub fn storage_bits(&self) -> u64 {
        self.sets
            .iter()
            .flatten()
            .map(|w| w.seg.storage_bits() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{simple_inputs, simple_segment};
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn small_tc() -> TraceCache {
        TraceCache::new(TraceCacheConfig {
            entries: 8,
            ways: 2,
            ..TraceCacheConfig::default()
        })
    }

    /// A one-branch segment at `pc` whose branch goes `taken`.
    fn seg_with_path(pc: u32, taken: bool) -> Arc<Segment> {
        let inputs = vec![
            FillInput {
                pc,
                instr: Instr::branch(Op::Beq, ArchReg::gpr(8), ArchReg::ZERO, 4),
                taken: Some(taken),
                promoted: None,
                fetch_miss_head: false,
            },
            FillInput {
                pc: if taken { pc + 20 } else { pc + 4 },
                instr: Instr {
                    op: Op::Syscall,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
        ];
        Arc::new(
            build_segments(&inputs, &FillConfig::default())
                .pop()
                .unwrap(),
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut tc = small_tc();
        let seg = Arc::new(simple_segment());
        let pc = seg.start_pc;
        assert!(tc.lookup(pc, &[false, false, false]).is_none());
        tc.insert(seg);
        let hit = tc.lookup(pc, &[false, false, false]).unwrap();
        assert!(hit.path.full);
        assert_eq!(tc.stats().hits, 1);
        assert_eq!(tc.stats().misses, 1);
    }

    #[test]
    fn path_selection_prefers_matching_way() {
        let mut tc = small_tc();
        let pc = 0x40_0000;
        tc.insert(seg_with_path(pc, true));
        tc.insert(seg_with_path(pc, false));
        let hit = tc.lookup(pc, &[true]).unwrap();
        assert!(hit.seg.branches[0].taken);
        assert!(hit.path.full);
        let hit = tc.lookup(pc, &[false]).unwrap();
        assert!(!hit.seg.branches[0].taken);
    }

    #[test]
    fn partial_match_reports_divergence() {
        let mut tc = small_tc();
        let pc = 0x40_0000;
        tc.insert(seg_with_path(pc, true));
        let hit = tc.lookup(pc, &[false]).unwrap();
        assert!(!hit.path.full);
        assert_eq!(hit.path.matching_branches, 0);
    }

    #[test]
    fn refresh_replaces_same_path_line() {
        let mut tc = small_tc();
        let pc = 0x40_0000;
        tc.insert(seg_with_path(pc, true));
        tc.insert(seg_with_path(pc, true));
        assert_eq!(tc.stats().refreshes, 1);
        // Different path is a separate way, not a refresh.
        tc.insert(seg_with_path(pc, false));
        assert_eq!(tc.stats().refreshes, 1);
    }

    #[test]
    fn invalidate_removes_the_named_line_and_compacts_the_set() {
        let mut tc = small_tc();
        let pc = 0x40_0000;
        let with_id = |taken: bool, id: u64| {
            let mut s = (*seg_with_path(pc, taken)).clone();
            s.provenance.seg_id = id;
            Arc::new(s)
        };
        let a = with_id(true, 7);
        let b = with_id(false, 8);
        let (a_id, b_id) = (a.provenance.seg_id, b.provenance.seg_id);
        tc.insert(Arc::clone(&a));
        tc.insert(Arc::clone(&b));
        // Wrong pc or wrong seg id: no line is touched.
        assert!(tc.invalidate(pc + 4, a_id).is_none());
        assert!(tc.invalidate(pc, a_id.wrapping_add(1000)).is_none());
        // Invalidate way 0: way 1 compacts into its slot and both the
        // survivor and future inserts keep working.
        let removed = tc.invalidate(pc, a_id).expect("line was cached");
        assert!(Arc::ptr_eq(&removed, &a));
        let hit = tc.lookup(pc, &[false]).unwrap();
        assert_eq!(hit.seg.provenance.seg_id, b_id);
        // The invalidated path is gone (the survivor partially matches).
        assert!(!tc.lookup(pc, &[true]).unwrap().path.full);
        // Re-inserting fills the vacated way rather than evicting.
        let evictions = tc.stats().evictions;
        tc.insert(seg_with_path(pc, true));
        assert_eq!(tc.stats().evictions, evictions);
        assert!(tc.lookup(pc, &[true]).unwrap().path.full);
    }

    #[test]
    fn insert_outcome_reports_displaced_lines() {
        let mut tc = small_tc();
        let pc = 0x40_0000;
        let first = seg_with_path(pc, true);
        assert!(matches!(
            tc.insert(Arc::clone(&first)),
            InsertOutcome::Filled
        ));
        // Same start address, same path: the refresh hands back the line
        // it replaced.
        match tc.insert(seg_with_path(pc, true)) {
            InsertOutcome::Refreshed(prev) => assert!(Arc::ptr_eq(&prev, &first)),
            o => panic!("expected refresh, got {o:?}"),
        }
        // Different path lands in the second way without displacement.
        assert!(tc.insert(seg_with_path(pc, false)).displaced().is_none());
    }

    #[test]
    fn insert_outcome_and_policy_counters_cross_check() {
        // Three pcs in the same set of a 2-way cache (set index is
        // (pc>>2) & 3 here, so a 16-byte stride keeps the set).
        let mut tc = small_tc();
        let pcs = [0x1000u32, 0x1010, 0x1020];
        assert!(matches!(
            tc.insert(seg_with_path(pcs[0], true)),
            InsertOutcome::Filled
        ));
        assert!(matches!(
            tc.insert(seg_with_path(pcs[1], true)),
            InsertOutcome::Filled
        ));
        assert!(tc.lookup(pcs[1], &[true]).is_some());
        match tc.insert(seg_with_path(pcs[2], true)) {
            InsertOutcome::Evicted(prev) => assert_eq!(prev.start_pc, pcs[0]),
            o => panic!("expected eviction, got {o:?}"),
        }
        let c = tc.policy_counters();
        assert_eq!(c.hits, tc.stats().hits);
        assert_eq!(c.evictions, tc.stats().evictions);
        // The victim entered at clock 1 and was displaced at clock 4
        // (two inserts + one lookup before the displacing insert).
        assert_eq!(c.evict_age_ticks, 3);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut tc = small_tc(); // 4 sets, 2 ways; stride 16 bytes maps... sets indexed by (pc>>2)&3
        let stride = 4 * 4; // distinct pcs in the same set: (pc>>2) multiples of 4
        let pcs: Vec<u32> = (0..3).map(|i| 0x1000 + i * stride).collect();
        for &pc in &pcs {
            let inputs = simple_inputs()
                .into_iter()
                .map(|mut f| {
                    f.pc = f.pc - 0x40_0000 + pc;
                    f
                })
                .collect::<Vec<_>>();
            tc.insert(Arc::new(
                build_segments(&inputs, &FillConfig::default())
                    .pop()
                    .unwrap(),
            ));
        }
        // First insert was evicted by the third (same set, 2 ways).
        assert!(tc.lookup(pcs[0], &[false]).is_none());
        assert!(tc.lookup(pcs[1], &[false]).is_some());
        assert!(tc.lookup(pcs[2], &[false]).is_some());
        assert_eq!(tc.stats().evictions, 1);
        assert_eq!(tc.policy_name(), "lru");
    }

    #[test]
    fn alternate_policies_still_cache_correctly() {
        use crate::config::ReplacementKind;
        for kind in [ReplacementKind::Srrip, ReplacementKind::Trrip] {
            let mut tc = TraceCache::new(TraceCacheConfig {
                entries: 8,
                ways: 2,
                policy: kind,
            });
            assert_eq!(tc.policy_name(), kind.name());
            let seg = Arc::new(simple_segment());
            let pc = seg.start_pc;
            assert!(tc.lookup(pc, &[false]).is_none());
            tc.insert(seg);
            assert!(tc.lookup(pc, &[false]).is_some(), "{:?} basic hit", kind);
            assert_eq!(tc.stats().fills, 1);
        }
    }

    #[test]
    fn promoted_branches_do_not_consume_predictions() {
        let pc = 0x40_0000;
        let inputs = vec![
            FillInput {
                pc,
                instr: Instr::branch(Op::Beq, ArchReg::gpr(8), ArchReg::ZERO, 4),
                taken: Some(true),
                promoted: Some(true),
                fetch_miss_head: false,
            },
            FillInput {
                pc: pc + 20,
                instr: Instr::branch(Op::Bne, ArchReg::gpr(9), ArchReg::ZERO, 4),
                taken: Some(false),
                promoted: None,
                fetch_miss_head: false,
            },
            FillInput {
                pc: pc + 24,
                instr: Instr {
                    op: Op::Syscall,
                    rd: ArchReg::ZERO,
                    rs: ArchReg::ZERO,
                    rt: ArchReg::ZERO,
                    imm: 0,
                },
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            },
        ];
        let seg = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();
        // Prediction stream only carries the unpromoted branch: [false].
        let m = match_predictions(&seg, &[false]);
        assert!(m.full);
        assert_eq!(m.matching_branches, 2);
        // A wrong dynamic prediction diverges at the unpromoted branch.
        let m = match_predictions(&seg, &[true]);
        assert!(!m.full);
        assert_eq!(m.matching_branches, 1);
    }
}
