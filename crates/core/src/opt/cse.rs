//! Extension (paper §5, future work) — common subexpression elimination.
//!
//! The paper's conclusion names CSE as a candidate for more aggressive
//! fill-unit optimization. Within a trace segment it reduces to the
//! machinery register-move marking already provides: when two slots
//! compute the *same pure operation over the same dataflow sources*, the
//! later one is marked move-like with the earlier slot as its source —
//! rename then completes it by aliasing physical registers, and it never
//! visits a functional unit.
//!
//! Because dependencies are explicit [`SrcRef`]s, "same sources" is exact
//! value equality: `LiveIn(r)` is the architectural value at segment entry
//! and `Internal(p)` is slot `p`'s output, so two slots with equal
//! `(op, srcs, imm, scadd)` provably compute equal values. Only pure
//! ALU/shift/multiply/divide operations participate; loads are excluded
//! (an intervening store could change their value) as are instructions a
//! previous pass already rewrote into moves.
//!
//! This pass is **off by default** ([`OptConfig::cse`]): it is an
//! extension beyond the paper's four optimizations, evaluated separately
//! in the `ablations` bench target.
//!
//! [`OptConfig::cse`]: crate::config::OptConfig::cse

use crate::segment::{Segment, SrcRef};
use tracefill_isa::op::OpKind;
use tracefill_util::Registry;

/// A pure computation's identity within the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ExprKey {
    op: tracefill_isa::Op,
    srcs: [Option<SrcRef>; 2],
    imm: i32,
    scadd: Option<(u8, u8)>,
}

/// Applies common subexpression elimination; returns the number of
/// duplicate computations converted to rename-time aliases.
pub fn apply(seg: &mut Segment) -> u64 {
    apply_counted(seg, &mut Registry::new())
}

/// [`apply`] with accept/reject telemetry recorded into `telemetry`
/// (`fill.cse.accept` plus `fill.cse.reject.no_prior_match`, one count per
/// pure candidate computation examined).
pub fn apply_counted(seg: &mut Segment, telemetry: &mut Registry) -> u64 {
    use std::collections::HashMap;
    let mut first: HashMap<ExprKey, u8> = HashMap::new();
    let mut eliminated = 0;

    for i in 0..seg.slots.len() {
        let slot = &seg.slots[i];
        if slot.is_move || slot.dest.is_none() {
            continue;
        }
        let pure = matches!(
            slot.op.kind(),
            OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div
        );
        if !pure {
            continue;
        }
        let key = ExprKey {
            op: slot.op,
            srcs: slot.srcs,
            imm: slot.imm,
            scadd: slot.scadd.map(|s| (s.shift, s.src)),
        };
        match first.get(&key) {
            Some(&p) => {
                // Duplicate: alias it to the first computation.
                let loc = SrcRef::Internal(p);
                let slot = &mut seg.slots[i];
                slot.is_move = true;
                slot.move_src = Some(loc);
                eliminated += 1;
                telemetry.inc("fill.cse.accept");
                // Re-point later consumers directly at the original, so
                // they lose no rename cycle (same rule as §4.2 moves).
                for j in (i + 1)..seg.slots.len() {
                    for k in 0..2 {
                        if seg.slots[j].srcs[k] == Some(SrcRef::Internal(i as u8)) {
                            seg.slots[j].srcs[k] = Some(loc);
                        }
                    }
                }
            }
            None => {
                first.insert(key, i as u8);
                telemetry.inc("fill.cse.reject.no_prior_match");
            }
        }
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use crate::opt::verify;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    fn seg_of(instrs: Vec<Instr>) -> Segment {
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap()
    }

    #[test]
    fn duplicate_address_computation_is_eliminated() {
        let mut seg = seg_of(vec![
            Instr::alu(Op::Add, r(8), r(16), r(17)), // t0 = s0 + s1
            Instr::load(Op::Lw, r(9), r(8), 0),
            Instr::alu(Op::Add, r(10), r(16), r(17)), // t2 = s0 + s1 (dup)
            Instr::store(Op::Sw, r(9), r(10), 4),
        ]);
        assert_eq!(apply(&mut seg), 1);
        assert!(seg.slots[2].is_move);
        assert_eq!(seg.slots[2].move_src, Some(SrcRef::Internal(0)));
        // The store's base now points straight at the original add.
        assert_eq!(seg.slots[3].srcs[0], Some(SrcRef::Internal(0)));
        seg.check_invariants().unwrap();
        verify::equivalent(&seg, 5).unwrap();
    }

    #[test]
    fn same_registers_different_values_are_not_merged() {
        // The second add reads a *redefined* t1; its srcs differ, so it
        // must not merge with the first.
        let mut seg = seg_of(vec![
            Instr::alu(Op::Add, r(8), r(16), r(17)),
            Instr::alu_imm(Op::Addi, r(17), r(17), 1),
            Instr::alu(Op::Add, r(10), r(16), r(17)),
        ]);
        assert_eq!(apply(&mut seg), 0);
        verify::equivalent(&seg, 6).unwrap();
    }

    #[test]
    fn loads_never_merge() {
        let mut seg = seg_of(vec![
            Instr::load(Op::Lw, r(8), r(16), 0),
            Instr::store(Op::Sw, r(9), r(16), 0),
            Instr::load(Op::Lw, r(10), r(16), 0), // same address, new value
        ]);
        assert_eq!(apply(&mut seg), 0);
    }

    #[test]
    fn different_immediates_do_not_merge() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Addi, r(8), r(16), 4),
            Instr::alu_imm(Op::Addi, r(9), r(16), 8),
        ]);
        assert_eq!(apply(&mut seg), 0);
    }

    #[test]
    fn triple_duplicates_all_alias_the_first() {
        let mut seg = seg_of(vec![
            Instr::alu(Op::Xor, r(8), r(16), r(17)),
            Instr::alu(Op::Xor, r(9), r(16), r(17)),
            Instr::alu(Op::Xor, r(10), r(16), r(17)),
            Instr::alu(Op::Add, r(11), r(9), r(10)),
        ]);
        assert_eq!(apply(&mut seg), 2);
        assert_eq!(seg.slots[1].move_src, Some(SrcRef::Internal(0)));
        assert_eq!(seg.slots[2].move_src, Some(SrcRef::Internal(0)));
        // The consumer reads the original through both operands.
        assert_eq!(seg.slots[3].srcs[0], Some(SrcRef::Internal(0)));
        assert_eq!(seg.slots[3].srcs[1], Some(SrcRef::Internal(0)));
        verify::equivalent(&seg, 7).unwrap();
    }
}
