//! §4.3 — Reassociation: combining immediates of dependent instructions.
//!
//! For a dependent pair like
//!
//! ```text
//! ADDI rx <- ry + 4
//! ADDI rz <- rx + 4        =>        ADDI rz <- ry + 8
//! ```
//!
//! the fill unit recomputes the later immediate and re-points its source at
//! the earlier instruction's source, removing one link from the dependency
//! chain. The same combination applies when the consumer is a load or store
//! displacement (`ADDI rx <- ry + 4 ; LW rz <- [rx + 8]` becomes
//! `LW rz <- [ry + 12]`), the dominant address-computation pattern.
//!
//! Following the paper, the pass (by default) only combines pairs that
//! **cross a control-flow boundary** — the compiler has already
//! reassociated within basic blocks, and restricting the fill unit to
//! cross-block pairs isolates its contribution. The rewritten immediate
//! must still fit the 16-bit field or the pair is left alone.

use crate::segment::{Segment, SrcRef};
use tracefill_isa::Op;
use tracefill_util::Registry;

/// Whether `op` can absorb an upstream `ADDI` into its (sign-extended
/// 16-bit) immediate through operand 0.
fn is_consumer(op: Op) -> bool {
    matches!(
        op,
        Op::Addi | Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw
    )
}

/// Applies reassociation; returns the number of instructions rewritten.
pub fn apply(seg: &mut Segment, cross_block_only: bool) -> u64 {
    apply_counted(seg, cross_block_only, &mut Registry::new())
}

/// [`apply`] with accept/reject telemetry recorded into `telemetry`
/// (`fill.reassoc.accept` plus `fill.reassoc.reject.{scadd_conflict,
/// src_not_internal, producer_not_addi, same_block, imm_overflow}`, one
/// count per candidate consumer examined).
pub fn apply_counted(seg: &mut Segment, cross_block_only: bool, telemetry: &mut Registry) -> u64 {
    let mut rewritten = 0;
    for j in 0..seg.slots.len() {
        if !is_consumer(seg.slots[j].op) {
            continue;
        }
        // Scaled-add annotations shift operand 0 of memory ops; such a
        // source no longer carries a plain register value. (Pass order
        // makes this impossible today, but stay defensive.)
        if seg.slots[j].scadd.map(|s| s.src) == Some(0) {
            telemetry.inc("fill.reassoc.reject.scadd_conflict");
            continue;
        }
        let Some(SrcRef::Internal(i)) = seg.slots[j].srcs[0] else {
            telemetry.inc("fill.reassoc.reject.src_not_internal");
            continue;
        };
        let i = i as usize;
        let producer = &seg.slots[i];
        if producer.op != Op::Addi || producer.is_move {
            telemetry.inc("fill.reassoc.reject.producer_not_addi");
            continue;
        }
        if cross_block_only && producer.block == seg.slots[j].block {
            telemetry.inc("fill.reassoc.reject.same_block");
            continue;
        }
        let combined = producer.imm as i64 + seg.slots[j].imm as i64;
        if !(-(1 << 15)..(1 << 15)).contains(&combined) {
            // Would not fit the 16-bit immediate field.
            telemetry.inc("fill.reassoc.reject.imm_overflow");
            continue;
        }
        let new_src = producer.srcs[0].expect("ADDI always has a source");
        let consumer = &mut seg.slots[j];
        consumer.srcs[0] = Some(new_src);
        consumer.imm = combined as i32;
        consumer.reassociated = true;
        rewritten += 1;
        telemetry.inc("fill.reassoc.accept");
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use crate::opt::verify;
    use tracefill_isa::{ArchReg, Instr};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    /// Builds a segment where a conditional branch separates the pair.
    fn cross_block_pair() -> Segment {
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::branch(Op::Beq, r(0), r(0), 1),
            Instr::alu_imm(Op::Addi, r(10), r(8), 4),
        ];
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x40_0000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap()
    }

    #[test]
    fn paper_example_combines() {
        let mut seg = cross_block_pair();
        assert_eq!(apply(&mut seg, true), 1);
        let c = &seg.slots[2];
        assert_eq!(c.imm, 8);
        assert_eq!(c.srcs[0], Some(SrcRef::LiveIn(r(9))));
        assert!(c.reassociated);
        // The producer is untouched (its value may be live-out).
        assert_eq!(seg.slots[0].imm, 4);
        verify::equivalent(&seg, 99).unwrap();
    }

    #[test]
    fn same_block_pairs_respect_the_restriction() {
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::alu_imm(Op::Addi, r(10), r(8), 4),
        ];
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: None,
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        let base = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();

        let mut restricted = base.clone();
        assert_eq!(apply(&mut restricted, true), 0);

        let mut unrestricted = base;
        assert_eq!(apply(&mut unrestricted, false), 1);
        assert_eq!(unrestricted.slots[1].imm, 8);
        verify::equivalent(&unrestricted, 3).unwrap();
    }

    #[test]
    fn loads_and_stores_absorb_displacements() {
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(29), 16),
            Instr::branch(Op::Bne, r(0), r(0), 1),
            Instr::load(Op::Lw, r(10), r(8), 8),
            Instr::store(Op::Sw, r(10), r(8), 12),
        ];
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        let mut seg = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();
        assert_eq!(apply(&mut seg, true), 2);
        assert_eq!(seg.slots[2].imm, 24);
        assert_eq!(seg.slots[3].imm, 28);
        assert_eq!(seg.slots[2].srcs[0], Some(SrcRef::LiveIn(ArchReg::SP)));
        verify::equivalent(&seg, 5).unwrap();
    }

    #[test]
    fn chains_cascade() {
        // addi / branch / addi / branch / addi — the third absorbs both.
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::branch(Op::Beq, r(0), r(0), 1),
            Instr::alu_imm(Op::Addi, r(10), r(8), 4),
            Instr::branch(Op::Beq, r(0), r(0), 1),
            Instr::alu_imm(Op::Addi, r(11), r(10), 4),
        ];
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        let mut seg = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();
        assert_eq!(apply(&mut seg, true), 2);
        assert_eq!(seg.slots[4].imm, 12);
        assert_eq!(seg.slots[4].srcs[0], Some(SrcRef::LiveIn(r(9))));
        verify::equivalent(&seg, 11).unwrap();
    }

    #[test]
    fn overflowing_immediates_are_left_alone() {
        let instrs = vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 30000),
            Instr::branch(Op::Beq, r(0), r(0), 1),
            Instr::alu_imm(Op::Addi, r(10), r(8), 10000),
        ];
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        let mut seg = build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap();
        assert_eq!(apply(&mut seg, true), 0);
        assert_eq!(seg.slots[2].imm, 10000);
    }
}
