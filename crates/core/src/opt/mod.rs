//! The fill unit's dynamic trace optimizations (paper §4).
//!
//! Each pass rewrites a finalized [`Segment`] in
//! place and reports how many instructions it transformed. Passes run in a
//! fixed order — moves, reassociation, scaled adds, placement — so the
//! later passes see through the earlier rewrites (e.g. scaled-add creation
//! sees the dependency graph after move bypassing).
//!
//! Every pass preserves *dataflow equivalence*: the optimized segment
//! computes exactly the same architectural values, branch outcomes and
//! memory effects as the original instruction sequence. [`verify`] checks
//! this property by concrete evaluation and is used heavily in tests.

pub mod cse;
pub mod moves;
pub mod placement;
pub mod reassoc;
pub mod scadd;
pub mod verify;

use crate::config::{ClusterConfig, OptConfig};
use crate::segment::Segment;
use tracefill_util::Registry;

/// How many instructions each pass transformed in one segment (or, summed,
/// over a whole run — this is the numerator of Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptCounts {
    /// Register moves marked (§4.2).
    pub moves: u64,
    /// Immediates combined (§4.3).
    pub reassoc: u64,
    /// Scaled adds created (§4.4).
    pub scadd: u64,
    /// Segments whose issue order was permuted (§4.5).
    pub placed_segments: u64,
    /// Duplicate computations eliminated (extension; paper §5).
    pub cse: u64,
}

impl OptCounts {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: OptCounts) {
        self.moves += other.moves;
        self.reassoc += other.reassoc;
        self.scadd += other.scadd;
        self.placed_segments += other.placed_segments;
        self.cse += other.cse;
    }

    /// Total transformed instructions (placement is not an instruction
    /// rewrite and is excluded, matching Table 2).
    pub fn transformed_instrs(&self) -> u64 {
        self.moves + self.reassoc + self.scadd + self.cse
    }
}

/// Runs the enabled passes over a segment.
pub fn apply_all(seg: &mut Segment, opts: &OptConfig, clusters: &ClusterConfig) -> OptCounts {
    apply_all_telemetry(seg, opts, clusters, &mut Registry::new())
}

/// [`apply_all`] with per-pass accept/reject-reason telemetry accumulated
/// into `telemetry` (counter names `fill.<pass>.accept` and
/// `fill.<pass>.reject.<reason>`; see each pass's `apply_counted`).
pub fn apply_all_telemetry(
    seg: &mut Segment,
    opts: &OptConfig,
    clusters: &ClusterConfig,
    telemetry: &mut Registry,
) -> OptCounts {
    let mut counts = OptCounts::default();
    if opts.moves {
        counts.moves = moves::apply_counted(seg, telemetry);
    }
    if opts.cse {
        counts.cse = cse::apply_counted(seg, telemetry);
    }
    if opts.reassoc {
        counts.reassoc = reassoc::apply_counted(seg, opts.reassoc_cross_block_only, telemetry);
    }
    if opts.scadd {
        counts.scadd = scadd::apply_counted(seg, opts.scadd_max_shift, telemetry);
    }
    if opts.placement {
        placement::apply_counted(seg, clusters, telemetry);
        counts.placed_segments = 1;
    }
    seg.provenance.opt_counts = counts;
    debug_assert_eq!(seg.check_invariants(), Ok(()));
    debug_assert_eq!(verify::equivalent(seg, 0xfeed_f00d), Ok(()));
    counts
}

/// Always-on (release-mode) per-segment verification: structural
/// invariants plus dataflow equivalence by concrete evaluation. This is
/// the `debug_assert` pair above promoted to a callable check, used when
/// [`FillConfig::strict_verify`](crate::config::FillConfig::strict_verify)
/// is set (the default in oracle runs).
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn strict_check(seg: &Segment) -> Result<(), String> {
    seg.check_invariants()
        .map_err(|e| format!("invariant violation: {e}"))?;
    verify::equivalent(seg, 0xfeed_f00d).map_err(|e| format!("equivalence violation: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::simple_segment;

    #[test]
    fn all_passes_keep_equivalence_on_sample() {
        let mut seg = simple_segment();
        let counts = apply_all(&mut seg, &OptConfig::all(), &ClusterConfig::default());
        // The sample stream contains a reassociable pair (slots 0 and 5,
        // different blocks) and a scaled-add pair (slots 1 and 2).
        assert_eq!(counts.reassoc, 1);
        assert_eq!(counts.scadd, 1);
        verify::equivalent(&seg, 42).unwrap();
        seg.check_invariants().unwrap();
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let mut seg = simple_segment();
        let orig = seg.clone();
        let counts = apply_all(&mut seg, &OptConfig::none(), &ClusterConfig::default());
        assert_eq!(counts, OptCounts::default());
        assert_eq!(seg, orig);
    }
}
