//! §4.4 — Scaled-add creation (dependence collapsing of shift+add pairs).
//!
//! Array indexing constantly produces the pattern
//!
//! ```text
//! SLL rw <- rx << 2
//! ADD ry <- rw + rz        =>        SCADD ry <- (rx << 2) + rz
//! ```
//!
//! The fill unit moves the (≤3-bit) shift distance into a 2-bit scaled-add
//! field of the consumer and re-points the shifted operand at the shift's
//! own source, so the pair executes in one cycle. The shift instruction
//! itself stays in the segment — its result may have other consumers or be
//! live-out (dead-code elimination is future work in the paper).
//!
//! The consumer may be a register add, a displacement load/store (its base
//! is scaled) or the indexed load `LWX` (either operand).

use crate::segment::{ScAdd, Segment, SrcRef};
use tracefill_isa::Op;
use tracefill_util::Registry;

/// The operand indices of `op` that may absorb a scaled source.
fn scalable_operands(op: Op) -> &'static [u8] {
    match op {
        Op::Add | Op::Lwx => &[0, 1],
        Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => &[0],
        _ => &[],
    }
}

/// Applies scaled-add creation; returns the number of consumers rewritten.
pub fn apply(seg: &mut Segment, max_shift: u8) -> u64 {
    apply_counted(seg, max_shift, &mut Registry::new())
}

/// [`apply`] with accept/reject telemetry recorded into `telemetry`
/// (`fill.scadd.accept` plus `fill.scadd.reject.{src_not_internal,
/// producer_not_sll, shift_out_of_range}`, one count per scalable operand
/// examined).
pub fn apply_counted(seg: &mut Segment, max_shift: u8, telemetry: &mut Registry) -> u64 {
    let mut created = 0;
    for j in 0..seg.slots.len() {
        if seg.slots[j].scadd.is_some() {
            continue;
        }
        for &k in scalable_operands(seg.slots[j].op) {
            let Some(SrcRef::Internal(i)) = seg.slots[j].srcs[k as usize] else {
                telemetry.inc("fill.scadd.reject.src_not_internal");
                continue;
            };
            let producer = &seg.slots[i as usize];
            if producer.op != Op::Sll || producer.is_move {
                telemetry.inc("fill.scadd.reject.producer_not_sll");
                continue;
            }
            let shift = producer.imm;
            if shift < 1 || shift > max_shift as i32 {
                telemetry.inc("fill.scadd.reject.shift_out_of_range");
                continue;
            }
            let new_src = producer.srcs[0].expect("SLL always has a source");
            let consumer = &mut seg.slots[j];
            consumer.srcs[k as usize] = Some(new_src);
            consumer.scadd = Some(ScAdd {
                shift: shift as u8,
                src: k,
            });
            created += 1;
            telemetry.inc("fill.scadd.accept");
            break; // only one operand may be scaled (paper §4.4)
        }
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use crate::opt::verify;
    use tracefill_isa::{ArchReg, Instr};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    fn seg_of(instrs: Vec<Instr>) -> Segment {
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap()
    }

    #[test]
    fn paper_example_collapses() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 2),
            Instr::alu(Op::Add, r(10), r(8), r(11)),
        ]);
        assert_eq!(apply(&mut seg, 3), 1);
        let c = &seg.slots[1];
        assert_eq!(c.scadd, Some(ScAdd { shift: 2, src: 0 }));
        assert_eq!(c.srcs[0], Some(SrcRef::LiveIn(r(9))));
        // The shift survives.
        assert_eq!(seg.slots[0].op, Op::Sll);
        verify::equivalent(&seg, 1).unwrap();
    }

    #[test]
    fn second_operand_can_be_scaled() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 3),
            Instr::alu(Op::Add, r(10), r(11), r(8)),
        ]);
        assert_eq!(apply(&mut seg, 3), 1);
        assert_eq!(seg.slots[1].scadd, Some(ScAdd { shift: 3, src: 1 }));
        verify::equivalent(&seg, 2).unwrap();
    }

    #[test]
    fn loads_scale_their_base() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 2),
            Instr::load(Op::Lw, r(10), r(8), 64),
            Instr::store(Op::Sw, r(10), r(8), 4),
            Instr::alu(Op::Lwx, r(12), r(11), r(8)),
        ]);
        assert_eq!(apply(&mut seg, 3), 3);
        assert_eq!(seg.slots[1].scadd, Some(ScAdd { shift: 2, src: 0 }));
        assert_eq!(seg.slots[2].scadd, Some(ScAdd { shift: 2, src: 0 }));
        assert_eq!(seg.slots[3].scadd, Some(ScAdd { shift: 2, src: 1 }));
        verify::equivalent(&seg, 3).unwrap();
    }

    #[test]
    fn shift_limit_enforced() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 4), // too far
            Instr::alu(Op::Add, r(10), r(8), r(11)),
        ]);
        assert_eq!(apply(&mut seg, 3), 0);
        // A wider limit accepts it.
        assert_eq!(apply(&mut seg, 4), 1);
        verify::equivalent(&seg, 4).unwrap();
    }

    #[test]
    fn only_one_operand_scales() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 1),
            Instr::alu_imm(Op::Sll, r(10), r(11), 2),
            Instr::alu(Op::Add, r(12), r(8), r(10)),
        ]);
        assert_eq!(apply(&mut seg, 3), 1);
        let c = &seg.slots[2];
        assert_eq!(c.scadd, Some(ScAdd { shift: 1, src: 0 }));
        // Operand 1 still depends on the second shift.
        assert_eq!(c.srcs[1], Some(SrcRef::Internal(1)));
        verify::equivalent(&seg, 5).unwrap();
    }

    #[test]
    fn zero_shift_never_collapses() {
        // sll by 0 is a move idiom, not a scaled add.
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Sll, r(8), r(9), 0),
            Instr::alu(Op::Add, r(10), r(8), r(11)),
        ]);
        assert_eq!(apply(&mut seg, 3), 0);
    }

    #[test]
    fn srl_does_not_collapse() {
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Srl, r(8), r(9), 2),
            Instr::alu(Op::Add, r(10), r(8), r(11)),
        ]);
        assert_eq!(apply(&mut seg, 3), 0);
    }
}
