//! §4.5 — Instruction placement for the clustered backend.
//!
//! Cross-cluster operand bypassing costs an extra cycle, and in the
//! baseline machine roughly a third of on-path instructions wait on a
//! value crossing clusters. Because dependencies inside a trace segment
//! are explicit, the fill unit is free to choose each instruction's issue
//! slot (and therefore cluster). The paper's heuristic, reproduced here:
//!
//! > For each issue slot the fill unit looks for an instruction that is
//! > dependent upon an instruction already placed in that cluster. If no
//! > dependent instruction is found, the first unplaced instruction is put
//! > in that issue slot.
//!
//! Marked register moves never visit a functional unit, so they are placed
//! after all computing instructions and their positions are irrelevant.

use crate::config::ClusterConfig;
use crate::segment::{Segment, SrcRef};
use tracefill_util::Registry;

/// Assigns issue positions (`seg.issue_pos`), steering dependency chains
/// into single clusters.
pub fn apply(seg: &mut Segment, clusters: &ClusterConfig) {
    apply_counted(seg, clusters, &mut Registry::new());
}

/// [`apply`] with telemetry recorded into `telemetry`:
/// `fill.placement.accept` (one per segment placed) and the per-slot
/// heuristic outcome, `fill.placement.pick.dependent` (an instruction
/// dependent on a value already in this cluster was found) versus
/// `fill.placement.pick.fallback` (first unplaced instruction taken).
pub fn apply_counted(seg: &mut Segment, clusters: &ClusterConfig, telemetry: &mut Registry) {
    let n = seg.slots.len();
    // Candidates in original order: instructions that occupy a real issue
    // slot (everything that is not a marked move).
    let mut placed = vec![false; n];
    let mut cluster_of_slot: Vec<Option<u8>> = vec![None; n];
    let compute: Vec<usize> = (0..n).filter(|&i| !seg.slots[i].is_move).collect();

    // The dependence that matters for bypass is the *latest* producer in
    // program order — it is the operand most likely to arrive last.
    let last_producer = |s: usize| -> Option<usize> {
        seg.slots[s]
            .src_refs()
            .filter_map(|(_, r)| match r {
                SrcRef::Internal(p) => Some(p as usize),
                SrcRef::LiveIn(_) => None,
            })
            .max()
    };

    let mut pos = 0u8;
    for _ in 0..compute.len() {
        let cluster = clusters.cluster_of(pos);
        // First unplaced compute instruction whose latest producer is
        // already placed in this cluster.
        let dependent = compute.iter().copied().find(|&s| {
            !placed[s] && last_producer(s).is_some_and(|p| cluster_of_slot[p] == Some(cluster))
        });
        telemetry.inc(if dependent.is_some() {
            "fill.placement.pick.dependent"
        } else {
            "fill.placement.pick.fallback"
        });
        let pick = dependent
            // Otherwise the first unplaced instruction, preserving order.
            .or_else(|| compute.iter().copied().find(|&s| !placed[s]))
            .expect("loop bound guarantees an unplaced candidate");
        placed[pick] = true;
        cluster_of_slot[pick] = Some(cluster);
        seg.issue_pos[pick] = pos;
        pos += 1;
    }
    // Moves take the remaining (unused) positions in order.
    for i in 0..n {
        if seg.slots[i].is_move {
            seg.issue_pos[i] = pos;
            pos += 1;
        }
    }
    debug_assert_eq!(pos as usize, n);
    telemetry.inc("fill.placement.accept");
}

/// Counts the internal dependency edges of a segment that cross clusters
/// under its current issue assignment — the static quantity placement
/// minimizes (the dynamic version is Figure 7).
pub fn cross_cluster_edges(seg: &Segment, clusters: &ClusterConfig) -> usize {
    let mut crossings = 0;
    for (j, slot) in seg.slots.iter().enumerate() {
        if slot.is_move {
            continue;
        }
        for (_, r) in slot.src_refs() {
            if let SrcRef::Internal(p) = r {
                if seg.slots[p as usize].is_move {
                    continue;
                }
                let pc = clusters.cluster_of(seg.issue_pos[p as usize]);
                let jc = clusters.cluster_of(seg.issue_pos[j]);
                if pc != jc {
                    crossings += 1;
                }
            }
        }
    }
    crossings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use crate::opt::verify;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    fn seg_of(instrs: Vec<Instr>) -> Segment {
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x1000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        build_segments(&inputs, &FillConfig::default())
            .pop()
            .unwrap()
    }

    /// Two interleaved 8-long chains: in program order they straddle the
    /// 4-slot cluster boundary; placement should untangle them.
    fn interleaved_chains() -> Segment {
        let mut instrs = Vec::new();
        // chain A in $t0, chain B in $t1, interleaved.
        for _ in 0..8 {
            instrs.push(Instr::alu_imm(Op::Sra, r(8), r(8), 1));
            instrs.push(Instr::alu_imm(Op::Sra, r(9), r(9), 1));
        }
        seg_of(instrs)
    }

    #[test]
    fn placement_reduces_crossings() {
        let clusters = ClusterConfig::default();
        let mut seg = interleaved_chains();
        let before = cross_cluster_edges(&seg, &clusters);
        apply(&mut seg, &clusters);
        let after = cross_cluster_edges(&seg, &clusters);
        assert!(
            after < before,
            "placement should reduce crossings ({before} -> {after})"
        );
        // With two chains of 8 on 4-wide clusters, the optimum is one
        // crossing per chain half: each chain occupies two clusters.
        assert!(after <= 2, "expected near-optimal placement, got {after}");
        seg.check_invariants().unwrap();
        verify::equivalent(&seg, 21).unwrap();
    }

    #[test]
    fn identity_when_no_internal_deps() {
        let clusters = ClusterConfig::default();
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Addi, r(8), r(20), 1),
            Instr::alu_imm(Op::Addi, r(9), r(21), 1),
            Instr::alu_imm(Op::Addi, r(10), r(22), 1),
        ]);
        apply(&mut seg, &clusters);
        assert_eq!(seg.issue_pos, vec![0, 1, 2]);
    }

    #[test]
    fn moves_are_placed_last() {
        let clusters = ClusterConfig::default();
        let mut seg = seg_of(vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 0), // move
            Instr::alu_imm(Op::Addi, r(10), r(20), 1),
            Instr::alu_imm(Op::Addi, r(11), r(10), 1),
        ]);
        crate::opt::moves::apply(&mut seg);
        apply(&mut seg, &clusters);
        assert_eq!(seg.issue_pos[0], 2); // the move goes last
        assert_eq!(seg.issue_pos[1], 0);
        assert_eq!(seg.issue_pos[2], 1);
    }

    #[test]
    fn result_is_always_a_permutation() {
        let clusters = ClusterConfig::default();
        for stride in 1..4usize {
            let mut instrs = Vec::new();
            for i in 0..12 {
                let src = 8 + ((i + stride) % 4) as u8;
                instrs.push(Instr::alu(Op::Add, r(8 + (i % 4) as u8), r(src), r(20)));
            }
            let mut seg = seg_of(instrs);
            apply(&mut seg, &clusters);
            seg.check_invariants().unwrap();
        }
    }
}
