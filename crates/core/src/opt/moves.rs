//! §4.2 — Register-move marking and dependence bypassing.
//!
//! The SSA ISA (like MIPS and Alpha) has no architectural move, so
//! compilers synthesize moves from ALU instructions (`addi rd, rs, 0`,
//! `add rd, rs, $zero`, …). The fill unit detects these idioms and marks
//! them with a single bit. The rename logic then *completes* a marked move
//! by aliasing the destination's mapping to the source's mapping — the
//! instruction never occupies a reservation station or functional unit.
//!
//! Because aliasing the mapping takes a pipelined rename read, instructions
//! *within the same segment* that source the move's result would eat a
//! cycle of delay; the fill unit therefore rewrites them to depend directly
//! on the move's source (last paragraph of §4.2).

use crate::segment::{Segment, SrcRef};
use tracefill_util::Registry;

/// Marks register moves and re-points their in-segment consumers.
///
/// Returns the number of instructions marked as moves.
pub fn apply(seg: &mut Segment) -> u64 {
    apply_counted(seg, &mut Registry::new())
}

/// [`apply`] with accept/reject telemetry recorded into `telemetry`
/// (`fill.moves.accept`, `fill.moves.reject.source_not_found`).
pub fn apply_counted(seg: &mut Segment, telemetry: &mut Registry) -> u64 {
    let mut marked = 0;
    for i in 0..seg.slots.len() {
        let slot = &seg.slots[i];
        if slot.is_move {
            continue;
        }
        let Some(src_reg) = slot.orig.as_register_move() else {
            continue;
        };
        // Locate the dataflow source of the moved value: the operand whose
        // architectural register is `src_reg`. Zero-idioms copy $zero.
        let loc = if src_reg.is_zero() {
            SrcRef::LiveIn(src_reg)
        } else {
            let mut found = None;
            for (k, r) in seg.slots[i].orig.srcs().enumerate() {
                if r == src_reg {
                    found = seg.slots[i].srcs[k];
                    break;
                }
            }
            match found {
                Some(loc) => loc,
                None => {
                    // Defensive; cannot happen for move idioms.
                    telemetry.inc("fill.moves.reject.source_not_found");
                    continue;
                }
            }
        };
        // If the source location is itself a marked move, chase it so
        // chains of moves collapse to the original producer.
        let loc = resolve_through_moves(seg, loc);

        let slot = &mut seg.slots[i];
        slot.is_move = true;
        slot.move_src = Some(loc);
        marked += 1;
        telemetry.inc("fill.moves.accept");

        // Re-point later consumers of this move's output.
        for j in (i + 1)..seg.slots.len() {
            for k in 0..2 {
                if seg.slots[j].srcs[k] == Some(SrcRef::Internal(i as u8)) {
                    seg.slots[j].srcs[k] = Some(loc);
                }
            }
        }
    }
    marked
}

/// Follows `loc` through already-marked moves to the true producer.
fn resolve_through_moves(seg: &Segment, mut loc: SrcRef) -> SrcRef {
    while let SrcRef::Internal(p) = loc {
        let s = &seg.slots[p as usize];
        match (s.is_move, s.move_src) {
            (true, Some(inner)) => loc = inner,
            _ => break,
        }
    }
    loc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_segments, FillInput};
    use crate::config::FillConfig;
    use crate::opt::verify;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    fn stream(instrs: Vec<Instr>) -> Segment {
        let inputs: Vec<FillInput> = instrs
            .into_iter()
            .enumerate()
            .map(|(i, instr)| FillInput {
                pc: 0x40_0000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect();
        let mut segs = build_segments(&inputs, &FillConfig::default());
        assert_eq!(segs.len(), 1, "test stream must form one segment");
        segs.pop().unwrap()
    }

    #[test]
    fn consumers_bypass_the_move() {
        let mut seg = stream(vec![
            Instr::alu(Op::Add, r(8), r(9), r(10)),   // t0 = t1 + t2
            Instr::alu_imm(Op::Addi, r(11), r(8), 0), // t3 = t0 (move)
            Instr::alu(Op::Add, r(12), r(11), r(11)), // t4 = t3 + t3
            Instr {
                op: Op::Syscall,
                rd: r(0),
                rs: r(0),
                rt: r(0),
                imm: 0,
            },
        ]);
        assert_eq!(apply(&mut seg), 1);
        assert!(seg.slots[1].is_move);
        assert_eq!(seg.slots[1].move_src, Some(SrcRef::Internal(0)));
        // Both operands of slot 2 now bypass the move.
        assert_eq!(seg.slots[2].srcs[0], Some(SrcRef::Internal(0)));
        assert_eq!(seg.slots[2].srcs[1], Some(SrcRef::Internal(0)));
        verify::equivalent(&seg, 7).unwrap();
    }

    #[test]
    fn move_chains_collapse() {
        let mut seg = stream(vec![
            Instr::alu(Op::Add, r(8), r(9), r(10)),
            Instr::alu_imm(Op::Addi, r(11), r(8), 0), // move t0 -> t3
            Instr::alu_imm(Op::Ori, r(12), r(11), 0), // move t3 -> t4
            Instr::alu(Op::Sub, r(13), r(12), r(9)),  // uses t4
        ]);
        assert_eq!(apply(&mut seg), 2);
        assert_eq!(seg.slots[2].move_src, Some(SrcRef::Internal(0)));
        assert_eq!(seg.slots[3].srcs[0], Some(SrcRef::Internal(0)));
        verify::equivalent(&seg, 7).unwrap();
    }

    #[test]
    fn zero_init_idioms_copy_zero() {
        let mut seg = stream(vec![
            Instr::alu(Op::And, r(8), r(9), r(0)), // t0 = 0
            Instr::alu(Op::Add, r(10), r(8), r(9)),
        ]);
        assert_eq!(apply(&mut seg), 1);
        assert_eq!(seg.slots[0].move_src, Some(SrcRef::LiveIn(r(0))));
        assert_eq!(seg.slots[1].srcs[0], Some(SrcRef::LiveIn(r(0))));
        verify::equivalent(&seg, 7).unwrap();
    }

    #[test]
    fn live_in_moves_point_at_live_in() {
        let mut seg = stream(vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 0), // move of live-in t1
            Instr::alu(Op::Add, r(10), r(8), r(8)),
        ]);
        apply(&mut seg);
        assert_eq!(seg.slots[0].move_src, Some(SrcRef::LiveIn(r(9))));
        assert_eq!(seg.slots[1].srcs[0], Some(SrcRef::LiveIn(r(9))));
        verify::equivalent(&seg, 7).unwrap();
    }

    #[test]
    fn non_moves_untouched() {
        let mut seg = stream(vec![
            Instr::alu_imm(Op::Addi, r(8), r(9), 4),
            Instr::alu(Op::Add, r(10), r(8), r(9)),
        ]);
        assert_eq!(apply(&mut seg), 0);
        assert!(!seg.slots[0].is_move);
    }
}
