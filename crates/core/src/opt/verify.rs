//! Dataflow-equivalence checking for optimized segments.
//!
//! Every fill-unit rewrite must leave the segment computing exactly the
//! architectural values the original instruction sequence computes. This
//! module checks that property by *concrete evaluation*: it executes both
//! forms over pseudo-random live-in values, treating loads as an
//! uninterpreted function of their effective address (both forms compute
//! the same addresses, so they see the same loaded values), and compares
//! every destination value, branch outcome and store effect.
//!
//! This is the workhorse of the crate's test suite; the fill unit also
//! runs it in debug builds after every optimization pass.

use crate::segment::{Segment, SrcRef};
use tracefill_isa::op::OpKind;
use tracefill_isa::reg::NUM_ARCH_REGS;
use tracefill_isa::semantics::{alu_result, branch_taken, effective_addr};
use tracefill_isa::ArchReg;

/// splitmix32 — cheap, well-distributed hash for synthetic values.
fn mix(mut x: u32) -> u32 {
    x = x.wrapping_add(0x9e37_79b9);
    x = (x ^ (x >> 16)).wrapping_mul(0x21f0_aaad);
    x = (x ^ (x >> 15)).wrapping_mul(0x735a_2d97);
    x ^ (x >> 15)
}

/// The synthetic value "loaded" from `addr` — an uninterpreted function
/// shared by both evaluation directions.
fn load_value(seed: u32, addr: u32) -> u32 {
    mix(seed ^ addr.rotate_left(7))
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct SlotEffect {
    dest_value: Option<u32>,
    taken: Option<bool>,
    mem_addr: Option<u32>,
    store_data: Option<u32>,
}

/// Evaluates the ORIGINAL instruction sequence over the live-in values.
fn eval_original(seg: &Segment, init: &[u32; NUM_ARCH_REGS], seed: u32) -> Vec<SlotEffect> {
    let mut regs = *init;
    regs[0] = 0;
    let mut out = Vec::with_capacity(seg.slots.len());
    for slot in &seg.slots {
        let i = slot.orig;
        let a = regs[i.rs.index()];
        let b = regs[i.rt.index()];
        let mut eff = SlotEffect::default();
        match i.op.kind() {
            OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div => {
                if let Some(d) = i.dest() {
                    let v = alu_result(i.op, a, b, i.imm);
                    regs[d.index()] = v;
                    eff.dest_value = Some(v);
                }
            }
            OpKind::Load => {
                let addr = effective_addr(i.op, a, b, i.imm);
                eff.mem_addr = Some(addr);
                if let Some(d) = i.dest() {
                    let v = load_value(seed, addr);
                    regs[d.index()] = v;
                    eff.dest_value = Some(v);
                }
            }
            OpKind::Store => {
                let addr = effective_addr(i.op, a, b, i.imm);
                eff.mem_addr = Some(addr);
                eff.store_data = Some(b);
            }
            OpKind::CondBranch => {
                eff.taken = Some(branch_taken(i.op, a, b));
            }
            OpKind::Jump => {
                if let Some(d) = i.dest() {
                    let v = slot.pc.wrapping_add(4);
                    regs[d.index()] = v;
                    eff.dest_value = Some(v);
                }
            }
            OpKind::System => {}
        }
        out.push(eff);
    }
    out
}

/// Evaluates the OPTIMIZED segment form: explicit dataflow sources,
/// marked moves, rewritten immediates, scaled-add annotations.
fn eval_optimized(seg: &Segment, init: &[u32; NUM_ARCH_REGS], seed: u32) -> Vec<SlotEffect> {
    let mut results: Vec<Option<u32>> = vec![None; seg.slots.len()];
    let mut out = Vec::with_capacity(seg.slots.len());
    let resolve = |results: &[Option<u32>], r: SrcRef| -> u32 {
        match r {
            SrcRef::LiveIn(reg) => {
                if reg.is_zero() {
                    0
                } else {
                    init[reg.index()]
                }
            }
            SrcRef::Internal(p) => {
                results[p as usize].expect("internal reference to value-less slot")
            }
        }
    };
    for (idx, slot) in seg.slots.iter().enumerate() {
        let mut eff = SlotEffect::default();
        if slot.is_move {
            let v = resolve(&results, slot.move_src.expect("marked move without source"));
            results[idx] = Some(v);
            eff.dest_value = Some(v);
            out.push(eff);
            continue;
        }
        // Operand values, with the scaled-add shift applied.
        let mut vals = [0u32; 2];
        for (k, r) in slot.src_refs() {
            let mut v = resolve(&results, r);
            if slot.scadd.map(|s| s.src as usize) == Some(k) {
                v = v.wrapping_shl(slot.scadd.unwrap().shift as u32);
            }
            vals[k] = v;
        }
        let (a, b) = (vals[0], vals[1]);
        match slot.op.kind() {
            OpKind::IntAlu | OpKind::Shift | OpKind::Mul | OpKind::Div => {
                if slot.dest.is_some() {
                    let v = alu_result(slot.op, a, b, slot.imm);
                    results[idx] = Some(v);
                    eff.dest_value = Some(v);
                }
            }
            OpKind::Load => {
                let addr = effective_addr(slot.op, a, b, slot.imm);
                eff.mem_addr = Some(addr);
                if slot.dest.is_some() {
                    let v = load_value(seed, addr);
                    results[idx] = Some(v);
                    eff.dest_value = Some(v);
                }
            }
            OpKind::Store => {
                let addr = effective_addr(slot.op, a, b, slot.imm);
                eff.mem_addr = Some(addr);
                eff.store_data = Some(b);
            }
            OpKind::CondBranch => {
                eff.taken = Some(branch_taken(slot.op, a, b));
            }
            OpKind::Jump => {
                if slot.dest.is_some() {
                    let v = slot.pc.wrapping_add(4);
                    results[idx] = Some(v);
                    eff.dest_value = Some(v);
                }
            }
            OpKind::System => {}
        }
        out.push(eff);
    }
    out
}

/// Checks that the optimized segment is dataflow-equivalent to its
/// original instruction sequence, over several random live-in assignments
/// plus two adversarial ones.
///
/// The random rounds exercise realistic dataflow; the all-ones and
/// alternating-bit rounds exist for fault detection — a single flipped bit
/// in a bitwise immediate (`andi`/`ori`/`xori`) only changes the result
/// when the live-in has that bit set, so a purely random probe misses it
/// with probability `2^-rounds`. The dense patterns make any immediate
/// corruption of a bitwise operation visible deterministically.
///
/// # Errors
///
/// Returns a description of the first diverging slot.
pub fn equivalent(seg: &Segment, seed: u64) -> Result<(), String> {
    for round in 0..6u32 {
        let s = mix(seed as u32 ^ mix((seed >> 32) as u32 ^ round));
        let mut init = [0u32; NUM_ARCH_REGS];
        for r in ArchReg::all() {
            init[r.index()] = mix(s ^ (r.index() as u32).wrapping_mul(0x85eb_ca6b));
        }
        init[0] = 0;
        // Half the random rounds use small values so branch predicates and
        // address arithmetic exercise both outcomes, not just random-noise
        // paths.
        if round % 2 == 1 && round < 4 {
            for v in init.iter_mut().skip(1) {
                *v %= 64;
            }
        }
        // Adversarial rounds: dense bit patterns that surface single-bit
        // immediate corruption in bitwise operations.
        if round == 4 {
            for v in init.iter_mut().skip(1) {
                *v = 0xffff_ffff;
            }
        }
        if round == 5 {
            for (i, v) in init.iter_mut().enumerate().skip(1) {
                *v = if i % 2 == 0 { 0xaaaa_aaaa } else { 0x5555_5555 };
            }
        }
        let orig = eval_original(seg, &init, s);
        let opt = eval_optimized(seg, &init, s);
        for (i, (o, p)) in orig.iter().zip(&opt).enumerate() {
            if o != p {
                return Err(format!(
                    "slot {i} ({}) diverges under seed {seed:#x} round {round}:\n  original : {o:?}\n  optimized: {p:?}",
                    seg.slots[i].orig
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::simple_segment;
    use crate::segment::ScAdd;
    use tracefill_isa::Op;

    #[test]
    fn untouched_segment_is_equivalent() {
        equivalent(&simple_segment(), 1).unwrap();
    }

    #[test]
    fn a_wrong_rewrite_is_caught() {
        let mut seg = simple_segment();
        // Corrupt an immediate without a compensating source rewrite.
        seg.slots[0].imm += 4;
        assert!(equivalent(&seg, 1).is_err());
    }

    #[test]
    fn a_wrong_scadd_is_caught() {
        let mut seg = simple_segment();
        // Annotate a scaled add whose producer was not a shift.
        let j = seg
            .slots
            .iter()
            .position(|s| s.op == Op::Add)
            .expect("sample has an add");
        seg.slots[j].scadd = Some(ScAdd { shift: 2, src: 0 });
        assert!(equivalent(&seg, 1).is_err());
    }

    #[test]
    fn a_wrong_move_is_caught() {
        let mut seg = simple_segment();
        let j = seg
            .slots
            .iter()
            .position(|s| s.dest.is_some() && s.orig.as_register_move().is_none())
            .unwrap();
        seg.slots[j].is_move = true;
        seg.slots[j].move_src = Some(SrcRef::LiveIn(ArchReg::gpr(9)));
        assert!(equivalent(&seg, 1).is_err());
    }
}
