//! The fill unit: segment collection, optimization and the fill pipeline.
//!
//! The fill unit sits off the critical path (figure 1 of the paper): it
//! watches the retire stream, builds trace segments, applies the enabled
//! dynamic optimizations and — after a configurable fill-pipeline latency —
//! hands finished segments to the trace cache. Because it only consumes
//! *retired* (correct-path) instructions, its view of the program is always
//! architecturally continuous, even across mispredictions.

use crate::builder::{FillInput, SegmentBuilder};
use crate::config::FillConfig;
use crate::opt::{self, OptCounts};
use crate::quarantine::{Escalation, Quarantine, QuarantineConfig};
use crate::segment::{SegEnd, Segment};
use std::collections::VecDeque;
use std::sync::Arc;
use tracefill_policy::{PassController, PassMask};
use tracefill_util::Registry;

/// Histogram bucket bounds for finalized-segment lengths (instructions).
pub const SEGMENT_LEN_BOUNDS: &[u64] = &[1, 2, 4, 6, 8, 10, 12, 16, 24, 32];

/// Running statistics of the fill unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillStats {
    /// Segments finalized.
    pub segments: u64,
    /// Instruction slots across all finalized segments.
    pub slots: u64,
    /// Transformations applied, by kind.
    pub opts: OptCounts,
}

impl FillStats {
    /// Mean instructions per finalized segment.
    pub fn mean_segment_len(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.slots as f64 / self.segments as f64
        }
    }
}

/// A segment the strict verifier rejected after optimization. The segment
/// itself is dropped (never reaches the trace cache); this record carries
/// everything needed to report the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFailure {
    /// Fill-unit id of the rejected segment.
    pub seg_id: u64,
    /// Its start address.
    pub start_pc: u32,
    /// Its length in instruction slots.
    pub len: usize,
    /// What the verifier objected to.
    pub detail: String,
    /// Which optimization passes had touched the segment.
    pub passes: Vec<&'static str>,
    /// Injected-fault note, if the segment had been corrupted.
    pub fault: Option<String>,
    /// The segment's termination cause (its quarantine provenance class).
    pub end: &'static str,
}

/// The fill unit.
///
/// # Examples
///
/// ```
/// use tracefill_core::fill::FillUnit;
/// use tracefill_core::builder::FillInput;
/// use tracefill_core::config::FillConfig;
/// use tracefill_isa::{Instr, Op, ArchReg};
///
/// let mut fu = FillUnit::new(FillConfig { latency: 3, ..FillConfig::default() });
/// // Retire a serializing instruction: terminates a 1-slot segment.
/// fu.retire(FillInput {
///     pc: 0x40_0000,
///     instr: Instr { op: Op::Syscall, rd: ArchReg::ZERO, rs: ArchReg::ZERO,
///                    rt: ArchReg::ZERO, imm: 0 },
///     taken: None,
///     promoted: None,
///     fetch_miss_head: false,
/// }, 100);
/// assert!(fu.drain_ready(102).is_empty());     // still in the fill pipe
/// assert_eq!(fu.drain_ready(103).len(), 1);    // latency elapsed
/// ```
#[derive(Debug)]
pub struct FillUnit {
    config: FillConfig,
    builder: SegmentBuilder,
    /// Segments traversing the fill pipeline: `(ready_cycle, segment)`.
    pipe: VecDeque<(u64, Arc<Segment>)>,
    stats: FillStats,
    /// Accept/reject-reason counters from the optimization passes, plus
    /// segment-shape distributions (`fill.segment_len`, `fill.seg_end.*`).
    telemetry: Registry,
    /// Next segment id (monotonic from 1; 0 means "no fill unit").
    next_seg_id: u64,
    /// First strict-verification failure, if any (see
    /// [`FillConfig::strict_verify`]).
    verify_failure: Option<VerifyFailure>,
    /// The online pass controller, when [`FillConfig::controller`] enables
    /// one. `None` reproduces the static machine exactly.
    controller: Option<PassController>,
    /// The self-repair escalation ladder, when the simulator enables it.
    /// `None` (the default) leaves the finalize path bit-identical to the
    /// machine without self-repair.
    quarantine: Option<Quarantine>,
}

impl FillUnit {
    /// Creates a fill unit with an empty pipeline.
    pub fn new(config: FillConfig) -> FillUnit {
        FillUnit {
            controller: PassController::new(config.controller),
            config,
            builder: SegmentBuilder::new(),
            pipe: VecDeque::new(),
            stats: FillStats::default(),
            telemetry: Registry::new(),
            next_seg_id: 1,
            verify_failure: None,
            quarantine: None,
        }
    }

    /// Arms the self-repair escalation ladder. Segments of a quarantined
    /// `(pass, class)` pair are built without that pass from here on.
    pub fn enable_quarantine(&mut self, cfg: QuarantineConfig) {
        self.quarantine = Some(Quarantine::new(cfg));
    }

    /// The escalation ladder, if armed.
    pub fn quarantine(&self) -> Option<&Quarantine> {
        self.quarantine.as_ref()
    }

    /// Charges one repair offense to `passes` under provenance class
    /// `class` and applies any resulting ladder transitions: `Disabled`
    /// escalations are also pushed into the online pass controller (when
    /// one is running) so its arm statistics reflect the shrunken pass
    /// set. Returns the transitions for reporting. No-op (empty) when the
    /// ladder is not armed.
    pub fn record_offense(
        &mut self,
        passes: &[&'static str],
        class: &'static str,
    ) -> Vec<Escalation> {
        let Some(q) = self.quarantine.as_mut() else {
            return Vec::new();
        };
        let escalations = q.record_offense(passes, class);
        if let Some(c) = self.controller.as_mut() {
            for esc in &escalations {
                if let Escalation::Disabled { pass } = esc {
                    c.block_passes(PassMask::from_token(pass));
                }
            }
        }
        escalations
    }

    /// Discards the builder's partial (not yet finalized) segment, leaving
    /// in-flight pipeline segments untouched. Used by self-repair: the
    /// partial segment straddles the divergence point and must not be
    /// cached.
    pub fn flush_partial(&mut self) {
        let _ = self.builder.finalize(SegEnd::Flushed);
    }

    /// The active configuration.
    pub fn config(&self) -> &FillConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> FillStats {
        self.stats
    }

    /// Optimization accept/reject counters and segment-shape distributions
    /// accumulated so far (`fill.<pass>.accept`,
    /// `fill.<pass>.reject.<reason>`, `fill.segment_len`,
    /// `fill.seg_end.<cause>`).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Offers one retired instruction at cycle `now`.
    pub fn retire(&mut self, input: FillInput, now: u64) {
        if let Some(c) = self.controller.as_mut() {
            c.on_retire(now);
        }
        // Fetch-aligned fill: this address is one the fetch engine looked
        // up and missed; start the next segment exactly here so the fill
        // converges onto the fetch-address chain.
        if input.fetch_miss_head && !self.builder.is_empty() {
            self.finalize(SegEnd::FetchAligned, now);
        }
        if !self.builder.can_accept(&input, &self.config) {
            let end = if self.builder.len() >= self.config.max_slots {
                SegEnd::Full
            } else if self.config.align_loops && self.builder.start_pc() == Some(input.pc) {
                SegEnd::Loop
            } else {
                SegEnd::BranchLimit
            };
            self.finalize(end, now);
        }
        self.builder.push(input);
        if let Some(end) = self.builder.must_terminate_after(&input, &self.config) {
            self.finalize(end, now);
        }
    }

    fn finalize(&mut self, end: SegEnd, now: u64) {
        let Some(mut seg) = self.builder.finalize(end) else {
            return;
        };
        seg.provenance.seg_id = self.next_seg_id;
        seg.provenance.build_cycle = now;
        self.next_seg_id += 1;
        // The controller's current arm gates which passes run this epoch;
        // pass parameters always come from the static configuration.
        let mut opts = match &self.controller {
            Some(c) => self.config.opts.with_mask(c.current()),
            None => self.config.opts,
        };
        // The repair ladder then subtracts quarantined/disabled passes for
        // this segment's provenance class. An unarmed or empty ladder
        // leaves `opts` untouched, preserving bit-identity with the
        // machine without self-repair.
        if let Some(q) = &self.quarantine {
            if q.any_blocked() {
                let blocked = q.blocked_for(end.name());
                if !blocked.is_empty() {
                    opts = opts.with_mask(opts.to_mask().minus(blocked));
                }
            }
        }
        let counts =
            opt::apply_all_telemetry(&mut seg, &opts, &self.config.clusters, &mut self.telemetry);
        self.stats.segments += 1;
        self.stats.slots += seg.slots.len() as u64;
        self.stats.opts.add(counts);
        self.telemetry.observe(
            "fill.segment_len",
            SEGMENT_LEN_BOUNDS,
            seg.slots.len() as u64,
        );
        self.telemetry.inc(match end {
            SegEnd::Full => "fill.seg_end.full",
            SegEnd::BranchLimit => "fill.seg_end.branch_limit",
            SegEnd::Indirect => "fill.seg_end.indirect",
            SegEnd::Serialize => "fill.seg_end.serialize",
            SegEnd::Loop => "fill.seg_end.loop",
            SegEnd::FetchAligned => "fill.seg_end.fetch_aligned",
            SegEnd::Flushed => "fill.seg_end.flushed",
        });
        if let Some(c) = self.controller.as_mut() {
            if let Some(ep) = c.on_fill(now) {
                self.telemetry.inc("policy.epochs");
                self.telemetry
                    .inc(&format!("policy.arm.{}", ep.arm.label()));
                self.telemetry
                    .add("policy.reward_milli", (ep.reward * 1000.0) as u64);
            }
        }
        // Always-on verification (oracle runs): a segment the passes broke
        // is dropped on the floor rather than cached, and the first failure
        // is retained for the simulator to surface as a divergence.
        if self.config.strict_verify {
            if let Err(detail) = opt::strict_check(&seg) {
                self.telemetry.inc("fill.verify.fail");
                if self.verify_failure.is_none() {
                    self.verify_failure = Some(VerifyFailure {
                        seg_id: seg.provenance.seg_id,
                        start_pc: seg.start_pc,
                        len: seg.slots.len(),
                        detail,
                        passes: seg.provenance.passes(),
                        fault: seg.provenance.fault.clone(),
                        end: end.name(),
                    });
                }
                return;
            }
        }
        self.pipe
            .push_back((now + self.config.latency as u64, Arc::new(seg)));
    }

    /// Removes and returns every segment whose fill latency has elapsed by
    /// cycle `now`, in completion order.
    pub fn drain_ready(&mut self, now: u64) -> Vec<Arc<Segment>> {
        let mut out = Vec::new();
        while let Some((ready, _)) = self.pipe.front() {
            if *ready <= now {
                out.push(self.pipe.pop_front().unwrap().1);
            } else {
                break;
            }
        }
        out
    }

    /// Number of segments currently traversing the fill pipeline.
    pub fn in_flight(&self) -> usize {
        self.pipe.len()
    }

    /// Takes the first strict-verification failure, if one occurred (see
    /// [`FillConfig::strict_verify`]).
    pub fn take_verify_failure(&mut self) -> Option<VerifyFailure> {
        self.verify_failure.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;
    use tracefill_isa::{ArchReg, Instr, Op};

    fn r(n: u8) -> ArchReg {
        ArchReg::gpr(n)
    }

    fn addi(d: u8, s: u8, imm: i32) -> Instr {
        Instr::alu_imm(Op::Addi, r(d), r(s), imm)
    }

    fn feed(fu: &mut FillUnit, pc: u32, instr: Instr, now: u64) {
        fu.retire(
            FillInput {
                pc,
                instr,
                taken: instr.op.is_cond_branch().then_some(false),
                promoted: None,
                fetch_miss_head: false,
            },
            now,
        );
    }

    #[test]
    fn latency_orders_delivery() {
        let mut fu = FillUnit::new(FillConfig {
            latency: 10,
            ..FillConfig::default()
        });
        // 32 adds -> two full 16-slot segments, finalized at the cycle of
        // their 16th retire.
        for i in 0..32u32 {
            feed(&mut fu, 0x1000 + 4 * i, addi(8, 8, 1), i as u64);
        }
        assert_eq!(fu.in_flight(), 2);
        assert!(fu.drain_ready(24).is_empty());
        assert_eq!(fu.drain_ready(25).len(), 1); // finalized at 15, ready at 25
        assert_eq!(fu.drain_ready(41).len(), 1); // finalized at 31, ready at 41
    }

    #[test]
    fn stats_count_transformations() {
        let mut fu = FillUnit::new(FillConfig {
            opts: OptConfig::all(),
            latency: 0,
            ..FillConfig::default()
        });
        // A move plus a dependent instruction, then a serializer.
        feed(&mut fu, 0x1000, addi(8, 9, 0), 0); // move idiom
        feed(&mut fu, 0x1004, addi(10, 8, 4), 1);
        feed(
            &mut fu,
            0x1008,
            Instr {
                op: Op::Syscall,
                rd: r(0),
                rs: r(0),
                rt: r(0),
                imm: 0,
            },
            2,
        );
        let st = fu.stats();
        assert_eq!(st.segments, 1);
        assert_eq!(st.slots, 3);
        assert_eq!(st.opts.moves, 1);
        assert!((st.mean_segment_len() - 3.0).abs() < 1e-12);
        let segs = fu.drain_ready(2);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].slots[0].is_move);
    }

    #[test]
    fn controller_arm_gates_passes() {
        use crate::config::{ControllerConfig, ControllerMode, PassMask};
        // Static-NONE arm: even with every pass configured on, nothing runs.
        let mut fu = FillUnit::new(FillConfig {
            opts: OptConfig::all(),
            latency: 0,
            controller: ControllerConfig {
                mode: ControllerMode::Static(PassMask::NONE),
                epoch_fills: 2,
                seed: 0,
            },
            ..FillConfig::default()
        });
        let syscall = Instr {
            op: Op::Syscall,
            rd: r(0),
            rs: r(0),
            rt: r(0),
            imm: 0,
        };
        for i in 0..4u64 {
            let base = 0x1000 + (i as u32) * 0x100;
            feed(&mut fu, base, addi(8, 9, 0), i * 10); // move idiom
            feed(&mut fu, base + 4, addi(10, 8, 4), i * 10 + 1);
            feed(&mut fu, base + 8, syscall, i * 10 + 2);
        }
        assert_eq!(fu.stats().opts.moves, 0, "NONE arm disables the pass");
        // 4 fills at epoch_fills=2 => 2 closed epochs in telemetry.
        assert_eq!(fu.telemetry().counter("policy.epochs"), 2);
        assert_eq!(fu.telemetry().counter("policy.arm.none"), 2);
    }

    #[test]
    fn quarantine_gates_passes_by_provenance_class() {
        let syscall = Instr {
            op: Op::Syscall,
            rd: r(0),
            rs: r(0),
            rt: r(0),
            imm: 0,
        };
        let mut fu = FillUnit::new(FillConfig {
            opts: OptConfig::all(),
            latency: 0,
            ..FillConfig::default()
        });
        fu.enable_quarantine(QuarantineConfig {
            quarantine_after: 1,
            disable_after: 100,
        });
        // Quarantine `moves` for serialize-terminated segments only.
        let esc = fu.record_offense(&["moves"], "serialize");
        assert_eq!(esc.len(), 1);
        // A serialize-terminated segment with a move idiom: pass gated off.
        feed(&mut fu, 0x1000, addi(8, 9, 0), 0);
        feed(&mut fu, 0x1004, addi(10, 8, 4), 1);
        feed(&mut fu, 0x1008, syscall, 2);
        assert_eq!(fu.stats().opts.moves, 0, "quarantined for this class");
        // A full (16-slot) segment with the same idiom: pass still runs.
        feed(&mut fu, 0x2000, addi(8, 9, 0), 10);
        feed(&mut fu, 0x2004, addi(10, 8, 4), 11);
        for i in 2..16u32 {
            feed(&mut fu, 0x2000 + 4 * i, addi(11, 11, 1), 10 + u64::from(i));
        }
        assert_eq!(fu.stats().opts.moves, 1, "other classes unaffected");
    }

    #[test]
    fn flush_partial_discards_without_caching() {
        let mut fu = FillUnit::new(FillConfig {
            latency: 0,
            ..FillConfig::default()
        });
        feed(&mut fu, 0x1000, addi(8, 8, 1), 0);
        fu.flush_partial();
        assert_eq!(fu.in_flight(), 0);
        assert_eq!(fu.stats().segments, 0);
        assert!(fu.drain_ready(1000).is_empty());
    }

    #[test]
    fn partial_segments_stay_pending() {
        let mut fu = FillUnit::new(FillConfig::default());
        feed(&mut fu, 0x1000, addi(8, 8, 1), 0);
        assert_eq!(fu.in_flight(), 0);
        assert!(fu.drain_ready(1000).is_empty());
    }
}
