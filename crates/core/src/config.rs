//! Configuration of the fill unit, trace cache and optimization passes.

pub use tracefill_policy::{ControllerConfig, ControllerMode, PassMask, ReplacementKind};

/// Which dynamic trace optimizations the fill unit applies, plus their
/// parameters (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// §4.2: mark register-to-register moves for execution in rename.
    pub moves: bool,
    /// §4.3: combine immediates of dependent immediate instructions.
    pub reassoc: bool,
    /// Restrict reassociation to pairs that cross a control-flow boundary
    /// (the paper enforces this to isolate the fill unit's contribution
    /// from what the compiler already did inside basic blocks).
    pub reassoc_cross_block_only: bool,
    /// §4.4: collapse short immediate shifts into dependent adds and
    /// memory-address computations.
    pub scadd: bool,
    /// Largest shift distance a scaled add may absorb (the paper limits
    /// this to 3 bits to bound the extra ALU path length).
    pub scadd_max_shift: u8,
    /// §4.5: reorder instructions within the line to keep dependency
    /// chains inside one execution cluster.
    pub placement: bool,
    /// Extension (paper §5, future work): common subexpression
    /// elimination within the segment. Off by default — it is not one of
    /// the paper's four evaluated optimizations.
    pub cse: bool,
}

impl OptConfig {
    /// Every optimization off — the baseline configuration.
    pub fn none() -> OptConfig {
        OptConfig {
            moves: false,
            reassoc: false,
            reassoc_cross_block_only: true,
            scadd: false,
            scadd_max_shift: 3,
            placement: false,
            cse: false,
        }
    }

    /// Every optimization on with the paper's parameters.
    pub fn all() -> OptConfig {
        OptConfig {
            moves: true,
            reassoc: true,
            reassoc_cross_block_only: true,
            scadd: true,
            scadd_max_shift: 3,
            placement: true,
            cse: false,
        }
    }

    /// Baseline plus only register-move marking (Figure 3).
    pub fn only_moves() -> OptConfig {
        OptConfig {
            moves: true,
            ..OptConfig::none()
        }
    }

    /// Baseline plus only reassociation (Figure 4).
    pub fn only_reassoc() -> OptConfig {
        OptConfig {
            reassoc: true,
            ..OptConfig::none()
        }
    }

    /// Baseline plus only scaled adds (Figure 5).
    pub fn only_scadd() -> OptConfig {
        OptConfig {
            scadd: true,
            ..OptConfig::none()
        }
    }

    /// Baseline plus only instruction placement (Figure 6).
    pub fn only_placement() -> OptConfig {
        OptConfig {
            placement: true,
            ..OptConfig::none()
        }
    }

    /// Parses an opt-set spec (`all`, `none`, or a comma list like
    /// `moves,scadd`) into a configuration with the paper's parameters.
    ///
    /// This is the single opt-set name parser for the workspace — the
    /// `tracefill` CLI and the harness grid both delegate here, which in
    /// turn delegates token handling to [`PassMask::parse`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn from_name(spec: &str) -> Result<OptConfig, String> {
        PassMask::parse(spec).map(OptConfig::from_mask)
    }

    /// The configuration enabling exactly the passes in `mask`, with the
    /// paper's parameters for each.
    pub fn from_mask(mask: PassMask) -> OptConfig {
        OptConfig::none().with_mask(mask)
    }

    /// The enabled passes as a [`PassMask`] (parameters are dropped).
    pub fn to_mask(&self) -> PassMask {
        let mut m = PassMask::NONE;
        for (on, bit) in [
            (self.moves, PassMask::MOVES),
            (self.reassoc, PassMask::REASSOC),
            (self.scadd, PassMask::SCADD),
            (self.placement, PassMask::PLACEMENT),
            (self.cse, PassMask::CSE),
        ] {
            if on {
                m = m.union(bit);
            }
        }
        m
    }

    /// This configuration with its pass enables overridden by `mask`,
    /// keeping all pass parameters (`scadd_max_shift`,
    /// `reassoc_cross_block_only`) untouched. The controller applies its
    /// current arm through this, so `with_mask(self.to_mask())` is the
    /// identity.
    pub fn with_mask(&self, mask: PassMask) -> OptConfig {
        OptConfig {
            moves: mask.contains(PassMask::MOVES),
            reassoc: mask.contains(PassMask::REASSOC),
            scadd: mask.contains(PassMask::SCADD),
            placement: mask.contains(PassMask::PLACEMENT),
            cse: mask.contains(PassMask::CSE),
            ..*self
        }
    }

    /// The canonical opt-set label (`none`, `all`, or a comma list) —
    /// the inverse of [`OptConfig::from_name`] for paper-parameter
    /// configurations.
    pub fn label(&self) -> String {
        if *self == OptConfig::all() {
            return "all".to_string();
        }
        self.to_mask().label()
    }
}

impl Default for OptConfig {
    /// Defaults to [`OptConfig::none`] (the baseline machine).
    fn default() -> OptConfig {
        OptConfig::none()
    }
}

/// Geometry of the execution clusters, needed by the placement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of symmetric clusters (the paper: 4).
    pub clusters: u8,
    /// Functional units (= issue slots) per cluster (the paper: 4).
    pub width: u8,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            clusters: 4,
            width: 4,
        }
    }
}

impl ClusterConfig {
    /// Total issue slots per cycle.
    pub fn total_slots(&self) -> usize {
        self.clusters as usize * self.width as usize
    }

    /// The cluster an issue slot belongs to (slots `0..width` are cluster
    /// 0, the next `width` cluster 1, …).
    pub fn cluster_of(&self, issue_slot: u8) -> u8 {
        issue_slot / self.width
    }
}

/// Configuration of the fill unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillConfig {
    /// Maximum instructions per trace segment (the paper: 16).
    pub max_slots: usize,
    /// Maximum conditional branches per segment (the paper: 3).
    pub max_cond_branches: usize,
    /// Latency, in cycles, between segment finalization and trace cache
    /// write (the paper evaluates 1, 5 and 10 and finds the impact
    /// negligible).
    pub latency: u32,
    /// Trace packing: keep filling past block boundaries until the segment
    /// is full (the paper's baseline has this on).
    pub packing: bool,
    /// Branch promotion via the bias table (the paper's baseline: on).
    pub promotion: bool,
    /// Loop-aligned fill: finalize the pending segment when the retire
    /// stream wraps back to the segment's own start address. Keeps hot
    /// loop segments starting at stable addresses (whole iterations per
    /// line) instead of letting segment boundaries rotate through the
    /// loop body and thrash the trace cache.
    pub align_loops: bool,
    /// The optimization passes.
    pub opts: OptConfig,
    /// Cluster geometry used by the placement pass.
    pub clusters: ClusterConfig,
    /// Always-on per-segment verification: after the optimization passes
    /// run, re-check structural invariants *and* dataflow equivalence
    /// ([`opt::strict_check`](crate::opt::strict_check)) even in release
    /// builds. A failing segment is dropped (never cached) and reported
    /// through [`FillUnit::take_verify_failure`].
    ///
    /// Off by default for raw-throughput campaigns; the simulator's oracle
    /// mode turns it on.
    ///
    /// [`FillUnit::take_verify_failure`]: crate::fill::FillUnit::take_verify_failure
    pub strict_verify: bool,
    /// The online pass controller (`tracefill-policy`). Off by default:
    /// the fill unit applies [`FillConfig::opts`] unconditionally, exactly
    /// as the paper does. When enabled, the controller re-chooses the
    /// enabled pass subset every [`ControllerConfig::epoch_fills`]
    /// segments; pass *parameters* still come from [`FillConfig::opts`].
    pub controller: ControllerConfig,
}

impl Default for FillConfig {
    fn default() -> FillConfig {
        FillConfig {
            max_slots: 16,
            max_cond_branches: 3,
            latency: 1,
            packing: true,
            promotion: true,
            align_loops: true,
            opts: OptConfig::none(),
            clusters: ClusterConfig::default(),
            strict_verify: false,
            controller: ControllerConfig::default(),
        }
    }
}

/// Configuration of the trace cache proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// Total line entries (the paper: 2048, ≈156 KB of storage).
    pub entries: u32,
    /// Associativity (the paper: 4).
    pub ways: u32,
    /// Replacement policy (`tracefill-policy`). LRU by default — the
    /// paper machine's behavior.
    pub policy: ReplacementKind,
}

impl Default for TraceCacheConfig {
    fn default() -> TraceCacheConfig {
        TraceCacheConfig {
            entries: 2048,
            ways: 4,
            policy: ReplacementKind::Lru,
        }
    }
}

impl TraceCacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` into a power of two.
    pub fn sets(&self) -> u32 {
        assert_eq!(self.entries % self.ways, 0);
        let sets = self.entries / self.ways;
        assert!(sets.is_power_of_two());
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let f = FillConfig::default();
        assert_eq!(f.max_slots, 16);
        assert_eq!(f.max_cond_branches, 3);
        assert!(f.packing && f.promotion);
        assert_eq!(TraceCacheConfig::default().sets(), 512);
        assert_eq!(ClusterConfig::default().total_slots(), 16);
    }

    #[test]
    fn cluster_mapping() {
        let c = ClusterConfig::default();
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(3), 0);
        assert_eq!(c.cluster_of(4), 1);
        assert_eq!(c.cluster_of(15), 3);
    }

    #[test]
    fn single_opt_constructors() {
        assert!(OptConfig::only_moves().moves);
        assert!(!OptConfig::only_moves().scadd);
        assert!(OptConfig::all().placement);
        assert_eq!(OptConfig::default(), OptConfig::none());
    }

    #[test]
    fn from_name_matches_constructors() {
        assert_eq!(OptConfig::from_name("none").unwrap(), OptConfig::none());
        assert_eq!(OptConfig::from_name("all").unwrap(), OptConfig::all());
        assert_eq!(
            OptConfig::from_name("moves").unwrap(),
            OptConfig::only_moves()
        );
        assert_eq!(
            OptConfig::from_name("reassoc").unwrap(),
            OptConfig::only_reassoc()
        );
        assert_eq!(
            OptConfig::from_name("scadd").unwrap(),
            OptConfig::only_scadd()
        );
        assert_eq!(
            OptConfig::from_name("placement").unwrap(),
            OptConfig::only_placement()
        );
        assert!(OptConfig::from_name("frob").is_err());
    }

    #[test]
    fn mask_roundtrip_preserves_params() {
        let mut cfg = OptConfig::all();
        cfg.scadd_max_shift = 5;
        cfg.reassoc_cross_block_only = false;
        let back = cfg.with_mask(cfg.to_mask());
        assert_eq!(back, cfg, "with_mask(to_mask()) is the identity");
        let off = cfg.with_mask(PassMask::NONE);
        assert!(!off.moves && !off.reassoc && !off.scadd && !off.placement && !off.cse);
        assert_eq!(off.scadd_max_shift, 5, "parameters survive mask changes");
    }

    #[test]
    fn label_roundtrips_through_from_name() {
        for spec in ["none", "all", "moves", "moves,scadd", "cse"] {
            let cfg = OptConfig::from_name(spec).unwrap();
            assert_eq!(cfg.label(), spec);
            assert_eq!(OptConfig::from_name(&cfg.label()).unwrap(), cfg);
        }
    }

    #[test]
    fn policy_defaults_preserve_paper_machine() {
        assert_eq!(TraceCacheConfig::default().policy, ReplacementKind::Lru);
        assert_eq!(FillConfig::default().controller.mode, ControllerMode::Off);
    }
}
