//! Pass quarantine: the self-repair escalation ladder's memory.
//!
//! When the machine repairs a divergence (or a strict-verify failure at
//! the fill boundary), the offense is charged to every optimization pass
//! that touched the offending segment, keyed by the segment's
//! **provenance class** — the fill unit's termination reason
//! (`SegEnd::name()`): loop bodies, branch-limited traces, fetch-aligned
//! segments and so on behave differently under each pass, so repair is
//! surgical rather than machine-wide.
//!
//! The ladder has three rungs:
//!
//! 1. **first offense** — the caller invalidates the offending segment
//!    (nothing recorded here beyond the count);
//! 2. **`quarantine_after` offenses** of one `(pass, class)` pair — the
//!    pass is quarantined *for that class*: future segments of the class
//!    are built without it;
//! 3. **`disable_after` total offenses** of one pass across all classes —
//!    the pass is disabled machine-wide for the rest of the run (graceful
//!    degradation toward the unoptimized baseline, never a crash).
//!
//! All state lives in `BTreeMap`s keyed by `'static` pass/class names, so
//! iteration order — and therefore every report built from it — is
//! deterministic.

use std::collections::{BTreeMap, BTreeSet};
use tracefill_policy::PassMask;
use tracefill_util::Json;

/// Escalation thresholds of the repair ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Offenses of one `(pass, provenance class)` pair before the pass is
    /// quarantined for that class (the ladder's `K`). Clamped to ≥ 1.
    pub quarantine_after: u64,
    /// Total offenses of one pass, across all classes, before it is
    /// disabled machine-wide (the ladder's `M`). Clamped to ≥ 1.
    pub disable_after: u64,
}

impl Default for QuarantineConfig {
    fn default() -> QuarantineConfig {
        QuarantineConfig {
            quarantine_after: 2,
            disable_after: 4,
        }
    }
}

/// One ladder transition, emitted by [`Quarantine::record_offense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escalation {
    /// A pass crossed `quarantine_after` offenses for one class.
    Quarantined {
        /// The pass name (a `PassMask` token).
        pass: &'static str,
        /// The provenance class (a `SegEnd::name()`).
        class: &'static str,
    },
    /// A pass crossed `disable_after` total offenses.
    Disabled {
        /// The pass name (a `PassMask` token).
        pass: &'static str,
    },
}

impl Escalation {
    /// Deterministic JSON for repair reports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Escalation::Quarantined { pass, class } => Json::object()
                .with("action", "quarantine")
                .with("pass", *pass)
                .with("class", *class),
            Escalation::Disabled { pass } => {
                Json::object().with("action", "disable").with("pass", *pass)
            }
        }
    }
}

/// Deterministic per-(pass, provenance-class) offender counters with the
/// escalation ladder described in the module docs.
#[derive(Debug, Clone)]
pub struct Quarantine {
    cfg: QuarantineConfig,
    /// Offenses per `(pass, class)`.
    counts: BTreeMap<(&'static str, &'static str), u64>,
    /// Offenses per pass, across classes.
    totals: BTreeMap<&'static str, u64>,
    /// `(pass, class)` pairs on rung 2.
    quarantined: BTreeSet<(&'static str, &'static str)>,
    /// Passes on rung 3.
    disabled: PassMask,
}

impl Quarantine {
    /// An empty ladder.
    #[must_use]
    pub fn new(cfg: QuarantineConfig) -> Quarantine {
        Quarantine {
            cfg: QuarantineConfig {
                quarantine_after: cfg.quarantine_after.max(1),
                disable_after: cfg.disable_after.max(1),
            },
            counts: BTreeMap::new(),
            totals: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            disabled: PassMask::NONE,
        }
    }

    /// Charges one offense to every pass in `passes` (the offending
    /// segment's applied passes) under provenance class `class`, and
    /// returns the ladder transitions this offense triggered, in
    /// pass order.
    pub fn record_offense(
        &mut self,
        passes: &[&'static str],
        class: &'static str,
    ) -> Vec<Escalation> {
        let mut out = Vec::new();
        for &pass in passes {
            let count = self.counts.entry((pass, class)).or_insert(0);
            *count += 1;
            if *count >= self.cfg.quarantine_after && self.quarantined.insert((pass, class)) {
                out.push(Escalation::Quarantined { pass, class });
            }
            let total = self.totals.entry(pass).or_insert(0);
            *total += 1;
            let bit = PassMask::from_token(pass);
            if *total >= self.cfg.disable_after && !self.disabled.contains(bit) && !bit.is_empty() {
                self.disabled = self.disabled.union(bit);
                out.push(Escalation::Disabled { pass });
            }
        }
        out
    }

    /// The passes a segment of provenance class `class` must be built
    /// without: the machine-wide disabled set plus every pass quarantined
    /// for this class.
    #[must_use]
    pub fn blocked_for(&self, class: &str) -> PassMask {
        let mut m = self.disabled;
        for &(pass, c) in &self.quarantined {
            if c == class {
                m = m.union(PassMask::from_token(pass));
            }
        }
        m
    }

    /// The machine-wide disabled set (rung 3).
    #[must_use]
    pub fn disabled(&self) -> PassMask {
        self.disabled
    }

    /// Total offenses recorded (over all passes and classes).
    #[must_use]
    pub fn offenses(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of `(pass, class)` pairs currently quarantined.
    #[must_use]
    pub fn quarantined_pairs(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Whether any rung of the ladder is active (anything blocked
    /// anywhere). When false, [`blocked_for`](Self::blocked_for) is empty
    /// for every class and callers can skip gating entirely.
    #[must_use]
    pub fn any_blocked(&self) -> bool {
        !self.quarantined.is_empty() || !self.disabled.is_empty()
    }

    /// The ladder state as deterministic JSON: per-(pass, class) offense
    /// counts, the quarantined pairs, and the disabled set.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut offenses = Json::object();
        for (&(pass, class), &n) in &self.counts {
            offenses = offenses.with(&format!("{pass}/{class}"), n);
        }
        let quarantined: Vec<Json> = self
            .quarantined
            .iter()
            .map(|&(pass, class)| Json::object().with("pass", pass).with("class", class))
            .collect();
        Json::object()
            .with("offenses", offenses)
            .with("quarantined", Json::Arr(quarantined))
            .with("disabled", self.disabled.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(k: u64, m: u64) -> Quarantine {
        Quarantine::new(QuarantineConfig {
            quarantine_after: k,
            disable_after: m,
        })
    }

    #[test]
    fn first_offense_triggers_no_escalation() {
        let mut q = q(2, 4);
        assert!(q.record_offense(&["moves"], "loop").is_empty());
        assert_eq!(q.offenses(), 1);
        assert!(!q.any_blocked());
        assert!(q.blocked_for("loop").is_empty());
    }

    #[test]
    fn k_offenses_quarantine_the_pass_for_the_class_only() {
        let mut q = q(2, 10);
        assert!(q.record_offense(&["scadd"], "loop").is_empty());
        let esc = q.record_offense(&["scadd"], "loop");
        assert_eq!(
            esc,
            vec![Escalation::Quarantined {
                pass: "scadd",
                class: "loop"
            }]
        );
        assert!(q.blocked_for("loop").contains(PassMask::SCADD));
        assert!(q.blocked_for("full").is_empty(), "other classes unaffected");
        assert!(q.disabled().is_empty());
        // Repeat offenses do not re-announce the same rung.
        assert!(q.record_offense(&["scadd"], "loop").is_empty());
    }

    #[test]
    fn m_total_offenses_disable_machine_wide() {
        let mut q = q(100, 3);
        q.record_offense(&["reassoc"], "loop");
        q.record_offense(&["reassoc"], "full");
        let esc = q.record_offense(&["reassoc"], "branch_limit");
        assert_eq!(esc, vec![Escalation::Disabled { pass: "reassoc" }]);
        assert!(q.disabled().contains(PassMask::REASSOC));
        // Machine-wide: blocked for every class, seen or not.
        assert!(q.blocked_for("indirect").contains(PassMask::REASSOC));
    }

    #[test]
    fn multi_pass_segments_charge_every_pass() {
        let mut q = q(1, 2);
        let esc = q.record_offense(&["moves", "scadd"], "full");
        assert_eq!(esc.len(), 2, "K=1 quarantines both on first offense");
        let esc = q.record_offense(&["moves"], "loop");
        assert!(
            esc.contains(&Escalation::Disabled { pass: "moves" }),
            "{esc:?}"
        );
        assert_eq!(q.blocked_for("loop"), PassMask::MOVES);
        assert!(q.blocked_for("full").contains(PassMask::SCADD));
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let mut a = q(2, 4);
        let mut b = q(2, 4);
        for q in [&mut a, &mut b] {
            q.record_offense(&["scadd", "moves"], "loop");
            q.record_offense(&["scadd"], "loop");
        }
        assert_eq!(a.to_json().dump(), b.to_json().dump());
        let text = a.to_json().dump();
        assert!(text.contains("\"scadd/loop\":2"), "{text}");
        assert!(text.contains("\"quarantined\""), "{text}");
        assert!(text.contains("\"disabled\":\"none\""), "{text}");
    }

    #[test]
    fn unknown_pass_tokens_never_poison_the_mask() {
        let mut q = q(1, 1);
        let esc = q.record_offense(&["nonesuch"], "loop");
        // Quarantine rung still fires (it is name-keyed)…
        assert_eq!(esc.len(), 1);
        // …but the mask stays empty: an unknown token cannot disable
        // real passes.
        assert!(q.blocked_for("loop").is_empty());
        assert!(q.disabled().is_empty());
    }
}
