//! # tracefill-core
//!
//! The primary contribution of *"Putting the Fill Unit to Work: Dynamic
//! Optimizations for Trace Cache Microprocessors"* (Friendly, Patel &
//! Patt, MICRO-31, 1998), implemented as a library:
//!
//! * [`segment`] — trace segments with **explicit dependency marking**
//!   (live-in vs. internal sources, block numbering, live-out flags);
//! * [`builder`] — segment construction from the retire stream, with the
//!   paper's termination rules and trace packing;
//! * [`opt`] — the four dynamic trace optimizations:
//!   [`opt::moves`] (§4.2), [`opt::reassoc`] (§4.3), [`opt::scadd`] (§4.4)
//!   and [`opt::placement`] (§4.5), plus [`opt::verify`], a concrete
//!   dataflow-equivalence checker every rewrite must pass;
//! * [`fill`] — the fill unit proper, with its configurable-latency fill
//!   pipeline;
//! * [`tcache`] — the 2K-entry, 4-way, path-associative trace cache;
//! * [`config`] — all knobs, with the paper's parameters as defaults.
//!
//! The `tracefill-sim` crate wires these into a cycle-level out-of-order
//! pipeline; this crate is independently usable (and tested) at the
//! segment level.
//!
//! # Examples
//!
//! Build a segment from a retire stream and optimize it:
//!
//! ```
//! use tracefill_core::builder::{build_segments, FillInput};
//! use tracefill_core::config::{ClusterConfig, FillConfig, OptConfig};
//! use tracefill_core::opt;
//! use tracefill_isa::{ArchReg, Instr, Op};
//!
//! let t = |n| ArchReg::gpr(n);
//! let stream: Vec<FillInput> = [
//!     Instr::alu_imm(Op::Sll, t(8), t(9), 2),   // index << 2
//!     Instr::alu(Op::Add, t(10), t(8), t(11)),  // base + scaled index
//!     Instr::load(Op::Lw, t(12), t(10), 0),
//! ]
//! .into_iter()
//! .enumerate()
//! .map(|(i, instr)| FillInput { pc: 0x40_0000 + 4 * i as u32, instr, taken: None, promoted: None, fetch_miss_head: false })
//! .collect();
//!
//! let mut seg = build_segments(&stream, &FillConfig::default()).pop().unwrap();
//! let counts = opt::apply_all(
//!     &mut seg,
//!     &OptConfig::all(),
//!     &ClusterConfig::default(),
//! );
//! assert_eq!(counts.scadd, 1); // the add became a scaled add
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod config;
pub mod fill;
pub mod ledger;
pub mod opt;
pub mod quarantine;
pub mod segment;
pub mod tcache;

pub use config::{FillConfig, OptConfig, TraceCacheConfig};
pub use fill::{FillUnit, VerifyFailure};
pub use ledger::{EvictCause, Ledger, SegRecord, SegSpan};
pub use quarantine::{Escalation, Quarantine, QuarantineConfig};
pub use segment::{Provenance, SegSlot, Segment, SrcRef};
pub use tcache::{InsertOutcome, TraceCache};
