//! Trace segments: the unit the fill unit builds and the trace cache stores.
//!
//! A segment holds up to 16 instructions from one dynamic execution path
//! with **explicit dependency marking**: every register source is recorded
//! as either *live-in* to the segment (read the rename table at issue) or
//! *internal* (the output of an earlier slot in the same segment). Because
//! dependencies are explicit, the order of instructions in the line carries
//! no dataflow meaning — which is precisely the freedom the placement
//! optimization exploits (paper §4.5) — and rewrites like reassociation
//! amount to re-pointing a source at a different dataflow location.
//!
//! Per the paper's storage accounting, each instruction carries 7 bits of
//! dependency pre-decode (3 destination/live-out bits, 2 live-in bits, 2
//! block-number bits) plus 7 optimization bits (1 move, 2 scaled add, 4
//! placement).

use tracefill_isa::{ArchReg, Instr, Op};

/// Where a source operand's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcRef {
    /// The architectural value of a register at segment entry (reads the
    /// rename table when the segment issues). `LiveIn($zero)` is the
    /// constant zero and is always ready.
    LiveIn(ArchReg),
    /// The output of the slot with this index (original program order)
    /// within the same segment.
    Internal(u8),
}

impl SrcRef {
    /// Whether this is an internal (same-segment) dependency.
    pub fn is_internal(self) -> bool {
        matches!(self, SrcRef::Internal(_))
    }
}

/// A scaled-add annotation: one source operand is shifted left before the
/// operation executes (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScAdd {
    /// Shift distance in bits (1..=3 with the paper's parameters).
    pub shift: u8,
    /// Which source operand (0 or 1) is shifted.
    pub src: u8,
}

/// One instruction slot of a trace segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegSlot {
    /// PC of the instruction.
    pub pc: u32,
    /// The instruction exactly as fetched from memory (never rewritten;
    /// retirement compares architectural effects against this).
    pub orig: Instr,
    /// Executed opcode (always `orig.op`; kept separate for clarity).
    pub op: Op,
    /// Executed immediate — reassociation may change it from `orig.imm`.
    pub imm: i32,
    /// Executed dataflow sources, in the operand order of
    /// [`Instr::srcs`]. Rewrites (moves, reassociation, scaled adds)
    /// re-point these.
    pub srcs: [Option<SrcRef>; 2],
    /// Architectural destination, if any.
    pub dest: Option<ArchReg>,
    /// Block number within the segment (increments after each conditional
    /// branch; 2 bits in the paper).
    pub block: u8,
    /// Whether `dest` is the segment's final writer of that register.
    pub live_out: bool,
    /// Marked as a register move: executed entirely in rename, never
    /// dispatched to a functional unit (paper §4.2).
    pub is_move: bool,
    /// For a marked move, where the copied value comes from.
    pub move_src: Option<SrcRef>,
    /// Scaled-add annotation (paper §4.4).
    pub scadd: Option<ScAdd>,
    /// Embedded branch direction for conditional branches: the direction
    /// the path this segment encodes took.
    pub taken: Option<bool>,
    /// Whether the fill unit rewrote this slot's immediate via
    /// reassociation (paper §4.3) — tracked for Table 2 accounting.
    pub reassociated: bool,
}

impl SegSlot {
    /// Number of register sources the executed form reads.
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Iterates over present sources as `(operand_index, SrcRef)`.
    pub fn src_refs(&self) -> impl Iterator<Item = (usize, SrcRef)> + '_ {
        self.srcs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s)))
    }

    /// Whether any transformation was applied to this slot (for the
    /// Table 2 coverage statistic).
    pub fn is_transformed(&self) -> bool {
        self.is_move || self.reassociated || self.scadd.is_some()
    }
}

/// Why the fill unit ended a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegEnd {
    /// Sixteen instructions were collected.
    Full,
    /// The conditional-branch limit would have been exceeded.
    BranchLimit,
    /// The segment ends in a return or indirect jump.
    Indirect,
    /// The segment ends in a serializing instruction.
    Serialize,
    /// The next instruction would close a loop back to the segment's own
    /// start (loop-aligned fill; see
    /// [`FillConfig::align_loops`](crate::config::FillConfig::align_loops)).
    Loop,
    /// The next instruction is a fetch address the trace cache missed on:
    /// segments must start at addresses the fetch engine actually uses,
    /// or they can never be found (fetch-aligned fill).
    FetchAligned,
    /// The builder was flushed externally (end of a simulation or an
    /// offline [`build_segments`](crate::builder::build_segments) run).
    Flushed,
}

impl SegEnd {
    /// A stable snake_case name for reports (matches the
    /// `fill.seg_end.*` metric suffixes).
    pub fn name(self) -> &'static str {
        match self {
            SegEnd::Full => "full",
            SegEnd::BranchLimit => "branch_limit",
            SegEnd::Indirect => "indirect",
            SegEnd::Serialize => "serialize",
            SegEnd::Loop => "loop",
            SegEnd::FetchAligned => "fetch_aligned",
            SegEnd::Flushed => "flushed",
        }
    }
}

/// Fill-unit provenance carried by every segment so that downstream
/// consumers — the lockstep oracle in particular — can attribute a
/// misbehaving trace line back to the fill event that produced it and to
/// the optimization passes that rewrote it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Monotonic id assigned by the fill unit at finalization (0 when the
    /// segment was built outside a fill unit, e.g. by
    /// [`build_segments`](crate::builder::build_segments)).
    pub seg_id: u64,
    /// Per-pass transformation counts recorded when the optimization
    /// passes ran over this segment.
    pub opt_counts: crate::opt::OptCounts,
    /// Description of an injected fault applied to this segment, if any
    /// (set by the sim's fault injector; `None` in normal operation).
    pub fault: Option<String>,
    /// Cycle the fill unit finalized this segment (0 when built outside a
    /// fill unit). The segment ledger uses it to measure build-to-insert
    /// and build-to-first-hit latencies.
    pub build_cycle: u64,
}

impl Provenance {
    /// Names of the optimization passes that actually transformed this
    /// segment (empty for an untouched segment).
    pub fn passes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.opt_counts.moves > 0 {
            out.push("moves");
        }
        if self.opt_counts.cse > 0 {
            out.push("cse");
        }
        if self.opt_counts.reassoc > 0 {
            out.push("reassoc");
        }
        if self.opt_counts.scadd > 0 {
            out.push("scadd");
        }
        if self.opt_counts.placed_segments > 0 {
            out.push("placement");
        }
        out
    }
}

/// Description of one conditional branch inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Slot index (original order) of the branch.
    pub slot: u8,
    /// The direction the segment's path embeds.
    pub taken: bool,
    /// Promoted (statically predicted) at build time?
    pub promoted: bool,
}

/// A finalized trace segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Fetch address this segment answers to.
    pub start_pc: u32,
    /// Instruction slots in original program order.
    pub slots: Vec<SegSlot>,
    /// Issue position of each slot: `issue_pos[slot_index]` is the issue
    /// slot (and therefore cluster) the instruction dispatches to. The
    /// identity permutation unless the placement pass ran.
    pub issue_pos: Vec<u8>,
    /// The conditional branches, in order.
    pub branches: Vec<BranchInfo>,
    /// Why the segment ended.
    pub end: SegEnd,
    /// Fill-unit provenance (id, pass attribution, injected-fault note).
    pub provenance: Provenance,
}

impl Segment {
    /// The directions of the embedded conditional path, LSB-first — the
    /// path signature used to distinguish same-address segments.
    pub fn path_sig(&self) -> (u16, u8) {
        let mut sig = 0u16;
        for (i, b) in self.branches.iter().enumerate() {
            sig |= (b.taken as u16) << i;
        }
        (sig, self.branches.len() as u8)
    }

    /// The fetch address that follows this segment along its embedded
    /// path, or `None` when it ends in an indirect jump (the fetch engine
    /// then consults the return stack / target buffer).
    pub fn next_fetch_pc(&self) -> Option<u32> {
        let last = self.slots.last()?;
        match last.op {
            Op::Jr | Op::Jalr => None,
            Op::J | Op::Jal => last.orig.taken_target(last.pc),
            op if op.is_cond_branch() => {
                if last.taken == Some(true) {
                    last.orig.taken_target(last.pc)
                } else {
                    Some(last.pc.wrapping_add(4))
                }
            }
            _ => Some(last.pc.wrapping_add(4)),
        }
    }

    /// The PC that follows slot `i` along the embedded path.
    pub fn next_pc_of(&self, i: usize) -> Option<u32> {
        let slot = &self.slots[i];
        match slot.op {
            Op::Jr | Op::Jalr => None,
            Op::J | Op::Jal => slot.orig.taken_target(slot.pc),
            op if op.is_cond_branch() => {
                if slot.taken == Some(true) {
                    slot.orig.taken_target(slot.pc)
                } else {
                    Some(slot.pc.wrapping_add(4))
                }
            }
            _ => Some(slot.pc.wrapping_add(4)),
        }
    }

    /// Storage charged for this segment in bits: 32 instruction bits plus
    /// 7 dependency pre-decode bits plus 7 optimization bits per slot.
    pub fn storage_bits(&self) -> u32 {
        self.slots.len() as u32 * (32 + 7 + 7)
    }

    /// Checks the structural invariants every well-formed segment upholds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant. Used by
    /// tests and by `debug_assert!`s in the fill unit.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.slots.is_empty() {
            return Err("segment has no slots".into());
        }
        if self.slots[0].pc != self.start_pc {
            return Err("start_pc does not match first slot".into());
        }
        if self.issue_pos.len() != self.slots.len() {
            return Err("issue_pos length mismatch".into());
        }
        // issue_pos must be a permutation.
        let mut seen = vec![false; self.slots.len()];
        for &p in &self.issue_pos {
            let p = p as usize;
            if p >= seen.len() || seen[p] {
                return Err("issue_pos is not a permutation".into());
            }
            seen[p] = true;
        }
        // Internal references must point strictly backwards.
        for (i, slot) in self.slots.iter().enumerate() {
            for (_, s) in slot.src_refs() {
                if let SrcRef::Internal(p) = s {
                    if p as usize >= i {
                        return Err(format!("slot {i} references non-earlier slot {p}"));
                    }
                    if self.slots[p as usize].dest.is_none() {
                        return Err(format!("slot {i} references destination-less slot {p}"));
                    }
                }
            }
            if slot.is_move != slot.move_src.is_some() {
                return Err(format!("slot {i}: is_move / move_src mismatch"));
            }
            if let Some(sc) = slot.scadd {
                if sc.src > 1 || slot.srcs[sc.src as usize].is_none() {
                    return Err(format!("slot {i}: scaled add names a missing source"));
                }
                if sc.shift == 0 {
                    return Err(format!("slot {i}: scaled add with zero shift"));
                }
            }
            if slot.op.is_cond_branch() != slot.taken.is_some() {
                return Err(format!("slot {i}: taken recorded on a non-branch"));
            }
        }
        // Branch list must match the slots.
        let cond_slots: Vec<u8> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.op.is_cond_branch())
            .map(|(i, _)| i as u8)
            .collect();
        if cond_slots.len() != self.branches.len()
            || !cond_slots
                .iter()
                .zip(&self.branches)
                .all(|(s, b)| *s == b.slot)
        {
            return Err("branch list does not match conditional-branch slots".into());
        }
        // Block numbers increment exactly after each conditional branch.
        let mut block = 0u8;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.block != block {
                return Err(format!(
                    "slot {i}: block {} but expected {block}",
                    slot.block
                ));
            }
            if slot.op.is_cond_branch() {
                block += 1;
            }
        }
        // live_out must mark exactly the final writer of each register.
        use std::collections::HashMap;
        let mut last_writer: HashMap<ArchReg, usize> = HashMap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(d) = slot.dest {
                last_writer.insert(d, i);
            }
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(d) = slot.dest {
                let expect = last_writer[&d] == i;
                if slot.live_out != expect {
                    return Err(format!("slot {i}: live_out flag wrong"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::simple_segment;

    #[test]
    fn path_signature() {
        let mut seg = simple_segment();
        assert_eq!(seg.path_sig().1, seg.branches.len() as u8);
        if !seg.branches.is_empty() {
            seg.branches[0].taken = true;
            assert_eq!(seg.path_sig().0 & 1, 1);
        }
    }

    #[test]
    fn invariants_catch_forward_reference() {
        let mut seg = simple_segment();
        assert!(seg.check_invariants().is_ok());
        // Point slot 0's source at itself.
        if seg.slots[0].srcs[0].is_some() {
            seg.slots[0].srcs[0] = Some(SrcRef::Internal(0));
            assert!(seg.check_invariants().is_err());
        }
    }

    #[test]
    fn storage_bits_matches_paper_budget() {
        let seg = simple_segment();
        // 46 bits per instruction: 32 + 7 predecode + 7 optimization.
        assert_eq!(seg.storage_bits(), 46 * seg.slots.len() as u32);
    }
}
