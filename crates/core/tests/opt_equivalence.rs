//! Property tests: the fill unit's optimizations preserve dataflow
//! equivalence on arbitrary retire streams, and segment invariants hold.

use proptest::prelude::*;
use tracefill_core::builder::{build_segments, FillInput};
use tracefill_core::config::{ClusterConfig, FillConfig, OptConfig};
use tracefill_core::opt::{self, verify};
use tracefill_isa::{ArchReg, Instr, Op};

/// Strategy for one instruction of a synthetic retire stream, weighted
/// toward the patterns the optimizations target.
fn arb_stream_instr() -> impl Strategy<Value = Instr> {
    let reg = || (0u8..16).prop_map(ArchReg::gpr);
    prop_oneof![
        // Plain ALU.
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::alu(Op::Add, d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::alu(Op::Sub, d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::alu(Op::Xor, d, a, b)),
        // Immediate adds (reassociation fodder), including move idioms.
        (reg(), reg(), -64i32..64).prop_map(|(d, a, i)| Instr::alu_imm(Op::Addi, d, a, i)),
        (reg(), reg(), prop::sample::select(vec![0i32, 0, 4, 8]))
            .prop_map(|(d, a, i)| Instr::alu_imm(Op::Addi, d, a, i)),
        // Short shifts (scaled-add fodder).
        (reg(), reg(), 0i32..5).prop_map(|(d, a, s)| Instr::alu_imm(Op::Sll, d, a, s)),
        // Loads and stores.
        (reg(), reg(), -32i32..32).prop_map(|(d, b, o)| Instr::load(Op::Lw, d, b, 4 * o)),
        (reg(), reg(), -32i32..32).prop_map(|(d, b, o)| Instr::store(Op::Sw, d, b, 4 * o)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| Instr::alu(Op::Lwx, d, a, b)),
        // Conditional branches to break blocks.
        (reg(), reg(), 1i32..8).prop_map(|(a, b, o)| Instr::branch(Op::Beq, a, b, o)),
        (reg(), 1i32..8).prop_map(|(a, o)| Instr::branch(Op::Bgtz, a, ArchReg::ZERO, o)),
    ]
}

fn arb_stream() -> impl Strategy<Value = Vec<FillInput>> {
    (prop::collection::vec((arb_stream_instr(), any::<bool>()), 1..64)).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (instr, taken))| FillInput {
                pc: 0x40_0000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(taken),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Full optimization preserves equivalence and structural invariants.
    #[test]
    fn all_opts_preserve_equivalence(stream in arb_stream(), seed in any::<u64>()) {
        let cfg = FillConfig::default();
        for mut seg in build_segments(&stream, &cfg) {
            opt::apply_all(&mut seg, &OptConfig::all(), &ClusterConfig::default());
            prop_assert_eq!(seg.check_invariants(), Ok(()));
            if let Err(e) = verify::equivalent(&seg, seed) {
                prop_assert!(false, "equivalence broken: {}", e);
            }
        }
    }

    /// Same with in-block reassociation allowed (the paper's unrestricted
    /// variant) and a wider scaled-add limit.
    #[test]
    fn aggressive_opts_preserve_equivalence(stream in arb_stream(), seed in any::<u64>()) {
        let cfg = FillConfig::default();
        let opts = OptConfig {
            reassoc_cross_block_only: false,
            scadd_max_shift: 4,
            cse: true,
            ..OptConfig::all()
        };
        for mut seg in build_segments(&stream, &cfg) {
            opt::apply_all(&mut seg, &opts, &ClusterConfig::default());
            prop_assert_eq!(seg.check_invariants(), Ok(()));
            if let Err(e) = verify::equivalent(&seg, seed) {
                prop_assert!(false, "equivalence broken: {}", e);
            }
        }
    }

    /// Segments straight out of the builder always satisfy invariants and
    /// trivially verify.
    #[test]
    fn builder_output_is_well_formed(stream in arb_stream()) {
        let cfg = FillConfig::default();
        for seg in build_segments(&stream, &cfg) {
            prop_assert_eq!(seg.check_invariants(), Ok(()));
            prop_assert!(seg.slots.len() <= cfg.max_slots);
            prop_assert!(seg.branches.len() <= cfg.max_cond_branches);
            prop_assert_eq!(verify::equivalent(&seg, 0), Ok(()));
        }
    }

    /// Placement alone never changes the dependency structure, only the
    /// issue permutation.
    #[test]
    fn placement_only_permutes(stream in arb_stream()) {
        let cfg = FillConfig::default();
        for seg in build_segments(&stream, &cfg) {
            let mut placed = seg.clone();
            opt::apply_all(&mut placed, &OptConfig::only_placement(), &ClusterConfig::default());
            prop_assert_eq!(&placed.slots, &seg.slots);
            let mut sorted = placed.issue_pos.clone();
            sorted.sort_unstable();
            let expect: Vec<u8> = (0..seg.slots.len() as u8).collect();
            prop_assert_eq!(sorted, expect);
        }
    }
}
