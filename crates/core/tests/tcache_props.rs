//! Property tests for the trace cache and fill unit.

use proptest::prelude::*;
use std::sync::Arc;
use tracefill_core::builder::{build_segments, FillInput};
use tracefill_core::config::{FillConfig, TraceCacheConfig};
use tracefill_core::segment::Segment;
use tracefill_core::tcache::{match_predictions, TraceCache};
use tracefill_isa::{ArchReg, Instr, Op};

/// A random but well-formed retire stream (sequential PCs, branches with
/// recorded directions).
fn arb_stream(len: usize) -> impl Strategy<Value = Vec<FillInput>> {
    let instr = prop_oneof![
        (0u8..16, 0u8..16).prop_map(|(d, s)| Instr::alu_imm(
            Op::Addi,
            ArchReg::gpr(d),
            ArchReg::gpr(s),
            1
        )),
        (0u8..16, 0u8..16, any::<bool>()).prop_map(|(a, b, t)| {
            let _ = t;
            Instr::branch(Op::Beq, ArchReg::gpr(a), ArchReg::gpr(b), 2)
        }),
        (0u8..16, 0u8..16).prop_map(|(d, b)| Instr::load(
            Op::Lw,
            ArchReg::gpr(d),
            ArchReg::gpr(b),
            0
        )),
    ];
    prop::collection::vec((instr, any::<bool>()), 1..len).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (instr, taken))| FillInput {
                pc: 0x40_0000 + 4 * i as u32,
                instr,
                taken: instr.op.is_cond_branch().then_some(taken),
                promoted: None,
                fetch_miss_head: false,
            })
            .collect()
    })
}

/// The prediction stream that exactly follows a segment's embedded path.
fn matching_preds(seg: &Segment) -> Vec<bool> {
    seg.branches
        .iter()
        .filter(|b| !b.promoted)
        .map(|b| b.taken)
        .collect()
}

proptest! {
    /// Any segment just inserted is found by a lookup at its start address
    /// with its own path predictions, and the match is full.
    #[test]
    fn inserted_segments_are_found(stream in arb_stream(128)) {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let segs = build_segments(&stream, &FillConfig::default());
        for seg in segs {
            let pc = seg.start_pc;
            let preds = matching_preds(&seg);
            tc.insert(Arc::new(seg));
            let hit = tc.lookup(pc, &preds);
            prop_assert!(hit.is_some(), "lost a just-inserted segment");
            prop_assert!(hit.unwrap().path.full);
        }
    }

    /// `match_predictions` agrees with a straightforward reference
    /// implementation.
    #[test]
    fn path_matching_reference(stream in arb_stream(64), preds in prop::collection::vec(any::<bool>(), 3)) {
        for seg in build_segments(&stream, &FillConfig::default()) {
            let m = match_predictions(&seg, &preds);
            // Reference: walk branches, consuming predictions for
            // unpromoted ones, until a mismatch.
            let mut pi = 0;
            let mut matching = 0;
            let mut full = true;
            for b in &seg.branches {
                let agreed = if b.promoted {
                    true
                } else {
                    let p = preds.get(pi).copied().unwrap_or(false);
                    pi += 1;
                    p == b.taken
                };
                if agreed {
                    matching += 1;
                } else {
                    full = false;
                    break;
                }
            }
            prop_assert_eq!(m.matching_branches as usize, matching);
            prop_assert_eq!(m.full, full);
        }
    }

    /// Total stored instructions never exceed the configured capacity in
    /// line-entries terms.
    #[test]
    fn capacity_is_bounded(streams in prop::collection::vec(arb_stream(96), 1..6)) {
        let cfg = TraceCacheConfig { entries: 32, ways: 4 };
        let mut tc = TraceCache::new(cfg);
        let mut lines = 0u64;
        for (n, stream) in streams.into_iter().enumerate() {
            // Shift each stream to different addresses.
            let stream: Vec<FillInput> = stream
                .into_iter()
                .map(|mut f| {
                    f.pc += (n as u32) * 0x1_0000;
                    f
                })
                .collect();
            for seg in build_segments(&stream, &FillConfig::default()) {
                tc.insert(Arc::new(seg));
                lines += 1;
            }
        }
        // storage_bits counts live lines only; each line is at most 16
        // slots of 46 bits.
        prop_assert!(tc.storage_bits() <= (cfg.entries as u64) * 16 * 46);
        prop_assert!(tc.stats().fills == lines);
    }

    /// Fill-unit and offline builder produce identical segments for the
    /// same stream (same config, no optimization).
    #[test]
    fn fill_unit_matches_offline_builder(stream in arb_stream(96)) {
        use tracefill_core::fill::FillUnit;
        let cfg = FillConfig::default();
        let offline = build_segments(&stream, &cfg);
        let mut fu = FillUnit::new(cfg);
        for (i, input) in stream.iter().enumerate() {
            fu.retire(*input, i as u64);
        }
        let online: Vec<_> = fu.drain_ready(u64::MAX - 1).into_iter().collect();
        // The fill unit keeps its trailing partial segment pending; the
        // offline builder flushes it. Everything before that must agree.
        prop_assert!(online.len() == offline.len() || online.len() + 1 == offline.len());
        for (a, b) in online.iter().zip(&offline) {
            prop_assert_eq!(a.as_ref(), b);
        }
    }
}
