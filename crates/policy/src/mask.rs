//! Pass subsets as a compact bitmask.
//!
//! The controller reasons about optimization passes without knowing
//! anything about segments or `OptConfig`: a pass subset is a [`PassMask`]
//! bit set, and `tracefill-core` maps masks onto its own configuration.
//! The token names here (`moves`, `reassoc`, `scadd`, `placement`,
//! `cse`) are the single source of truth for every spec parser in the
//! workspace — `OptConfig::from_name` and the harness grid both delegate
//! to [`PassMask::parse`].

/// A set of optimization passes, one bit per pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassMask(pub u8);

impl PassMask {
    /// §4.2 register-move marking.
    pub const MOVES: PassMask = PassMask(1 << 0);
    /// §4.3 immediate reassociation.
    pub const REASSOC: PassMask = PassMask(1 << 1);
    /// §4.4 scaled adds.
    pub const SCADD: PassMask = PassMask(1 << 2);
    /// §4.5 instruction placement.
    pub const PLACEMENT: PassMask = PassMask(1 << 3);
    /// §5 common-subexpression elimination (extension; not part of `ALL`).
    pub const CSE: PassMask = PassMask(1 << 4);
    /// No passes — the baseline.
    pub const NONE: PassMask = PassMask(0);
    /// The paper's four evaluated passes (`cse` stays opt-in, matching
    /// `OptConfig::all`).
    pub const ALL: PassMask = PassMask(0b1111);

    /// Every `(mask, token)` pair, in canonical label order.
    const TOKENS: [(PassMask, &'static str); 5] = [
        (PassMask::MOVES, "moves"),
        (PassMask::REASSOC, "reassoc"),
        (PassMask::SCADD, "scadd"),
        (PassMask::PLACEMENT, "placement"),
        (PassMask::CSE, "cse"),
    ];

    /// Whether every pass in `other` is also in `self`.
    #[must_use]
    pub fn contains(self, other: PassMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two subsets.
    #[must_use]
    pub fn union(self, other: PassMask) -> PassMask {
        PassMask(self.0 | other.0)
    }

    /// The set difference: every pass in `self` that is not in `other`.
    #[must_use]
    pub fn minus(self, other: PassMask) -> PassMask {
        PassMask(self.0 & !other.0)
    }

    /// Whether no passes are set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Resolves a single pass token (e.g. a `Provenance::passes()` name)
    /// to its bit; unknown tokens map to the empty mask.
    #[must_use]
    pub fn from_token(token: &str) -> PassMask {
        Self::TOKENS
            .iter()
            .find(|(_, name)| *name == token)
            .map_or(PassMask::NONE, |(bit, _)| *bit)
    }

    /// Parses a pass-subset spec: `all`, `none`, or a comma list of
    /// `moves`, `reassoc`, `scadd`, `placement`/`place`, `cse`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse(spec: &str) -> Result<PassMask, String> {
        match spec {
            "all" => return Ok(PassMask::ALL),
            "none" => return Ok(PassMask::NONE),
            _ => {}
        }
        let mut m = PassMask::NONE;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let bit = match part.trim() {
                "moves" => PassMask::MOVES,
                "reassoc" => PassMask::REASSOC,
                "scadd" => PassMask::SCADD,
                "placement" | "place" => PassMask::PLACEMENT,
                "cse" => PassMask::CSE,
                other => return Err(format!("unknown optimization `{other}`")),
            };
            m = m.union(bit);
        }
        Ok(m)
    }

    /// The canonical label (inverse of [`parse`](Self::parse) up to token
    /// order): `"none"`, `"all"`, or a comma list.
    #[must_use]
    pub fn label(self) -> String {
        if self == PassMask::ALL {
            return "all".to_string();
        }
        let parts: Vec<&str> = Self::TOKENS
            .iter()
            .filter(|(bit, _)| self.contains(*bit))
            .map(|(_, name)| *name)
            .collect();
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// The controller's default arm universe: the baseline, each paper pass in
/// isolation, and all four together — the six configurations the paper's
/// figures compare.
pub const DEFAULT_ARMS: [PassMask; 6] = [
    PassMask::NONE,
    PassMask::MOVES,
    PassMask::REASSOC,
    PassMask::SCADD,
    PassMask::PLACEMENT,
    PassMask::ALL,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_label_roundtrip() {
        for spec in ["none", "all", "moves", "moves,scadd", "reassoc,cse"] {
            let m = PassMask::parse(spec).unwrap();
            assert_eq!(PassMask::parse(&m.label()).unwrap(), m);
        }
        assert_eq!(
            PassMask::parse("scadd,moves").unwrap().label(),
            "moves,scadd"
        );
        assert_eq!(PassMask::parse("place").unwrap(), PassMask::PLACEMENT);
        assert_eq!(PassMask::ALL.label(), "all");
        assert_eq!(PassMask::NONE.label(), "none");
    }

    #[test]
    fn all_excludes_cse() {
        assert!(!PassMask::ALL.contains(PassMask::CSE));
        let five = PassMask::ALL.union(PassMask::CSE);
        assert_eq!(five.label(), "moves,reassoc,scadd,placement,cse");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PassMask::parse("frobnicate").is_err());
        assert!(PassMask::parse("moves,frob").is_err());
    }

    #[test]
    fn minus_removes_only_the_named_passes() {
        let m = PassMask::ALL.minus(PassMask::REASSOC);
        assert!(m.contains(PassMask::MOVES));
        assert!(!m.contains(PassMask::REASSOC));
        assert_eq!(PassMask::NONE.minus(PassMask::ALL), PassMask::NONE);
        assert_eq!(PassMask::ALL.minus(PassMask::NONE), PassMask::ALL);
        assert!(PassMask::MOVES.minus(PassMask::MOVES).is_empty());
    }

    #[test]
    fn from_token_resolves_provenance_names() {
        for (bit, name) in [
            (PassMask::MOVES, "moves"),
            (PassMask::REASSOC, "reassoc"),
            (PassMask::SCADD, "scadd"),
            (PassMask::PLACEMENT, "placement"),
            (PassMask::CSE, "cse"),
        ] {
            assert_eq!(PassMask::from_token(name), bit);
        }
        assert_eq!(PassMask::from_token("nonesuch"), PassMask::NONE);
    }
}
