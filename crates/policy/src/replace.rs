//! Pluggable trace-cache replacement.
//!
//! The trace cache keeps its own tag/payload arrays; a [`ReplacePolicy`]
//! only tracks recency/re-reference state per `(set, way)` and answers one
//! question: *which way do I evict?* The cache reports three events —
//! hit, insert, victim-needed — with a monotonically increasing `tick`
//! (the cache's lookup/insert clock), and for inserts the line's
//! [`LineAttrs`] so provenance-aware policies can set insertion
//! temperature.
//!
//! [`ReplacementKind::Lru`] is the paper machine's behavior extracted
//! verbatim: stamp on hit and insert, evict the first way with the
//! minimum stamp. Same tick stream ⇒ byte-identical victims.

/// Aggregate bookkeeping every policy maintains alongside its
/// recency state, so `policy.*` metrics and the segment ledger can be
/// cross-checked against the cache's own hit/eviction statistics.
///
/// All times are in the cache's lookup/insert tick domain (the `tick`
/// values the cache passes to the policy), not simulator cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyCounters {
    /// Lookup hits reported via [`ReplacePolicy::on_hit`].
    pub hits: u64,
    /// Victims chosen via [`ReplacePolicy::victim`].
    pub evictions: u64,
    /// Sum over evictions of `tick_at_eviction - tick_at_insert`
    /// (the victim line's residency age in cache ticks).
    pub evict_age_ticks: u64,
}

/// Per-line insert-tick log shared by every policy implementation; turns
/// the hit / insert / victim event stream into [`PolicyCounters`].
#[derive(Debug)]
struct LineLog {
    ways: usize,
    inserted: Vec<u64>,
    counters: PolicyCounters,
}

impl LineLog {
    fn new(sets: usize, ways: usize) -> LineLog {
        LineLog {
            ways,
            inserted: vec![0; sets * ways],
            counters: PolicyCounters::default(),
        }
    }

    fn hit(&mut self) {
        self.counters.hits += 1;
    }

    fn insert(&mut self, set: usize, way: usize, tick: u64) {
        self.inserted[set * self.ways + way] = tick;
    }

    fn evict(&mut self, set: usize, way: usize, tick: u64) {
        self.counters.evictions += 1;
        self.counters.evict_age_ticks += tick.saturating_sub(self.inserted[set * self.ways + way]);
    }

    fn move_line(&mut self, set: usize, from: usize, to: usize) {
        let base = set * self.ways;
        self.inserted[base + to] = self.inserted[base + from];
        self.inserted[base + from] = 0;
    }
}

/// Facts about a segment being inserted, abstracted away from
/// `tracefill-core`'s `Segment` type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineAttrs {
    /// The segment ends in a backward (loop) branch — likely hot.
    pub loop_seg: bool,
    /// At least one slot was rewritten by a fill-unit optimization pass
    /// (the fill unit invested work in this line).
    pub transformed: bool,
    /// Segment length in slots.
    pub len: u8,
}

/// Which replacement policy the trace cache runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used (the paper's behavior).
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
    /// TRRIP-style temperature policy: insertion temperature from segment
    /// provenance, warmed by hit history.
    Trrip,
}

impl ReplacementKind {
    /// Parses a policy name: `lru`, `srrip`, or `trrip`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending spec.
    pub fn parse(spec: &str) -> Result<ReplacementKind, String> {
        match spec {
            "lru" => Ok(ReplacementKind::Lru),
            "srrip" => Ok(ReplacementKind::Srrip),
            "trrip" => Ok(ReplacementKind::Trrip),
            other => Err(format!(
                "unknown replacement policy `{other}` (expected lru, srrip, trrip)"
            )),
        }
    }

    /// The canonical name (inverse of [`parse`](Self::parse)).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplacementKind::Lru => "lru",
            ReplacementKind::Srrip => "srrip",
            ReplacementKind::Trrip => "trrip",
        }
    }

    /// Builds the policy state for a cache of `sets` × `ways`.
    #[must_use]
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacePolicy> {
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(sets, ways)),
            ReplacementKind::Srrip => Box::new(Srrip::new(sets, ways)),
            ReplacementKind::Trrip => Box::new(Trrip::new(sets, ways)),
        }
    }
}

/// Replacement state for a set-associative cache.
///
/// The cache guarantees `victim` is only called on a full set, and that
/// ways `0..occupied` of a set are filled left to right before the first
/// eviction.
pub trait ReplacePolicy: std::fmt::Debug + Send {
    /// A lookup hit line `(set, way)` at time `tick`.
    fn on_hit(&mut self, set: usize, way: usize, tick: u64);
    /// A new line landed in `(set, way)` at time `tick`.
    fn on_insert(&mut self, set: usize, way: usize, tick: u64, attrs: &LineAttrs);
    /// Chooses the way to evict from a full `set` at time `tick`.
    fn victim(&mut self, set: usize, ways_used: usize, tick: u64) -> usize;
    /// The line in `(set, from)` moved to `(set, to)` and `from` is now
    /// empty. The cache compacts a set this way when a line is
    /// *invalidated* (self-repair), preserving the left-to-right occupancy
    /// invariant; the policy must carry the line's state along and reset
    /// the vacated slot.
    fn on_move(&mut self, set: usize, from: usize, to: usize);
    /// Hit / eviction / eviction-age totals accumulated so far.
    fn counters(&self) -> PolicyCounters;
    /// The policy's canonical name (matches [`ReplacementKind::name`]).
    fn name(&self) -> &'static str;
}

/// Least-recently-used: per-way stamps, first-argmin victim.
#[derive(Debug)]
struct Lru {
    ways: usize,
    stamp: Vec<u64>,
    log: LineLog,
}

impl Lru {
    fn new(sets: usize, ways: usize) -> Lru {
        Lru {
            ways,
            stamp: vec![0; sets * ways],
            log: LineLog::new(sets, ways),
        }
    }
}

impl ReplacePolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize, tick: u64) {
        self.stamp[set * self.ways + way] = tick;
        self.log.hit();
    }

    fn on_insert(&mut self, set: usize, way: usize, tick: u64, _attrs: &LineAttrs) {
        self.stamp[set * self.ways + way] = tick;
        self.log.insert(set, way, tick);
    }

    fn victim(&mut self, set: usize, ways_used: usize, tick: u64) -> usize {
        let base = set * self.ways;
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for w in 0..ways_used {
            let s = self.stamp[base + w];
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.log.evict(set, victim, tick);
        victim
    }

    fn on_move(&mut self, set: usize, from: usize, to: usize) {
        let base = set * self.ways;
        self.stamp[base + to] = self.stamp[base + from];
        self.stamp[base + from] = 0;
        self.log.move_line(set, from, to);
    }

    fn counters(&self) -> PolicyCounters {
        self.log.counters
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// SRRIP-2: two-bit re-reference prediction values. Insert at `LONG`
/// (2), promote to 0 on hit, evict the first way at `DISTANT` (3), aging
/// every way until one reaches it.
#[derive(Debug)]
struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
    log: LineLog,
}

const RRPV_DISTANT: u8 = 3;
const RRPV_LONG: u8 = 2;

impl Srrip {
    fn new(sets: usize, ways: usize) -> Srrip {
        Srrip {
            ways,
            rrpv: vec![RRPV_DISTANT; sets * ways],
            log: LineLog::new(sets, ways),
        }
    }
}

impl ReplacePolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize, _tick: u64) {
        self.rrpv[set * self.ways + way] = 0;
        self.log.hit();
    }

    fn on_insert(&mut self, set: usize, way: usize, tick: u64, _attrs: &LineAttrs) {
        self.rrpv[set * self.ways + way] = RRPV_LONG;
        self.log.insert(set, way, tick);
    }

    fn victim(&mut self, set: usize, ways_used: usize, tick: u64) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..ways_used {
                if self.rrpv[base + w] >= RRPV_DISTANT {
                    self.log.evict(set, w, tick);
                    return w;
                }
            }
            for w in 0..ways_used {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_move(&mut self, set: usize, from: usize, to: usize) {
        let base = set * self.ways;
        self.rrpv[base + to] = self.rrpv[base + from];
        self.rrpv[base + from] = RRPV_DISTANT;
        self.log.move_line(set, from, to);
    }

    fn counters(&self) -> PolicyCounters {
        self.log.counters
    }

    fn name(&self) -> &'static str {
        "srrip"
    }
}

/// TRRIP-style temperature replacement.
///
/// Each line carries a temperature in `0..=TEMP_MAX`; hotter lines survive
/// longer. Insertion temperature comes from segment provenance — loop
/// segments and fill-unit-transformed segments are predicted hot (the
/// fill unit's optimization effort is worth protecting) — and every hit
/// warms the line by one step. Eviction takes the coldest way,
/// tie-breaking on the older stamp, then the lower way index.
#[derive(Debug)]
struct Trrip {
    ways: usize,
    temp: Vec<u8>,
    stamp: Vec<u64>,
    log: LineLog,
}

const TEMP_MAX: u8 = 3;

impl Trrip {
    fn new(sets: usize, ways: usize) -> Trrip {
        Trrip {
            ways,
            temp: vec![0; sets * ways],
            stamp: vec![0; sets * ways],
            log: LineLog::new(sets, ways),
        }
    }
}

impl ReplacePolicy for Trrip {
    fn on_hit(&mut self, set: usize, way: usize, tick: u64) {
        let i = set * self.ways + way;
        self.temp[i] = (self.temp[i] + 1).min(TEMP_MAX);
        self.stamp[i] = tick;
        self.log.hit();
    }

    fn on_insert(&mut self, set: usize, way: usize, tick: u64, attrs: &LineAttrs) {
        let i = set * self.ways + way;
        self.temp[i] = match (attrs.loop_seg, attrs.transformed) {
            (true, true) => 2,
            (true, false) | (false, true) => 1,
            (false, false) => 0,
        };
        self.stamp[i] = tick;
        self.log.insert(set, way, tick);
    }

    fn victim(&mut self, set: usize, ways_used: usize, tick: u64) -> usize {
        let base = set * self.ways;
        let mut victim = 0usize;
        let mut best = (u8::MAX, u64::MAX);
        for w in 0..ways_used {
            let key = (self.temp[base + w], self.stamp[base + w]);
            if key < best {
                best = key;
                victim = w;
            }
        }
        // Cool the survivors so stale-hot lines cannot pin a set forever.
        for w in 0..ways_used {
            if w != victim {
                let i = base + w;
                self.temp[i] = self.temp[i].saturating_sub(1);
            }
        }
        self.log.evict(set, victim, tick);
        victim
    }

    fn on_move(&mut self, set: usize, from: usize, to: usize) {
        let base = set * self.ways;
        self.temp[base + to] = self.temp[base + from];
        self.temp[base + from] = 0;
        self.stamp[base + to] = self.stamp[base + from];
        self.stamp[base + from] = 0;
        self.log.move_line(set, from, to);
    }

    fn counters(&self) -> PolicyCounters {
        self.log.counters
    }

    fn name(&self) -> &'static str {
        "trrip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LineAttrs = LineAttrs {
        loop_seg: false,
        transformed: false,
        len: 8,
    };

    #[test]
    fn kind_parse_name_roundtrip() {
        for k in [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Trrip,
        ] {
            assert_eq!(ReplacementKind::parse(k.name()).unwrap(), k);
            assert_eq!(k.build(4, 2).name(), k.name());
        }
        assert!(ReplacementKind::parse("mru").is_err());
    }

    #[test]
    fn lru_evicts_first_oldest() {
        let mut p = ReplacementKind::Lru.build(1, 4);
        for w in 0..4 {
            p.on_insert(0, w, w as u64, &A);
        }
        p.on_hit(0, 0, 10);
        assert_eq!(p.victim(0, 4, 11), 1, "way 1 now oldest");
        // Equal stamps: the first way wins, matching min_by_key.
        let mut q = ReplacementKind::Lru.build(1, 3);
        for w in 0..3 {
            q.on_insert(0, w, 5, &A);
        }
        assert_eq!(q.victim(0, 3, 6), 0);
    }

    #[test]
    fn srrip_protects_reused_lines() {
        let mut p = ReplacementKind::Srrip.build(1, 2);
        p.on_insert(0, 0, 1, &A);
        p.on_insert(0, 1, 2, &A);
        p.on_hit(0, 0, 3);
        // Way 0 at rrpv 0, way 1 at 2; aging reaches way 1 first.
        assert_eq!(p.victim(0, 2, 4), 1);
    }

    #[test]
    fn trrip_prefers_evicting_cold_provenance() {
        let mut p = ReplacementKind::Trrip.build(1, 2);
        let hot = LineAttrs {
            loop_seg: true,
            transformed: true,
            len: 12,
        };
        p.on_insert(0, 0, 1, &hot);
        p.on_insert(0, 1, 2, &A);
        assert_eq!(p.victim(0, 2, 3), 1, "plain line colder than loop line");
    }

    #[test]
    fn trrip_cooling_unpins_stale_lines() {
        let mut p = ReplacementKind::Trrip.build(1, 2);
        let hot = LineAttrs {
            loop_seg: true,
            transformed: true,
            len: 12,
        };
        p.on_insert(0, 0, 1, &hot);
        p.on_insert(0, 1, 2, &A);
        // Repeated evictions cool way 0; without hits it eventually loses
        // the tie-break on stamp recency.
        assert_eq!(p.victim(0, 2, 3), 1);
        p.on_insert(0, 1, 3, &A);
        assert_eq!(p.victim(0, 2, 4), 1);
        p.on_insert(0, 1, 4, &A);
        // Way 0 cooled to 0; stamps 1 < 4, so way 0 finally goes.
        assert_eq!(p.victim(0, 2, 5), 0);
    }

    #[test]
    fn counters_track_hits_evictions_and_ages() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Trrip,
        ] {
            let mut p = kind.build(1, 2);
            assert_eq!(p.counters(), PolicyCounters::default());
            p.on_insert(0, 0, 1, &A);
            p.on_insert(0, 1, 2, &A);
            p.on_hit(0, 0, 3);
            p.on_hit(0, 0, 4);
            let v = p.victim(0, 2, 10);
            let c = p.counters();
            assert_eq!(c.hits, 2, "{}: two hits reported", kind.name());
            assert_eq!(c.evictions, 1, "{}: one victim chosen", kind.name());
            // The victim was inserted at tick 1 or 2, so its age at tick
            // 10 is 10 minus its insert tick.
            let expect_age = 10 - [1u64, 2u64][v];
            assert_eq!(c.evict_age_ticks, expect_age, "{}", kind.name());
        }
    }

    #[test]
    fn counters_accumulate_across_replacements() {
        let mut p = ReplacementKind::Lru.build(1, 2);
        p.on_insert(0, 0, 1, &A);
        p.on_insert(0, 1, 2, &A);
        let v1 = p.victim(0, 2, 5); // way 0 (stamp 1), age 4
        assert_eq!(v1, 0);
        p.on_insert(0, v1, 5, &A);
        let v2 = p.victim(0, 2, 9); // way 1 (stamp 2), age 7
        assert_eq!(v2, 1);
        let c = p.counters();
        assert_eq!(c.evictions, 2);
        assert_eq!(c.evict_age_ticks, 4 + 7);
    }

    #[test]
    fn on_move_carries_line_state_for_every_policy() {
        // Fill a 3-way set, compact way 0 away (way 2 slides into way 0),
        // then ask for a victim over the two survivors: the moved line
        // must keep its recency, so the stale line in way 1 goes first.
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Trrip,
        ] {
            let mut p = kind.build(1, 3);
            p.on_insert(0, 0, 1, &A);
            p.on_insert(0, 1, 2, &A);
            p.on_insert(0, 2, 3, &A);
            // Way 2 is the freshest; keep it fresh under SRRIP too.
            p.on_hit(0, 2, 4);
            p.on_move(0, 2, 0);
            assert_eq!(
                p.victim(0, 2, 5),
                1,
                "{}: the moved line must not look stale",
                kind.name()
            );
        }
    }

    #[test]
    fn on_move_carries_insert_tick_for_eviction_age() {
        let mut p = ReplacementKind::Lru.build(1, 2);
        p.on_insert(0, 0, 1, &A);
        p.on_insert(0, 1, 6, &A);
        p.on_hit(0, 1, 7);
        p.on_move(0, 1, 0); // way 1 (inserted at 6) slides into way 0
        assert_eq!(p.victim(0, 1, 10), 0);
        assert_eq!(
            p.counters().evict_age_ticks,
            10 - 6,
            "age must follow the moved line's insert tick"
        );
    }
}
