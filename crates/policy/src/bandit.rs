//! The online pass controller: a deterministic multi-armed bandit over
//! pass subsets.
//!
//! Time is divided into **epochs of N fills**. During an epoch every
//! finalized segment is optimized with the epoch's arm (a [`PassMask`]);
//! at the epoch boundary the controller computes the epoch's reward —
//! retired instructions per cycle, both observed directly from the retire
//! stream the fill unit already watches — credits it to the arm, and picks
//! the next arm.
//!
//! Determinism is a hard requirement (same seed ⇒ byte-identical
//! simulations), so:
//!
//! * exploration uses a seeded [`SplitMix64`] stream and nothing else;
//! * all tie-breaks are "first index wins";
//! * configuration carries integers only (`epsilon_milli`, `c_milli`), so
//!   the configs stay `Copy + Eq` and hashable into campaign run ids.

use crate::mask::{PassMask, DEFAULT_ARMS};
use tracefill_util::SplitMix64;

/// How the controller chooses arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerMode {
    /// No controller: the fill unit applies its configured passes
    /// unconditionally (the paper's behavior).
    Off,
    /// Pinned to one pass subset for the whole run. Useful as the identity
    /// baseline: `Static(PassMask::ALL)` must reproduce the static
    /// simulator bit-for-bit.
    Static(PassMask),
    /// Epsilon-greedy: with probability `epsilon_milli`/1000 explore a
    /// uniformly random arm, otherwise exploit the best mean reward.
    EpsilonGreedy {
        /// Exploration probability in thousandths (100 = 10%).
        epsilon_milli: u32,
    },
    /// UCB1: choose the arm maximizing `mean + c * sqrt(ln(t) / n)`,
    /// after trying every arm once (in index order).
    Ucb {
        /// Exploration coefficient `c` in thousandths (1414 ≈ √2).
        c_milli: u32,
    },
}

impl ControllerMode {
    /// Parses a controller spec: `off`, `static:<pass spec>`,
    /// `egreedy[:<epsilon_milli>]`, or `ucb[:<c_milli>]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending spec.
    pub fn parse(spec: &str) -> Result<ControllerMode, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "off" => match arg {
                None => Ok(ControllerMode::Off),
                Some(_) => Err("`off` takes no argument".to_string()),
            },
            "static" => {
                let mask = PassMask::parse(arg.unwrap_or("all"))?;
                Ok(ControllerMode::Static(mask))
            }
            "egreedy" => {
                let e = parse_milli(arg, 100)?;
                Ok(ControllerMode::EpsilonGreedy { epsilon_milli: e })
            }
            "ucb" => {
                let c = parse_milli(arg, 1414)?;
                Ok(ControllerMode::Ucb { c_milli: c })
            }
            other => Err(format!(
                "unknown controller `{other}` (expected off, static:<spec>, egreedy[:milli], ucb[:milli])"
            )),
        }
    }

    /// The canonical label (inverse of [`parse`](Self::parse)).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ControllerMode::Off => "off".to_string(),
            ControllerMode::Static(m) => format!("static:{}", m.label()),
            ControllerMode::EpsilonGreedy { epsilon_milli } => format!("egreedy:{epsilon_milli}"),
            ControllerMode::Ucb { c_milli } => format!("ucb:{c_milli}"),
        }
    }
}

fn parse_milli(arg: Option<&str>, default: u32) -> Result<u32, String> {
    match arg {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad controller parameter `{v}` (expected an integer)")),
    }
}

/// Full controller configuration — `Copy` so it can live inside the fill
/// unit's configuration struct and hash into campaign run ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Arm-selection strategy.
    pub mode: ControllerMode,
    /// Epoch length in finalized segments (fills).
    pub epoch_fills: u64,
    /// Seed of the exploration stream.
    pub seed: u64,
}

impl Default for ControllerConfig {
    /// Controller off — the static machine.
    fn default() -> ControllerConfig {
        ControllerConfig {
            mode: ControllerMode::Off,
            epoch_fills: 64,
            seed: 0,
        }
    }
}

/// What happened at one epoch boundary (for telemetry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSummary {
    /// Epoch number, from 1.
    pub epoch: u64,
    /// The arm the closing epoch ran under.
    pub arm: PassMask,
    /// The closing epoch's reward (IPC observed at the fill unit).
    pub reward: f64,
    /// The arm chosen for the next epoch.
    pub next_arm: PassMask,
}

/// Per-arm running statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ArmStat {
    count: u64,
    mean: f64,
}

/// The online pass controller.
#[derive(Debug, Clone)]
pub struct PassController {
    cfg: ControllerConfig,
    arms: Vec<PassMask>,
    stats: Vec<ArmStat>,
    rng: SplitMix64,
    current: usize,
    epochs: u64,
    /// Fills and retires observed in the current epoch, and the cycle the
    /// epoch started at (the first event observed after the boundary).
    fills: u64,
    instrs: u64,
    epoch_start: Option<u64>,
    /// Passes withdrawn from service (the self-repair ladder's
    /// machine-wide disable). Subtracted from [`current`](Self::current)
    /// so arms keep their identity — and their reward statistics — while
    /// the offending pass sits out the rest of the run.
    blocked: PassMask,
}

impl PassController {
    /// Creates a controller, or `None` when the mode is
    /// [`ControllerMode::Off`].
    ///
    /// The epoch length is clamped to at least 1 fill.
    #[must_use]
    pub fn new(cfg: ControllerConfig) -> Option<PassController> {
        let arms = match cfg.mode {
            ControllerMode::Off => return None,
            ControllerMode::Static(m) => vec![m],
            ControllerMode::EpsilonGreedy { .. } | ControllerMode::Ucb { .. } => {
                DEFAULT_ARMS.to_vec()
            }
        };
        Some(PassController {
            stats: vec![ArmStat::default(); arms.len()],
            arms,
            rng: SplitMix64::new(cfg.seed),
            current: 0,
            epochs: 0,
            fills: 0,
            instrs: 0,
            epoch_start: None,
            blocked: PassMask::NONE,
            cfg,
        })
    }

    /// The pass subset segments finalized now should be optimized with:
    /// the current arm minus any passes withdrawn via
    /// [`block_passes`](Self::block_passes).
    #[must_use]
    pub fn current(&self) -> PassMask {
        self.arms[self.current].minus(self.blocked)
    }

    /// Withdraws `passes` from every future arm selection (cumulative).
    /// Used by the self-repair escalation ladder when a pass is disabled
    /// machine-wide.
    pub fn block_passes(&mut self, passes: PassMask) {
        self.blocked = self.blocked.union(passes);
    }

    /// The cumulative blocked mask.
    #[must_use]
    pub fn blocked(&self) -> PassMask {
        self.blocked
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// One retired instruction observed at cycle `now`.
    pub fn on_retire(&mut self, now: u64) {
        self.instrs += 1;
        self.epoch_start.get_or_insert(now);
    }

    /// One finalized segment at cycle `now`. Returns the epoch summary
    /// when this fill closes an epoch.
    pub fn on_fill(&mut self, now: u64) -> Option<EpochSummary> {
        self.fills += 1;
        self.epoch_start.get_or_insert(now);
        if self.fills < self.cfg.epoch_fills.max(1) {
            return None;
        }
        // Epoch boundary: credit the reward and pick the next arm.
        let cycles = now.saturating_sub(self.epoch_start.unwrap_or(now)).max(1);
        let reward = self.instrs as f64 / cycles as f64;
        let stat = &mut self.stats[self.current];
        stat.count += 1;
        stat.mean += (reward - stat.mean) / stat.count as f64;
        self.epochs += 1;
        let arm = self.arms[self.current];
        self.current = self.choose();
        self.fills = 0;
        self.instrs = 0;
        self.epoch_start = Some(now);
        Some(EpochSummary {
            epoch: self.epochs,
            arm,
            reward,
            next_arm: self.arms[self.current],
        })
    }

    /// Picks the arm for the next epoch.
    fn choose(&mut self) -> usize {
        match self.cfg.mode {
            ControllerMode::Off | ControllerMode::Static(_) => 0,
            ControllerMode::EpsilonGreedy { epsilon_milli } => {
                // Untried arms first, in index order, so every arm gets at
                // least one honest measurement before exploitation starts.
                if let Some(i) = self.stats.iter().position(|s| s.count == 0) {
                    return i;
                }
                if self.rng.range_u64(0, 1000) < u64::from(epsilon_milli.min(1000)) {
                    self.rng.range_u64(0, self.arms.len() as u64) as usize
                } else {
                    self.best_mean()
                }
            }
            ControllerMode::Ucb { c_milli } => {
                if let Some(i) = self.stats.iter().position(|s| s.count == 0) {
                    return i;
                }
                let c = f64::from(c_milli) / 1000.0;
                let t = self.epochs.max(1) as f64;
                let mut best = 0usize;
                let mut best_v = f64::MIN;
                for (i, s) in self.stats.iter().enumerate() {
                    let v = s.mean + c * (t.ln() / s.count as f64).sqrt();
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Index of the arm with the best mean reward (first on ties).
    fn best_mean(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f64::MIN;
        for (i, s) in self.stats.iter().enumerate() {
            if s.mean > best_v {
                best_v = s.mean;
                best = i;
            }
        }
        best
    }

    /// `(arm, epochs credited, mean reward)` for every arm, in arm order.
    pub fn arm_stats(&self) -> impl Iterator<Item = (PassMask, u64, f64)> + '_ {
        self.arms
            .iter()
            .zip(&self.stats)
            .map(|(&a, s)| (a, s.count, s.mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: ControllerMode) -> ControllerConfig {
        ControllerConfig {
            mode,
            epoch_fills: 2,
            seed: 42,
        }
    }

    #[test]
    fn off_mode_builds_no_controller() {
        assert!(PassController::new(ControllerConfig::default()).is_none());
    }

    #[test]
    fn static_mode_never_moves() {
        let mut c = PassController::new(cfg(ControllerMode::Static(PassMask::ALL))).unwrap();
        for i in 0..50 {
            assert_eq!(c.current(), PassMask::ALL);
            c.on_retire(i * 10);
            c.on_fill(i * 10 + 5);
        }
        assert!(c.epochs() > 0);
    }

    #[test]
    fn epoch_closes_every_n_fills() {
        let mut c = PassController::new(cfg(ControllerMode::Ucb { c_milli: 1414 })).unwrap();
        assert!(c.on_fill(10).is_none());
        let ep = c.on_fill(20).expect("second fill closes the epoch");
        assert_eq!(ep.epoch, 1);
        assert!(c.on_fill(30).is_none());
        assert!(c.on_fill(40).is_some());
    }

    #[test]
    fn ucb_tries_every_arm_then_converges_to_best() {
        let mut c = PassController::new(cfg(ControllerMode::Ucb { c_milli: 200 })).unwrap();
        let mut seen = std::collections::HashSet::new();
        // Arm 5 (ALL) pays 4 IPC, everything else 1: retire counts differ.
        for round in 0..200u64 {
            seen.insert(c.current());
            let ipc = if c.current() == PassMask::ALL { 40 } else { 10 };
            let base = round * 100;
            for k in 0..ipc {
                c.on_retire(base + k / 4);
            }
            c.on_fill(base + 10);
            c.on_fill(base + 20);
        }
        assert_eq!(seen.len(), DEFAULT_ARMS.len(), "all arms explored");
        let (best, _, _) = c
            .arm_stats()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert_eq!(best, PassMask::ALL);
        let pulls: Vec<(PassMask, u64)> = c.arm_stats().map(|(a, n, _)| (a, n)).collect();
        let all_pulls = pulls.iter().find(|(a, _)| *a == PassMask::ALL).unwrap().1;
        assert!(
            all_pulls > 100,
            "best arm should dominate pulls, got {pulls:?}"
        );
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mk = || PassController::new(cfg(ControllerMode::EpsilonGreedy { epsilon_milli: 300 }));
        let (mut a, mut b) = (mk().unwrap(), mk().unwrap());
        for i in 0..500u64 {
            assert_eq!(a.current(), b.current());
            a.on_retire(i * 7);
            b.on_retire(i * 7);
            a.on_fill(i * 7 + 3);
            b.on_fill(i * 7 + 3);
        }
        assert_eq!(a.epochs(), b.epochs());
    }

    #[test]
    fn mode_parse_label_roundtrip() {
        for spec in [
            "off",
            "static:all",
            "static:moves,scadd",
            "egreedy:100",
            "ucb:1414",
        ] {
            let m = ControllerMode::parse(spec).unwrap();
            assert_eq!(m.label(), spec);
        }
        assert_eq!(
            ControllerMode::parse("egreedy").unwrap(),
            ControllerMode::EpsilonGreedy { epsilon_milli: 100 }
        );
        assert_eq!(
            ControllerMode::parse("ucb").unwrap(),
            ControllerMode::Ucb { c_milli: 1414 }
        );
        assert!(ControllerMode::parse("thompson").is_err());
        assert!(ControllerMode::parse("egreedy:lots").is_err());
        assert!(ControllerMode::parse("static:frob").is_err());
        assert!(ControllerMode::parse("off:3").is_err());
    }

    #[test]
    fn blocked_passes_are_subtracted_from_every_arm() {
        let mut c = PassController::new(cfg(ControllerMode::Static(PassMask::ALL))).unwrap();
        assert_eq!(c.current(), PassMask::ALL);
        c.block_passes(PassMask::SCADD);
        assert_eq!(c.current(), PassMask::ALL.minus(PassMask::SCADD));
        c.block_passes(PassMask::MOVES);
        assert_eq!(
            c.current(),
            PassMask::ALL.minus(PassMask::SCADD).minus(PassMask::MOVES)
        );
        assert_eq!(c.blocked(), PassMask::SCADD.union(PassMask::MOVES));
        // Arm identity (and its stats) survive the block: epochs still close.
        c.on_retire(5);
        c.on_fill(10);
        c.on_fill(20);
        assert_eq!(c.epochs(), 1);
    }
}
