//! # tracefill-policy
//!
//! The adaptive policy engine: dynamic decision surfaces for the fill unit
//! and the trace cache, going beyond the paper's fixed configuration.
//!
//! The paper applies its four fill-unit optimizations unconditionally, yet
//! its own Table 2 shows applicability varies wildly per benchmark — a
//! pass that rarely fires still pays fill-pipe latency and verification
//! work. This crate provides two pluggable decision surfaces:
//!
//! * [`bandit`] — an **online pass controller** that, per epoch of N
//!   fills, chooses which optimization passes to enable using only
//!   telemetry the fill unit already sees (its retire stream and fill
//!   counts). Arm selection is a deterministic seeded bandit
//!   (epsilon-greedy or UCB1 over pass subsets), so the same seed always
//!   produces byte-identical simulations.
//! * [`replace`] — a **replacement-policy trait** for the trace cache,
//!   with LRU (the paper's behavior, extracted from `tcache.rs`), SRRIP
//!   (static re-reference interval prediction), and a TRRIP-style
//!   temperature policy keyed on segment provenance and hit history.
//!
//! Both surfaces are configured through small `Copy` config values
//! ([`ControllerConfig`], [`ReplacementKind`]) so they can live inside the
//! simulator's existing `Copy` configuration structs and participate in
//! campaign grids. The crate sits *below* `tracefill-core` in the
//! dependency order: it never names segments or instructions, only the
//! abstract facts core hands it ([`PassMask`], [`LineAttrs`], ticks).
//!
//! # Examples
//!
//! Deterministic arm selection over pass subsets:
//!
//! ```
//! use tracefill_policy::{ControllerConfig, ControllerMode, PassController, PassMask};
//!
//! let cfg = ControllerConfig {
//!     mode: ControllerMode::Ucb { c_milli: 500 },
//!     epoch_fills: 4,
//!     seed: 7,
//! };
//! let mut a = PassController::new(cfg).unwrap();
//! let mut b = PassController::new(cfg).unwrap();
//! for fill in 0..64u64 {
//!     // Same seed, same retire/fill stream => identical arm sequences.
//!     let now = fill * 4;
//!     a.on_retire(now);
//!     b.on_retire(now);
//!     assert_eq!(a.current(), b.current());
//!     a.on_fill(now);
//!     b.on_fill(now);
//! }
//! assert_eq!(a.current(), b.current());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandit;
pub mod mask;
pub mod replace;

pub use bandit::{ControllerConfig, ControllerMode, EpochSummary, PassController};
pub use mask::PassMask;
pub use replace::{LineAttrs, PolicyCounters, ReplacePolicy, ReplacementKind};
