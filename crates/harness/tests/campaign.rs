//! End-to-end campaign engine tests: determinism, resume, panic
//! isolation, and jobs-count invariance — the properties the engine
//! guarantees and the paper-reproduction pipeline depends on.

use tracefill_core::config::OptConfig;
use tracefill_harness::{
    report, run_campaign, CampaignSpec, OptPoint, ResultStore, RunRecord, RunStatus,
};

/// A small, fast grid: 2 workloads × {none, all} × 1 latency × 2 seeds
/// = 8 runs, each a few thousand instructions.
fn small_spec() -> CampaignSpec {
    CampaignSpec {
        name: "it-small".to_string(),
        opt_sets: vec![
            OptPoint {
                label: "none".to_string(),
                opts: OptConfig::none(),
            },
            OptPoint {
                label: "all".to_string(),
                opts: OptConfig::all(),
            },
        ],
        fill_latencies: vec![1],
        benchmarks: vec!["m88k".to_string(), "gen:8".to_string()],
        seeds: vec![0, 1],
        warmup: 1_000,
        budget: 2_000,
        max_cycles: 10_000_000,
        wall_limit_ms: 60_000,
        policies: vec!["lru".to_string()],
        controller: "off".to_string(),
        epoch_fills: 1024,
        ledger: false,
        self_repair: false,
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tracefill-campaign-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Rows sorted by id and stripped of timing for content comparison.
fn canonical(records: &[RunRecord]) -> Vec<String> {
    let mut rows: Vec<String> = records.iter().map(RunRecord::canonical_json).collect();
    rows.sort();
    rows
}

#[test]
fn same_spec_produces_identical_rows() {
    let spec = small_spec();
    let (pa, pb) = (tmp("det-a"), tmp("det-b"));
    let mut sa = ResultStore::open(&pa).unwrap();
    let mut sb = ResultStore::open(&pb).unwrap();
    run_campaign(&spec, &mut sa, 2, false).unwrap();
    run_campaign(&spec, &mut sb, 2, false).unwrap();
    let (ra, rb) = (sa.load().unwrap(), sb.load().unwrap());
    assert_eq!(ra.len(), 8);
    assert_eq!(canonical(&ra), canonical(&rb));
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
}

#[test]
fn resume_skips_completed_ids() {
    let spec = small_spec();
    let path = tmp("resume");
    let mut store = ResultStore::open(&path).unwrap();
    let first = run_campaign(&spec, &mut store, 2, false).unwrap();
    assert_eq!(first.executed, 8);
    assert_eq!(first.skipped, 0);

    // Second invocation on the same store: everything is already there.
    let mut store = ResultStore::open(&path).unwrap();
    let second = run_campaign(&spec, &mut store, 2, false).unwrap();
    assert_eq!(second.skipped, 8);
    assert_eq!(second.executed, 0);
    assert_eq!(store.load().unwrap().len(), 8, "no duplicate rows");

    // Partial resume: drop half the *record* rows (heartbeat rows don't
    // count — a started-but-unfinished run must re-execute) and re-run —
    // only the dropped half executes.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut records_kept = 0;
    let kept: Vec<&str> = text
        .lines()
        .take_while(|l| {
            if !l.contains("\"hb\":") {
                records_kept += 1;
            }
            records_kept <= 4
        })
        .collect();
    std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();
    let mut store = ResultStore::open(&path).unwrap();
    let third = run_campaign(&spec, &mut store, 2, false).unwrap();
    assert_eq!(third.skipped, 4);
    assert_eq!(third.executed, 4);
    assert_eq!(store.load().unwrap().len(), 8);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panic_in_one_run_does_not_kill_the_campaign() {
    let mut spec = small_spec();
    spec.name = "it-panic".to_string();
    spec.benchmarks = vec!["__panic__".to_string(), "m88k".to_string()];
    spec.seeds = vec![0];
    let path = tmp("panic");
    let mut store = ResultStore::open(&path).unwrap();
    let summary = run_campaign(&spec, &mut store, 2, false).unwrap();
    assert_eq!(summary.executed, 4);
    assert_eq!(summary.failed, 2, "both __panic__ cells fail");

    let records = store.load().unwrap();
    assert_eq!(records.len(), 4);
    for r in &records {
        if r.bench == "__panic__" {
            assert!(
                matches!(r.status, RunStatus::Panic(_)),
                "expected Panic, got {:?}",
                r.status
            );
        } else {
            assert!(r.status.is_ok(), "m88k row failed: {:?}", r.status);
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn jobs_one_and_jobs_four_aggregate_identically() {
    let spec = small_spec();
    let (p1, p4) = (tmp("jobs-1"), tmp("jobs-4"));
    let mut s1 = ResultStore::open(&p1).unwrap();
    let mut s4 = ResultStore::open(&p4).unwrap();
    run_campaign(&spec, &mut s1, 1, false).unwrap();
    run_campaign(&spec, &mut s4, 4, false).unwrap();
    let (r1, r4) = (s1.load().unwrap(), s4.load().unwrap());

    // Row *content* is identical (order may differ with more workers).
    assert_eq!(canonical(&r1), canonical(&r4));

    // And the report layer, which sorts internally, renders byte-identical
    // tables straight from the unsorted rows.
    assert_eq!(report::aggregates(&r1), report::aggregates(&r4));
    assert_eq!(report::fig8_table(&r1), report::fig8_table(&r4));
    assert_eq!(report::summary(&r1), report::summary(&r4));
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}

#[test]
fn report_reproduces_tables_from_jsonl_alone() {
    // The acceptance path: campaign -> JSONL -> report, no live state.
    let spec = small_spec();
    let path = tmp("jsonl-only");
    let mut store = ResultStore::open(&path).unwrap();
    run_campaign(&spec, &mut store, 2, false).unwrap();
    drop(store);

    let records = tracefill_harness::store::load_records(&path).unwrap();
    assert_eq!(records.len(), 8);
    let table = report::fig8_table(&records);
    assert!(table.contains("m88k"), "{table}");
    assert!(table.contains("all@lat1"), "{table}");
    let _ = std::fs::remove_file(&path);
}
