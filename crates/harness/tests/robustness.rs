//! Self-healing harness tests: quarantine after repeated panics (including
//! across resume), graceful wall-budget cancellation, and deterministic
//! fault-injection sweeps through the campaign layer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tracefill_core::config::OptConfig;
use tracefill_harness::{
    report, run_campaign_with, CampaignOptions, CampaignSpec, OptPoint, RepairSummary, ResultStore,
    RunStatus,
};

fn spec(name: &str, benches: &[&str], seeds: &[u64], budget: u64) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        opt_sets: vec![OptPoint {
            label: "none".to_string(),
            opts: OptConfig::none(),
        }],
        fill_latencies: vec![1],
        benchmarks: benches.iter().map(|b| (*b).to_string()).collect(),
        seeds: seeds.to_vec(),
        warmup: 500,
        budget,
        max_cycles: 10_000_000,
        wall_limit_ms: 60_000,
        policies: vec!["lru".to_string()],
        controller: "off".to_string(),
        epoch_fills: 1024,
        ledger: false,
        self_repair: false,
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tracefill-robust-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn repeated_panics_quarantine_the_cell_and_resume_honors_it() {
    let spec1 = spec(
        "rb-quarantine",
        &["__panic__", "m88k"],
        &[0, 1, 2, 3, 4],
        2_000,
    );
    let path = tmp("quarantine");
    let mut store = ResultStore::open(&path).unwrap();
    let options = CampaignOptions {
        jobs: 1, // serial: the panic streak accumulates deterministically
        live_progress: false,
        quarantine_after: 3,
        cancel: None,
        wall_budget_ms: 0,
    };
    let summary = run_campaign_with(&spec1, &mut store, &options).unwrap();
    assert_eq!(summary.total, 10);
    assert_eq!(
        summary.failed, 3,
        "exactly quarantine_after panics execute before the cell is poisoned"
    );
    assert_eq!(summary.quarantined, 2, "the remaining seeds are skipped");
    assert_eq!(summary.executed, 8, "3 panics + 5 healthy m88k runs");
    assert!(!summary.cancelled);

    let records = store.load().unwrap();
    assert_eq!(records.len(), 10, "every grid point leaves a row");
    let quarantined: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.status, RunStatus::Quarantined(_)))
        .collect();
    assert_eq!(quarantined.len(), 2);
    for r in &quarantined {
        assert_eq!(r.bench, "__panic__");
        if let RunStatus::Quarantined(key) = &r.status {
            assert!(key.contains("__panic__|none"), "{key}");
        }
    }
    // Panic rows carry the full configuration echo and a source location.
    let panics: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.status {
            RunStatus::Panic(d) => Some(d.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(panics.len(), 3);
    for d in &panics {
        assert!(d.contains("bench=__panic__"), "{d}");
        assert!(d.contains("opts=none"), "{d}");
        assert!(d.contains("seed="), "{d}");
        assert!(d.contains(".rs:"), "panic location missing: {d}");
    }
    // The marker row is persisted…
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"q\":1"), "{text}");
    // …and the report layer surfaces the quarantine decision.
    let summary_text = report::summary(&records);
    assert!(summary_text.contains("quarantined"), "{summary_text}");

    // A *resumed* campaign with new seeds honors the persisted quarantine:
    // the poisoned cell's new runs never execute.
    let spec2 = spec(
        "rb-quarantine",
        &["__panic__", "m88k"],
        &[0, 1, 2, 3, 4, 5, 6],
        2_000,
    );
    let mut store = ResultStore::open(&path).unwrap();
    let resumed = run_campaign_with(&spec2, &mut store, &options).unwrap();
    assert_eq!(resumed.total, 14);
    assert_eq!(resumed.skipped, 10, "all previously recorded rows skip");
    assert_eq!(
        resumed.quarantined, 2,
        "new __panic__ seeds skip unexecuted"
    );
    assert_eq!(resumed.executed, 2, "only the new m88k seeds run");
    assert_eq!(resumed.failed, 0, "no new panic ever executed");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wall_budget_cancels_gracefully_and_resume_completes_the_sweep() {
    let s = spec("rb-wall", &["m88k"], &[0, 1, 2, 3], 100_000);
    let path = tmp("wall");
    let mut store = ResultStore::open(&path).unwrap();
    let options = CampaignOptions {
        jobs: 2,
        live_progress: false,
        quarantine_after: 3,
        cancel: None,
        wall_budget_ms: 30,
    };
    let summary = run_campaign_with(&s, &mut store, &options).unwrap();
    assert!(summary.cancelled, "the wall budget must trip");
    let ok_before = store
        .load()
        .unwrap()
        .iter()
        .filter(|r| r.status.is_ok())
        .count();
    assert!(ok_before < 4, "the budget must interrupt the sweep");
    // In-flight runs were flushed as `cancelled`, not lost or torn.
    assert!(
        store
            .load()
            .unwrap()
            .iter()
            .any(|r| matches!(r.status, RunStatus::Cancelled)),
        "interrupted runs must leave cancelled rows"
    );

    // Resume without a budget: cancelled rows do not count as completed,
    // so the interrupted work re-executes and the sweep finishes.
    let mut store = ResultStore::open(&path).unwrap();
    let resumed = run_campaign_with(
        &s,
        &mut store,
        &CampaignOptions {
            wall_budget_ms: 0,
            ..options
        },
    )
    .unwrap();
    assert!(!resumed.cancelled);
    assert_eq!(resumed.skipped, ok_before);
    let records = store.load().unwrap();
    let ok_ids: std::collections::HashSet<&str> = records
        .iter()
        .filter(|r| r.status.is_ok())
        .map(|r| r.run_id.as_str())
        .collect();
    assert_eq!(ok_ids.len(), 4, "every grid point eventually completes Ok");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn external_cancel_flag_stops_the_campaign() {
    let s = spec("rb-cancel", &["m88k"], &[0, 1, 2, 3], 100_000);
    let path = tmp("cancel");
    let mut store = ResultStore::open(&path).unwrap();
    let flag = Arc::new(AtomicBool::new(true)); // pre-raised, e.g. by Ctrl-C
    let options = CampaignOptions {
        jobs: 2,
        live_progress: false,
        quarantine_after: 3,
        cancel: Some(flag.clone()),
        wall_budget_ms: 0,
    };
    let summary = run_campaign_with(&s, &mut store, &options).unwrap();
    assert!(summary.cancelled);
    assert!(
        summary.executed < 4,
        "a pre-raised flag must not let the whole sweep run"
    );
    assert!(
        flag.load(Ordering::Relaxed),
        "the caller's flag is not reset"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unreadable_repair_columns_are_counted_skipped_and_resume_survives() {
    // Forward compatibility: a store that has been touched by a newer tool
    // (rows whose `repair` member this version cannot read) must load with
    // those rows counted and skipped — and resuming a campaign over the
    // same store must still work.
    let s = spec("rb-fwd", &["m88k"], &[0, 1], 2_000);
    let path = tmp("fwd");
    let mut store = ResultStore::open(&path).unwrap();
    let options = CampaignOptions::standard(1, false);
    run_campaign_with(&s, &mut store, &options).unwrap();
    let (clean, malformed) = store.load_counted().unwrap();
    assert_eq!((clean.len(), malformed), (2, 0));
    assert!(
        clean.iter().all(|r| r.repair.is_none()),
        "rows written without --self-repair carry no summary"
    );

    // Hand-append what a future tool might have merged in: two rows with
    // repair shapes this version can't read, one well-formed armed row.
    use std::io::Write as _;
    use tracefill_util::Json;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    let mut foreign = clean[0].clone();
    foreign.run_id = "future-row-a".to_string();
    let wrong_type = foreign.to_json().with("repair", Json::from("v9-opaque"));
    writeln!(f, "{}", wrong_type.dump()).unwrap();
    foreign.run_id = "future-row-b".to_string();
    let missing_counters = foreign
        .to_json()
        .with("repair", Json::object().with("repairs", 3u64));
    writeln!(f, "{}", missing_counters.dump()).unwrap();
    foreign.run_id = "future-row-c".to_string();
    foreign.repair = Some(RepairSummary {
        repairs: 2,
        quarantined: 1,
        disabled: 0,
    });
    writeln!(f, "{}", foreign.to_json().dump()).unwrap();
    drop(f);

    let (records, malformed) = store.load_counted().unwrap();
    assert_eq!(malformed, 2, "each unreadable row costs exactly one row");
    assert_eq!(
        records.len(),
        3,
        "campaign rows plus the well-formed armed row"
    );
    assert!(records.iter().any(|r| r.repair
        == Some(RepairSummary {
            repairs: 2,
            quarantined: 1,
            disabled: 0,
        })));
    // The report layer renders availability from the surviving rows.
    let t = report::availability_table(&records);
    assert!(t.contains("avail%"), "{t}");

    // Resume over the same spec: the foreign rows neither block nor
    // re-execute anything.
    let mut store = ResultStore::open(&path).unwrap();
    let resumed = run_campaign_with(&s, &mut store, &options).unwrap();
    assert_eq!(resumed.skipped, 2, "both original grid points skip");
    assert_eq!(resumed.executed, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_fault_injection_runs_are_deterministic() {
    // The harness executes plain (fault-free) runs; determinism of the
    // *injection* path is campaign-visible through the sim layer. Two
    // campaigns over the same spec must produce identical canonical rows —
    // including after the verify/oracle hardening, which is always on.
    let s = spec("rb-det", &["m88k", "gen:5"], &[0, 1], 2_000);
    let (pa, pb) = (tmp("det-a"), tmp("det-b"));
    let mut sa = ResultStore::open(&pa).unwrap();
    let mut sb = ResultStore::open(&pb).unwrap();
    let options = CampaignOptions::standard(2, false);
    run_campaign_with(&s, &mut sa, &options).unwrap();
    run_campaign_with(&s, &mut sb, &options).unwrap();
    let canon = |store: &ResultStore| {
        let mut rows: Vec<String> = store
            .load()
            .unwrap()
            .iter()
            .map(tracefill_harness::RunRecord::canonical_json)
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(canon(&sa), canon(&sb));
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
}
