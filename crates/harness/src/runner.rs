//! Executes one [`RunDescriptor`]: program construction, warmup, the
//! measured window, and the per-run watchdogs.
//!
//! Two watchdogs bound every run:
//!
//! * a **cycle cap** (`max_cycles`, part of the run id) — configurations
//!   that stop retiring at a healthy rate (e.g. the bistable `tex` kernel
//!   under an adversarial machine) hit this deterministically;
//! * a **wall-clock cap** (`wall_limit_ms`, *not* part of the id) — a
//!   last-resort guard so a pathologically slow host or an unforeseen
//!   slowdown cannot hang a whole sweep. The simulator is stepped in
//!   bounded chunks via [`Simulator::run_budgeted`], and the clock is
//!   checked between chunks.
//!
//! Workload resolution understands three families:
//!
//! * suite kernels by short or full name (`m88k`, `compress`, …) — the
//!   seed is recorded but does not perturb the deterministic kernels;
//! * `gen:<blocks>` — the pattern-mix generator with `<blocks>` pattern
//!   blocks per iteration (default mix), seeded per run, so seed sweeps
//!   produce genuinely different programs;
//! * `__panic__` — a test hook that panics inside the worker, used to
//!   prove panic isolation; it is never produced by spec parsing.

use crate::grid::RunDescriptor;
use std::sync::atomic::AtomicBool;
use std::time::Instant;
use tracefill_core::config::{ControllerConfig, ControllerMode};
use tracefill_isa::Program;
use tracefill_sim::{CpiStack, RunExit, SimConfig, Simulator, Stats};
use tracefill_util::{Json, Registry};
use tracefill_workloads::gen::{generate, PatternMix};

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The measured window completed (or the program exited inside it).
    Ok,
    /// The cycle watchdog fired before the window completed.
    CycleLimit,
    /// The wall-clock watchdog fired.
    Timeout,
    /// The campaign was cancelled mid-run.
    Cancelled,
    /// The simulator reported a fatal error (oracle divergence, deadlock,
    /// program fault) — the message is preserved.
    SimError(String),
    /// The run panicked; the payload is preserved.
    Panic(String),
    /// The run was skipped because its configuration was quarantined
    /// (K consecutive panics earlier in the campaign, this invocation or a
    /// previous one); the quarantine key is preserved.
    Quarantined(String),
}

impl RunStatus {
    /// Whether this record carries a usable measurement.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Ok)
    }

    fn tag(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::CycleLimit => "cycle-limit",
            RunStatus::Timeout => "timeout",
            RunStatus::Cancelled => "cancelled",
            RunStatus::SimError(_) => "sim-error",
            RunStatus::Panic(_) => "panic",
            RunStatus::Quarantined(_) => "quarantined",
        }
    }

    fn detail(&self) -> Option<&str> {
        match self {
            RunStatus::SimError(d) | RunStatus::Panic(d) | RunStatus::Quarantined(d) => Some(d),
            _ => None,
        }
    }
}

/// Self-repair availability counters for one run — present only on rows
/// produced with `--self-repair`, so plain stores stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairSummary {
    /// Contained failures (0 for a clean armed run).
    pub repairs: u64,
    /// Pass quarantines the ladder issued.
    pub quarantined: u64,
    /// Machine-wide pass disables the ladder issued.
    pub disabled: u64,
}

impl RepairSummary {
    fn to_json(self) -> Json {
        Json::object()
            .with("repairs", self.repairs)
            .with("quarantined", self.quarantined)
            .with("disabled", self.disabled)
    }

    /// Strict parse: a present-but-malformed `repair` member is an error,
    /// so the store loader can count and skip rows written by a newer
    /// incompatible tool instead of silently misreading them.
    fn from_json(v: &Json) -> Result<RepairSummary, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("repair summary missing number `{k}`"))
        };
        Ok(RepairSummary {
            repairs: u("repairs")?,
            quarantined: u("quarantined")?,
            disabled: u("disabled")?,
        })
    }
}

/// One completed run — the JSONL row format of the result store.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Stable run id (matches the descriptor).
    pub run_id: String,
    /// Campaign name, for provenance when stores are merged.
    pub campaign: String,
    /// Benchmark name.
    pub bench: String,
    /// Optimization label.
    pub opt_label: String,
    /// Fill latency (cycles).
    pub fill_latency: u32,
    /// Workload seed.
    pub seed: u64,
    /// Trace-cache replacement policy name (`lru` for legacy rows).
    pub policy: String,
    /// Pass-controller mode label (`off` for legacy rows).
    pub controller: String,
    /// Outcome.
    pub status: RunStatus,
    /// IPC over the measured window (0 for failed runs).
    pub ipc: f64,
    /// Cycles in the measured window.
    pub window_cycles: u64,
    /// Instructions retired in the measured window.
    pub window_retired: u64,
    /// Cumulative pipeline counters at end of run.
    pub stats: Stats,
    /// CPI-stack slot attribution over the measured window (empty for
    /// failed runs and for rows written before the stack existed).
    pub cpi: CpiStack,
    /// Fill-unit and pipeline telemetry at end of run (accept/reject
    /// counters, distributions; empty for pre-telemetry rows).
    pub metrics: Registry,
    /// Self-repair availability counters; `None` for plain rows (and for
    /// every row written before self-repair existed).
    pub repair: Option<RepairSummary>,
    /// Wall-clock milliseconds the run took (timing field: excluded from
    /// determinism comparisons).
    pub wall_ms: u64,
}

impl RunRecord {
    /// The full JSONL row.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut v = Json::object()
            .with("v", 1u64)
            .with("run_id", self.run_id.as_str())
            .with("campaign", self.campaign.as_str())
            .with("bench", self.bench.as_str())
            .with("opts", self.opt_label.as_str())
            .with("fill_latency", self.fill_latency)
            .with("seed", self.seed)
            .with("policy", self.policy.as_str())
            .with("controller", self.controller.as_str())
            .with("status", self.status.tag());
        if let Some(d) = self.status.detail() {
            v = v.with("detail", d);
        }
        if let Some(r) = self.repair {
            v = v.with("repair", r.to_json());
        }
        v.with("ipc", self.ipc)
            .with("window_cycles", self.window_cycles)
            .with("window_retired", self.window_retired)
            .with("stats", self.stats.to_json())
            .with("cpi", self.cpi.to_json())
            .with("metrics", self.metrics.to_json())
            .with("wall_ms", self.wall_ms)
    }

    /// The row without timing fields — byte-identical across reruns of the
    /// same descriptor, regardless of parallelism or host speed.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut v = self.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "wall_ms");
        }
        v.dump()
    }

    /// Parses a JSONL row.
    ///
    /// # Errors
    ///
    /// Reports missing/mistyped required members.
    pub fn from_json(v: &Json) -> Result<RunRecord, String> {
        let s = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row missing string `{k}`"))
        };
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row missing number `{k}`"))
        };
        let status = match (
            s("status")?.as_str(),
            v.get("detail").and_then(Json::as_str),
        ) {
            ("ok", _) => RunStatus::Ok,
            ("cycle-limit", _) => RunStatus::CycleLimit,
            ("timeout", _) => RunStatus::Timeout,
            ("cancelled", _) => RunStatus::Cancelled,
            ("sim-error", d) => RunStatus::SimError(d.unwrap_or("").to_string()),
            ("panic", d) => RunStatus::Panic(d.unwrap_or("").to_string()),
            ("quarantined", d) => RunStatus::Quarantined(d.unwrap_or("").to_string()),
            (other, _) => return Err(format!("unknown status `{other}`")),
        };
        Ok(RunRecord {
            run_id: s("run_id")?,
            campaign: s("campaign").unwrap_or_default(),
            bench: s("bench")?,
            opt_label: s("opts")?,
            fill_latency: u32::try_from(u("fill_latency")?).map_err(|e| e.to_string())?,
            seed: u("seed")?,
            // Rows written before the policy axes existed ran the static
            // LRU machine.
            policy: s("policy").unwrap_or_else(|_| "lru".to_string()),
            controller: s("controller").unwrap_or_else(|_| "off".to_string()),
            status,
            ipc: v.get("ipc").and_then(Json::as_f64).unwrap_or(0.0),
            window_cycles: u("window_cycles").unwrap_or(0),
            window_retired: u("window_retired").unwrap_or(0),
            stats: v.get("stats").map(Stats::from_json).unwrap_or_default(),
            cpi: v.get("cpi").map(CpiStack::from_json).unwrap_or_default(),
            metrics: v
                .get("metrics")
                .and_then(|m| Registry::from_json(m).ok())
                .unwrap_or_default(),
            repair: match v.get("repair") {
                None => None,
                Some(r) => Some(RepairSummary::from_json(r)?),
            },
            wall_ms: u("wall_ms").unwrap_or(0),
        })
    }
}

/// Builds the program for a descriptor.
///
/// # Errors
///
/// Unknown benchmark names or assembler failures (both indicate a spec or
/// kernel bug; spec parsing validates names up front).
pub fn build_program(desc: &RunDescriptor) -> Result<Program, String> {
    let total_instrs = desc.warmup + desc.budget;
    if let Some(arg) = desc.bench.strip_prefix("gen:") {
        let blocks: usize = if arg.is_empty() {
            24
        } else {
            arg.parse()
                .map_err(|_| format!("bad gen block count `{arg}`"))?
        };
        // ~4 dynamic instructions per block plus loop overhead.
        let per_iter = (blocks as u64) * 4 + 4;
        let scale = u32::try_from((total_instrs * 2) / per_iter.max(1) + 2).unwrap_or(u32::MAX);
        return generate(&PatternMix::default(), blocks, scale, desc.seed)
            .map_err(|e| format!("gen workload failed to assemble: {e}"));
    }
    let bench = tracefill_workloads::by_name(&desc.bench)
        .ok_or_else(|| format!("unknown benchmark `{}`", desc.bench))?;
    bench
        .program(bench.scale_for(total_instrs * 2))
        .map_err(|e| format!("{}: kernel failed to assemble: {e}", desc.bench))
}

/// Outcome of one bounded phase (warmup or measurement).
enum Phase {
    /// Retired the requested instructions (or the program finished).
    Done,
    Failed(RunStatus),
}

fn advance(
    sim: &mut Simulator,
    instrs: u64,
    cycle_cap: u64,
    deadline: Instant,
    cancel: Option<&AtomicBool>,
) -> Phase {
    /// Cycles simulated between wall-clock checks.
    const CHUNK_CYCLES: u64 = 1 << 20;
    let instr_target = sim.stats().retired + instrs;
    loop {
        let remaining_instrs = instr_target.saturating_sub(sim.stats().retired);
        if remaining_instrs == 0 {
            return Phase::Done;
        }
        let remaining_cycles = cycle_cap.saturating_sub(sim.cycle());
        if remaining_cycles == 0 {
            return Phase::Failed(RunStatus::CycleLimit);
        }
        let chunk = remaining_cycles.min(CHUNK_CYCLES);
        match sim.run_budgeted(remaining_instrs, chunk, cancel) {
            Ok(RunExit::Exited(_) | RunExit::Break | RunExit::InstrLimit) => return Phase::Done,
            Ok(RunExit::Cancelled) => return Phase::Failed(RunStatus::Cancelled),
            Ok(RunExit::CycleLimit) => {
                if Instant::now() >= deadline {
                    return Phase::Failed(RunStatus::Timeout);
                }
                // Chunk boundary: loop and keep going.
            }
            Err(e) => return Phase::Failed(RunStatus::SimError(e.to_string())),
        }
    }
}

/// Executes one run to completion (or watchdog) and returns its record.
///
/// Never panics on simulator errors — they land in
/// [`RunStatus::SimError`]. Panics from kernel/assembler bugs (or the
/// `__panic__` test hook) propagate; the worker pool catches them.
#[must_use]
pub fn execute(desc: &RunDescriptor, campaign: &str, cancel: Option<&AtomicBool>) -> RunRecord {
    let start = Instant::now();
    let deadline = start + std::time::Duration::from_millis(desc.wall_limit_ms);

    assert!(
        desc.bench != "__panic__",
        "injected panic (test hook) in run {}",
        desc.run_id
    );

    let mut record = RunRecord {
        run_id: desc.run_id.clone(),
        campaign: campaign.to_string(),
        bench: desc.bench.clone(),
        opt_label: desc.opt_label.clone(),
        fill_latency: desc.fill_latency,
        seed: desc.seed,
        policy: desc.policy.name().to_string(),
        controller: desc.controller.label(),
        status: RunStatus::Ok,
        ipc: 0.0,
        window_cycles: 0,
        window_retired: 0,
        stats: Stats::default(),
        cpi: CpiStack::default(),
        metrics: Registry::new(),
        repair: desc.self_repair.then(RepairSummary::default),
        wall_ms: 0,
    };

    let prog = match build_program(desc) {
        Ok(p) => p,
        Err(e) => {
            record.status = RunStatus::SimError(e);
            record.wall_ms = start.elapsed().as_millis() as u64;
            return record;
        }
    };

    let mut cfg = SimConfig::with_opts(desc.opts);
    cfg.fill.latency = desc.fill_latency;
    cfg.tcache.policy = desc.policy;
    cfg.ledger = desc.ledger;
    cfg.self_repair.enabled = desc.self_repair;
    if desc.controller != ControllerMode::Off {
        cfg.fill.controller = ControllerConfig {
            mode: desc.controller,
            epoch_fills: desc.epoch_fills.max(1),
            seed: desc.seed,
        };
    }
    let mut sim = Simulator::new(&prog, cfg);

    // Warmup: trace cache, bias table and predictor state need a long
    // run-in before the steady state is representative.
    if let Phase::Failed(status) = advance(&mut sim, desc.warmup, desc.max_cycles, deadline, cancel)
    {
        record.status = status;
        record.stats = sim.stats();
        record.wall_ms = start.elapsed().as_millis() as u64;
        return record;
    }

    let (c0, r0) = (sim.cycle(), sim.stats().retired);
    let cpi0 = sim.cpi();
    let phase = advance(&mut sim, desc.budget, desc.max_cycles, deadline, cancel);
    record.window_cycles = sim.cycle() - c0;
    record.window_retired = sim.stats().retired - r0;
    record.ipc = record.window_retired as f64 / record.window_cycles.max(1) as f64;
    record.stats = sim.stats();
    record.cpi = sim.cpi().delta_since(&cpi0);
    record.metrics = sim.report().metrics;
    if desc.self_repair {
        record.repair = Some(RepairSummary {
            repairs: record.metrics.counter("repair.total"),
            quarantined: record.metrics.counter("repair.quarantined"),
            disabled: record.metrics.counter("repair.disabled"),
        });
    }
    record.status = match phase {
        Phase::Done => RunStatus::Ok,
        Phase::Failed(status) => status,
    };
    record.wall_ms = start.elapsed().as_millis() as u64;
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CampaignSpec;

    fn tiny_desc(bench: &str) -> RunDescriptor {
        let mut spec = CampaignSpec::fig8();
        spec.benchmarks = vec![bench.to_string()];
        spec.fill_latencies = vec![1];
        spec.warmup = 2_000;
        spec.budget = 2_000;
        spec.max_cycles = 5_000_000;
        spec.expand().remove(0)
    }

    #[test]
    fn executes_a_suite_kernel() {
        let rec = execute(&tiny_desc("m88k"), "test", None);
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        assert!(rec.ipc > 0.0);
        assert!(rec.window_retired >= 2_000);
    }

    #[test]
    fn ledgered_runs_carry_ledger_metrics_without_perturbing_the_run() {
        let plain_desc = tiny_desc("m88k");
        let plain = execute(&plain_desc, "t", None);
        assert!(plain
            .metrics
            .counters()
            .all(|(k, _)| !k.starts_with("ledger.")));
        let mut desc = plain_desc;
        desc.ledger = true;
        let rec = execute(&desc, "t", None);
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        assert!(rec.metrics.counter("ledger.segments") > 0);
        assert!(rec.metrics.histogram("ledger.reuse").is_some());
        // Observation only: the simulation itself is identical.
        assert_eq!(rec.stats, plain.stats);
        assert_eq!(rec.window_cycles, plain.window_cycles);
    }

    #[test]
    fn self_repair_runs_carry_a_summary_without_perturbing_the_run() {
        let plain_desc = tiny_desc("m88k");
        let plain = execute(&plain_desc, "t", None);
        assert_eq!(plain.repair, None);
        assert!(!plain.to_json().dump().contains("\"repair\""));
        let mut desc = plain_desc;
        desc.self_repair = true;
        let rec = execute(&desc, "t", None);
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        // A healthy machine records zero repairs — and simulates
        // identically to the plain run.
        assert_eq!(rec.repair, Some(RepairSummary::default()));
        assert_eq!(rec.stats, plain.stats);
        assert_eq!(rec.window_cycles, plain.window_cycles);
        let back = RunRecord::from_json(&Json::parse(&rec.to_json().dump()).unwrap()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn malformed_repair_member_is_a_parse_error() {
        let rec = execute(&tiny_desc("comp"), "test", None);
        let mut row = rec.to_json();
        row = row.with("repair", Json::from("broken"));
        let err = RunRecord::from_json(&row).unwrap_err();
        assert!(err.contains("repair"), "{err}");
        row = rec
            .to_json()
            .with("repair", Json::object().with("repairs", 1u64));
        assert!(
            RunRecord::from_json(&row).is_err(),
            "partial summary rejected"
        );
    }

    #[test]
    fn executes_a_generated_workload() {
        let rec = execute(&tiny_desc("gen:12"), "test", None);
        assert!(rec.status.is_ok(), "{:?}", rec.status);
        assert!(rec.ipc > 0.0);
    }

    #[test]
    fn gen_seeds_change_the_program() {
        let a = tiny_desc("gen:12");
        let mut b = a.clone();
        b.seed = 99;
        let ra = execute(&a, "t", None);
        let rb = execute(&b, "t", None);
        assert!(
            ra.stats.cycles != rb.stats.cycles || (ra.ipc - rb.ipc).abs() > 1e-12,
            "different gen seeds should yield different dynamics"
        );
    }

    #[test]
    fn cycle_watchdog_fires_deterministically() {
        let mut desc = tiny_desc("m88k");
        desc.max_cycles = 500; // far too small to finish warmup
        let rec = execute(&desc, "test", None);
        assert_eq!(rec.status, RunStatus::CycleLimit);
        assert_eq!(rec.ipc, 0.0);
    }

    #[test]
    fn cancellation_is_observed() {
        let flag = AtomicBool::new(true); // pre-cancelled
        let rec = execute(&tiny_desc("m88k"), "test", Some(&flag));
        assert_eq!(rec.status, RunStatus::Cancelled);
    }

    #[test]
    fn record_roundtrips_and_canonical_drops_timing() {
        let mut rec = execute(&tiny_desc("comp"), "test", None);
        let back = RunRecord::from_json(&Json::parse(&rec.to_json().dump()).unwrap()).unwrap();
        assert_eq!(rec, back);
        let a = rec.canonical_json();
        rec.wall_ms += 12345;
        assert_eq!(a, rec.canonical_json());
        assert!(!a.contains("wall_ms"));
    }
}
