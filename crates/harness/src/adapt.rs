//! Static-vs-adaptive comparison: the `tracefill adapt` engine.
//!
//! For each benchmark, every static optimization set in the spec is run
//! with the controller off, then one adaptive run executes with the pass
//! controller enabled (arms gate which passes run; pass parameters stay at
//! the paper's values). The result is a deterministic JSON report — no
//! wall-clock fields, members in fixed order — so two same-seed
//! invocations produce byte-identical output.

use crate::grid::{parse_opt_spec, CampaignSpec, OptPoint};
use crate::runner::{execute, RunRecord};
use tracefill_core::config::{ControllerMode, ReplacementKind};
use tracefill_util::Json;

/// What an adaptive comparison sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptSpec {
    /// Benchmarks to compare on (suite names or `gen:` workloads).
    pub benchmarks: Vec<String>,
    /// The static arms: opt-set specs run with the controller off.
    pub opt_specs: Vec<String>,
    /// The adaptive controller mode (e.g. `egreedy:100`, `ucb:1414`).
    pub mode: ControllerMode,
    /// Workload and controller seed.
    pub seed: u64,
    /// Trace-cache replacement policy for every run.
    pub policy: ReplacementKind,
    /// Fill-pipeline latency in cycles.
    pub fill_latency: u32,
    /// Warmup window (retired instructions).
    pub warmup: u64,
    /// Measured window (retired instructions).
    pub budget: u64,
    /// Per-run cycle watchdog.
    pub max_cycles: u64,
    /// Per-run wall-clock watchdog (milliseconds; never in the report).
    pub wall_limit_ms: u64,
    /// Fills per controller epoch. Epochs much shorter than trace-cache
    /// residence feed the bandit rewards earned by *previous* arms'
    /// segments, so the default is deliberately long.
    pub epoch_fills: u64,
}

impl Default for AdaptSpec {
    /// The paper's six comparison points on the full suite, with the
    /// settings that let the bandit converge: a low-exploration UCB, long
    /// epochs (reward attribution needs the arm's own segments resident),
    /// and a warmup long enough to pay the exploration bill before the
    /// measured window opens.
    fn default() -> AdaptSpec {
        AdaptSpec {
            benchmarks: tracefill_workloads::names()
                .iter()
                .map(|n| (*n).to_string())
                .collect(),
            opt_specs: ["none", "moves", "reassoc", "scadd", "placement", "all"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            mode: ControllerMode::Ucb { c_milli: 100 },
            seed: 0,
            policy: ReplacementKind::Lru,
            fill_latency: 1,
            warmup: 200_000,
            budget: 50_000,
            max_cycles: 50_000_000,
            wall_limit_ms: 120_000,
            epoch_fills: 1024,
        }
    }
}

impl AdaptSpec {
    fn campaign(&self, opt_sets: Vec<OptPoint>, controller: String) -> CampaignSpec {
        CampaignSpec {
            name: "adapt".to_string(),
            opt_sets,
            fill_latencies: vec![self.fill_latency],
            benchmarks: self.benchmarks.clone(),
            seeds: vec![self.seed],
            warmup: self.warmup,
            budget: self.budget,
            max_cycles: self.max_cycles,
            wall_limit_ms: self.wall_limit_ms,
            policies: vec![self.policy.name().to_string()],
            controller,
            epoch_fills: self.epoch_fills,
            ledger: false,
            self_repair: false,
        }
    }
}

/// Pulls every `policy.arm.<label>` counter out of a record's metrics, in
/// deterministic (registry) order.
fn arm_counters(rec: &RunRecord) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    if let Some(Json::Obj(members)) = rec.metrics.to_json().get("counters") {
        for (k, v) in members {
            if let Some(label) = k.strip_prefix("policy.arm.") {
                out.push((label.to_string(), v.as_u64().unwrap_or(0)));
            }
        }
    }
    out
}

fn run_row(rec: &RunRecord) -> Result<Json, String> {
    if !rec.status.is_ok() {
        return Err(format!(
            "{} [{}] failed: {}",
            rec.bench,
            rec.opt_label,
            rec.to_json()
                .get("status")
                .and_then(Json::as_str)
                .unwrap_or("?")
        ));
    }
    Ok(Json::object()
        .with("opts", rec.opt_label.as_str())
        .with("ipc", rec.ipc)
        .with("window_cycles", rec.window_cycles)
        .with("window_retired", rec.window_retired))
}

/// Runs the comparison and builds the deterministic report.
///
/// # Errors
///
/// Unknown benchmark names, unparseable opt specs, and failed runs
/// (watchdog, simulator error) are reported with the offending
/// configuration.
pub fn run_adapt(spec: &AdaptSpec) -> Result<Json, String> {
    if spec.benchmarks.is_empty() || spec.opt_specs.is_empty() {
        return Err("adapt spec has an empty axis".to_string());
    }
    for b in &spec.benchmarks {
        if !b.starts_with("gen:") && tracefill_workloads::by_name(b).is_none() {
            return Err(format!(
                "unknown benchmark `{b}` (try one of: {})",
                tracefill_workloads::names().join(", ")
            ));
        }
    }
    let mut static_sets = Vec::new();
    for s in &spec.opt_specs {
        let opts = parse_opt_spec(s)?;
        static_sets.push(OptPoint {
            label: opts.label(),
            opts,
        });
    }
    let adaptive_sets = vec![OptPoint {
        label: "all".to_string(),
        opts: tracefill_core::config::OptConfig::all(),
    }];

    let static_runs = spec.campaign(static_sets, "off".to_string()).expand();
    let adaptive_runs = spec.campaign(adaptive_sets, spec.mode.label()).expand();

    let mut bench_rows = Vec::new();
    let mut sum_best = 0.0f64;
    let mut sum_adaptive = 0.0f64;
    let mut wins = 0u64;
    // Per-opt-set IPC sums across benchmarks, for the "best single static
    // set" aggregate (the honest adaptive-vs-static yardstick: one fixed
    // configuration for the whole suite).
    let mut set_sums = vec![0.0f64; spec.opt_specs.len()];
    for (i, bench) in spec.benchmarks.iter().enumerate() {
        // expand() is benchmark-major: this benchmark's static runs are a
        // contiguous block, and it has exactly one adaptive run.
        let statics = &static_runs[i * spec.opt_specs.len()..(i + 1) * spec.opt_specs.len()];
        let mut static_rows = Vec::new();
        let mut best: Option<(String, f64)> = None;
        for (j, desc) in statics.iter().enumerate() {
            let rec = execute(desc, "adapt", None);
            static_rows.push(run_row(&rec)?);
            set_sums[j] += rec.ipc;
            if best.as_ref().is_none_or(|(_, ipc)| rec.ipc > *ipc) {
                best = Some((rec.opt_label.clone(), rec.ipc));
            }
        }
        let (best_label, best_ipc) = best.expect("non-empty opt axis");

        let rec = execute(&adaptive_runs[i], "adapt", None);
        let mut adaptive = run_row(&rec)?;
        adaptive = adaptive
            .with("controller", rec.controller.as_str())
            .with("epochs", rec.metrics.counter("policy.epochs"))
            .with("evictions", rec.metrics.counter("tcache.evictions"));
        let mut arms = Json::object();
        for (label, n) in arm_counters(&rec) {
            arms = arms.with(label.as_str(), n);
        }
        adaptive = adaptive.with("arm_epochs", arms);

        sum_best += best_ipc;
        sum_adaptive += rec.ipc;
        if rec.ipc >= best_ipc {
            wins += 1;
        }
        bench_rows.push(
            Json::object()
                .with("bench", bench.as_str())
                .with("static", Json::Arr(static_rows))
                .with(
                    "best_static",
                    Json::object()
                        .with("opts", best_label.as_str())
                        .with("ipc", best_ipc),
                )
                .with("adaptive", adaptive)
                .with("delta_vs_best", rec.ipc - best_ipc),
        );
    }

    let n = spec.benchmarks.len() as f64;
    let (best_set_idx, best_set_sum) = set_sums
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite IPC sums"))
        .expect("non-empty opt axis");
    let best_set_label = parse_opt_spec(&spec.opt_specs[best_set_idx])
        .expect("validated above")
        .label();
    Ok(Json::object()
        .with(
            "spec",
            Json::object()
                .with("controller", spec.mode.label().as_str())
                .with("policy", spec.policy.name())
                .with("seed", spec.seed)
                .with("fill_latency", spec.fill_latency)
                .with("warmup", spec.warmup)
                .with("budget", spec.budget)
                .with("epoch_fills", spec.epoch_fills)
                .with(
                    "opts",
                    Json::Arr(
                        spec.opt_specs
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
        )
        .with("benchmarks", Json::Arr(bench_rows))
        .with(
            "summary",
            Json::object()
                .with("benches", spec.benchmarks.len() as u64)
                .with("mean_best_static_ipc", sum_best / n)
                .with(
                    "best_single_static",
                    Json::object()
                        .with("opts", best_set_label.as_str())
                        .with("mean_ipc", best_set_sum / n),
                )
                .with("mean_adaptive_ipc", sum_adaptive / n)
                .with("adaptive_wins", wins),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> AdaptSpec {
        AdaptSpec {
            benchmarks: vec!["m88k".to_string()],
            opt_specs: vec!["none".to_string(), "all".to_string()],
            warmup: 2_000,
            budget: 2_000,
            max_cycles: 5_000_000,
            epoch_fills: 16, // tiny windows: still exercise arm switching
            ..AdaptSpec::default()
        }
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let spec = tiny_spec();
        let a = run_adapt(&spec).unwrap().dump();
        let b = run_adapt(&spec).unwrap().dump();
        assert_eq!(a, b, "same seed must produce byte-identical reports");
        assert!(a.contains("\"adaptive\""));
        assert!(a.contains("\"best_static\""));
    }

    #[test]
    fn different_seeds_may_differ_but_still_complete() {
        let mut spec = tiny_spec();
        spec.seed = 1;
        let report = run_adapt(&spec).unwrap();
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("benches").and_then(Json::as_u64), Some(1));
        assert!(
            summary
                .get("mean_adaptive_ipc")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn rejects_unknown_benchmarks_and_opts() {
        let mut spec = tiny_spec();
        spec.benchmarks = vec!["nonesuch".to_string()];
        assert!(run_adapt(&spec).is_err());
        let mut spec = tiny_spec();
        spec.opt_specs = vec!["frob".to_string()];
        assert!(run_adapt(&spec).is_err());
    }
}
