//! The append-only JSONL result store.
//!
//! One line per completed run. Appends go through a single `write(2)` per
//! line (line fully formatted, newline included) on a file opened in
//! append mode, so concurrent writers can't interleave *within* a line and
//! a `kill -9` can at worst truncate the final line — which
//! [`ResultStore::load`] and [`ResultStore::completed_ids`] tolerate by
//! skipping it. Resume therefore never re-runs a recorded id and never
//! trips over a torn tail.
//!
//! Robustness posture:
//!
//! * **Transient I/O** — appends retry with exponential backoff on
//!   `Interrupted`/`WouldBlock`/`TimedOut` (the `retry_io` helper), so a
//!   momentary stall (NFS hiccup, signal storm) doesn't abort a sweep.
//! * **Malformed rows** — a row that is neither a record, a heartbeat, nor
//!   a quarantine marker is *counted and skipped*, never fatal; the count
//!   is surfaced by [`load_records_counted`] so corruption is visible
//!   without killing resume.
//! * **Quarantine** — `{"q":1,"key":...}` rows persist the campaign's
//!   quarantine decisions (a configuration that panicked K consecutive
//!   times), so a resumed campaign skips the poisoned cell immediately.

use crate::runner::RunRecord;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use tracefill_util::Json;

/// A JSONL file of [`RunRecord`] rows.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    file: File,
}

impl ResultStore {
    /// Opens (creating if absent) a store for appending.
    ///
    /// # Errors
    ///
    /// I/O errors opening the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<ResultStore> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Seal a torn tail (kill -9 mid-write): if the file doesn't end in
        // a newline, add one so the next append starts a fresh line instead
        // of merging into the corrupt row.
        if let Ok(meta) = file.metadata() {
            if meta.len() > 0 {
                let mut last = [0u8; 1];
                let mut reader = File::open(&path)?;
                use std::io::Seek;
                reader.seek(io::SeekFrom::End(-1))?;
                reader.read_exact(&mut last)?;
                if last[0] != b'\n' {
                    file.write_all(b"\n")?;
                }
            }
        }
        Ok(ResultStore { path, file })
    }

    /// The store's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (one atomic line write + flush), retrying
    /// transient failures with exponential backoff.
    ///
    /// # Errors
    ///
    /// Non-transient I/O errors writing (transient kinds are retried a few
    /// times first by the internal `retry_io` helper).
    pub fn append(&mut self, record: &RunRecord) -> io::Result<()> {
        let mut line = record.to_json().dump();
        line.push('\n');
        // A single write on an O_APPEND fd is atomic with respect to other
        // appenders for ordinary files.
        self.append_line(&line)
    }

    /// Writes one preformatted line, with transient-error retry.
    fn append_line(&mut self, line: &str) -> io::Result<()> {
        let file = &mut self.file;
        retry_io(|| {
            file.write_all(line.as_bytes())?;
            file.flush()
        })
    }

    /// Appends a heartbeat row for `run_id`: the run has *started* on some
    /// worker but has no result yet. Heartbeats share the JSONL stream
    /// (`{"hb":1,"run_id":...,"at_ms":...}`) so a reader can tell an
    /// in-flight run from one that was never dispatched, but they are
    /// ignored by [`completed_ids`](ResultStore::completed_ids) (a
    /// heartbeat must never suppress the run on resume) and rejected by
    /// record parsing (so [`load`](ResultStore::load) never sees them).
    ///
    /// # Errors
    ///
    /// I/O errors writing.
    pub fn append_heartbeat(&mut self, run_id: &str) -> io::Result<()> {
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = Json::object()
            .with("hb", 1u32)
            .with("run_id", run_id)
            .with("at_ms", at_ms)
            .dump();
        line.push('\n');
        self.append_line(&line)
    }

    /// Appends a quarantine marker for a configuration `key`
    /// (`{"q":1,"key":...,"at_ms":...}`): the campaign decided this cell
    /// is poisoned (K consecutive panics) and further runs of it should be
    /// skipped — including by *future* invocations that resume this store.
    ///
    /// # Errors
    ///
    /// I/O errors writing.
    pub fn append_quarantine(&mut self, key: &str) -> io::Result<()> {
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = Json::object()
            .with("q", 1u32)
            .with("key", key)
            .with("at_ms", at_ms)
            .dump();
        line.push('\n');
        self.append_line(&line)
    }

    /// The configuration keys quarantined by any earlier (or the current)
    /// invocation of a campaign on this store.
    ///
    /// # Errors
    ///
    /// I/O errors reading (a missing file yields the empty set).
    pub fn quarantined_keys(&self) -> io::Result<HashSet<String>> {
        let mut keys = HashSet::new();
        for row in read_rows(&self.path)?.0 {
            if row.get("q").is_none() {
                continue;
            }
            if let Some(k) = row.get("key").and_then(Json::as_str) {
                keys.insert(k.to_string());
            }
        }
        Ok(keys)
    }

    /// The set of run ids already recorded. A campaign skips these on
    /// resume. Heartbeat rows do not count: a run that only *started*
    /// before a crash must be re-executed. `cancelled` rows do not count
    /// either: a graceful shutdown records the interrupted runs so the
    /// stream tells the story, but resume must finish their work.
    ///
    /// # Errors
    ///
    /// I/O errors reading (a missing file yields the empty set).
    pub fn completed_ids(&self) -> io::Result<HashSet<String>> {
        let mut ids = HashSet::new();
        for row in read_rows(&self.path)?.0 {
            if row.get("hb").is_some() || row.get("q").is_some() {
                continue;
            }
            if row.get("status").and_then(Json::as_str) == Some("cancelled") {
                continue;
            }
            if let Some(id) = row.get("run_id").and_then(Json::as_str) {
                ids.insert(id.to_string());
            }
        }
        Ok(ids)
    }

    /// Loads every parseable record.
    ///
    /// # Errors
    ///
    /// I/O errors reading.
    pub fn load(&self) -> io::Result<Vec<RunRecord>> {
        load_records(&self.path)
    }

    /// Loads every parseable record plus the number of malformed rows
    /// skipped on the way (rows that are neither records, heartbeats, nor
    /// quarantine markers — e.g. a torn tail or foreign text). Corruption
    /// is reported, never fatal.
    ///
    /// # Errors
    ///
    /// I/O errors reading.
    pub fn load_counted(&self) -> io::Result<(Vec<RunRecord>, usize)> {
        load_records_counted(&self.path)
    }
}

/// Retries a transient-failure-prone I/O action with exponential backoff
/// (1, 2, 4, 8, 16 ms). Only `Interrupted`, `WouldBlock` and `TimedOut`
/// are considered transient; anything else (or exhaustion of the retry
/// budget) propagates immediately.
fn retry_io<T>(mut action: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    const MAX_ATTEMPTS: u32 = 6;
    let mut backoff_ms = 1u64;
    let mut attempt = 0u32;
    loop {
        match action() {
            Ok(v) => return Ok(v),
            Err(e)
                if attempt + 1 < MAX_ATTEMPTS
                    && matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                    ) =>
            {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                backoff_ms *= 2;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parses every well-formed JSONL row in `path`, counting lines that do
/// not parse at all (torn tail, foreign text). A missing file yields no
/// rows.
fn read_rows(path: &Path) -> io::Result<(Vec<Json>, usize)> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    }
    let mut rows = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match Json::parse(line) {
            Ok(row) => rows.push(row),
            Err(_) => malformed += 1,
        }
    }
    Ok((rows, malformed))
}

/// Loads every parseable [`RunRecord`] from a JSONL file (standalone form,
/// for `tracefill report` which reads stores it didn't open for append).
///
/// # Errors
///
/// I/O errors reading.
pub fn load_records(path: impl AsRef<Path>) -> io::Result<Vec<RunRecord>> {
    load_records_counted(path).map(|(records, _)| records)
}

/// Loads every parseable [`RunRecord`] plus the number of malformed rows
/// skipped: lines that don't parse as JSON, or JSON rows that are neither
/// a record, a heartbeat, nor a quarantine marker. A corrupted row in the
/// *middle* of the file (disk damage, a partial concurrent write on an
/// exotic filesystem) therefore costs exactly one row, not the store.
///
/// # Errors
///
/// I/O errors reading.
pub fn load_records_counted(path: impl AsRef<Path>) -> io::Result<(Vec<RunRecord>, usize)> {
    let (rows, mut malformed) = read_rows(path.as_ref())?;
    let mut records = Vec::new();
    for row in &rows {
        if row.get("hb").is_some() || row.get("q").is_some() {
            continue; // control rows, not records
        }
        match RunRecord::from_json(row) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    Ok((records, malformed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunStatus;
    use tracefill_sim::Stats;

    fn rec(id: &str) -> RunRecord {
        RunRecord {
            run_id: id.to_string(),
            campaign: "t".to_string(),
            bench: "m88k".to_string(),
            opt_label: "all".to_string(),
            fill_latency: 1,
            seed: 0,
            policy: "lru".to_string(),
            controller: "off".to_string(),
            status: RunStatus::Ok,
            ipc: 2.5,
            window_cycles: 100,
            window_retired: 250,
            stats: Stats::default(),
            cpi: tracefill_sim::CpiStack::default(),
            metrics: tracefill_util::Registry::new(),
            repair: None,
            wall_ms: 7,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tracefill-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_load_roundtrips() {
        let path = tmp("roundtrip");
        let mut store = ResultStore::open(&path).unwrap();
        store.append(&rec("aaa")).unwrap();
        store.append(&rec("bbb")).unwrap();
        let records = store.load().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].run_id, "aaa");
        assert_eq!(records[1].ipc, 2.5);
        assert_eq!(
            store.completed_ids().unwrap(),
            HashSet::from(["aaa".to_string(), "bbb".to_string()])
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_skipped() {
        let path = tmp("torn");
        let mut store = ResultStore::open(&path).unwrap();
        store.append(&rec("good")).unwrap();
        // Simulate a kill mid-write: a truncated line at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"run_id\":\"tor").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(
            store.completed_ids().unwrap(),
            HashSet::from(["good".to_string()])
        );
        assert_eq!(store.load().unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn heartbeats_mark_started_runs_but_never_complete_them() {
        let path = tmp("heartbeat");
        let mut store = ResultStore::open(&path).unwrap();
        store.append_heartbeat("inflight").unwrap();
        store.append(&rec("finished")).unwrap();
        store.append_heartbeat("finished").unwrap(); // late heartbeat, harmless
                                                     // Resume must re-run `inflight` (heartbeat only) but skip `finished`.
        assert_eq!(
            store.completed_ids().unwrap(),
            HashSet::from(["finished".to_string()])
        );
        // Record loading never surfaces heartbeat rows.
        let records = store.load().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].run_id, "finished");
        // The raw stream still carries the heartbeat for post-mortems.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"hb\":1"), "{text}");
        assert!(text.contains("\"at_ms\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("missing");
        assert!(load_records(&path).unwrap().is_empty());
    }

    #[test]
    fn malformed_mid_file_rows_are_counted_and_skipped() {
        let path = tmp("malformed");
        let mut store = ResultStore::open(&path).unwrap();
        store.append(&rec("first")).unwrap();
        {
            // Mid-file damage: unparseable JSON, foreign text, and a JSON
            // row that is not a record.
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"run_id\": \"torn\", \"status\n").unwrap();
            f.write_all(b"not json at all\n").unwrap();
            f.write_all(b"{\"run_id\": 42}\n").unwrap();
        }
        store.append(&rec("second")).unwrap();
        let (records, malformed) = store.load_counted().unwrap();
        assert_eq!(
            records
                .iter()
                .map(|r| r.run_id.as_str())
                .collect::<Vec<_>>(),
            ["first", "second"],
            "records on both sides of the damage survive"
        );
        assert_eq!(malformed, 3);
        // The undamaged path reports zero.
        let clean = tmp("malformed-clean");
        ResultStore::open(&clean)
            .unwrap()
            .append(&rec("x"))
            .unwrap();
        assert_eq!(load_records_counted(&clean).unwrap().1, 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&clean);
    }

    #[test]
    fn quarantine_rows_persist_across_reopen_and_are_not_completions() {
        let path = tmp("quarantine");
        let mut store = ResultStore::open(&path).unwrap();
        store.append_quarantine("m88k|all").unwrap();
        store.append(&rec("done")).unwrap();
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(
            store.quarantined_keys().unwrap(),
            HashSet::from(["m88k|all".to_string()])
        );
        assert_eq!(
            store.completed_ids().unwrap(),
            HashSet::from(["done".to_string()])
        );
        // Quarantine rows are control rows: neither records nor malformed.
        let (records, malformed) = store.load_counted().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(malformed, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retry_io_retries_transient_kinds_only() {
        // Transient: succeeds on the third attempt.
        let mut attempts = 0;
        let out: io::Result<u32> = retry_io(|| {
            attempts += 1;
            if attempts < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "signal"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(attempts, 3);
        // Permanent: propagates immediately.
        let mut attempts = 0;
        let out: io::Result<u32> = retry_io(|| {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn reopen_appends_after_existing_rows() {
        let path = tmp("reopen");
        ResultStore::open(&path)
            .unwrap()
            .append(&rec("one"))
            .unwrap();
        ResultStore::open(&path)
            .unwrap()
            .append(&rec("two"))
            .unwrap();
        let records = load_records(&path).unwrap();
        assert_eq!(
            records
                .iter()
                .map(|r| r.run_id.as_str())
                .collect::<Vec<_>>(),
            ["one", "two"]
        );
        let _ = std::fs::remove_file(&path);
    }
}
