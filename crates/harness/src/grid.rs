//! Campaign specifications and grid expansion.
//!
//! A [`CampaignSpec`] names the axes of a sweep; [`CampaignSpec::expand`]
//! takes their cross product in a fixed order and stamps every point with a
//! stable content-hash id ([`RunDescriptor::run_id`]). The id covers every
//! field that influences the simulation (benchmark, optimization set, fill
//! latency, seed, warmup/budget windows, cycle cap) and *excludes* timing
//! limits, so re-running the same scientific point — even from a differently
//! ordered or differently parallel campaign — always maps to the same id.

use tracefill_core::config::{ControllerMode, OptConfig, ReplacementKind};
use tracefill_util::{fnv1a64, Json};

/// A labelled optimization set — one value of the `{opt set}` axis.
#[derive(Debug, Clone, PartialEq)]
pub struct OptPoint {
    /// Canonical label (e.g. `"none"`, `"all"`, `"moves,scadd"`).
    pub label: String,
    /// The decoded configuration.
    pub opts: OptConfig,
}

/// Parses an optimization spec: `all`, `none`, or a comma list of
/// `moves`, `reassoc`, `scadd`, `placement`/`place`, `cse`.
///
/// Delegates to [`OptConfig::from_name`] — the single opt-set parser for
/// the workspace.
///
/// # Errors
///
/// Returns the offending token.
pub fn parse_opt_spec(spec: &str) -> Result<OptConfig, String> {
    OptConfig::from_name(spec)
}

/// The canonical label for an optimization set (inverse of
/// [`parse_opt_spec`] up to ordering). Delegates to [`OptConfig::label`].
#[must_use]
pub fn opt_label(o: &OptConfig) -> String {
    o.label()
}

/// One fully resolved point of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDescriptor {
    /// Stable content hash of the scientific coordinates (16 hex digits).
    pub run_id: String,
    /// Benchmark short name (from the suite) or a `gen:` pseudo-benchmark.
    pub bench: String,
    /// Canonical optimization label.
    pub opt_label: String,
    /// Decoded optimization set.
    pub opts: OptConfig,
    /// Fill-unit pipeline latency in cycles (the Figure 8 axis).
    pub fill_latency: u32,
    /// Workload seed. Kernels from the suite are deterministic, so the
    /// seed only perturbs `gen:` workloads; it is part of the id either
    /// way so replicate rows stay distinct.
    pub seed: u64,
    /// Warmup window (retired instructions) before measurement.
    pub warmup: u64,
    /// Measured window (retired instructions).
    pub budget: u64,
    /// Hard per-run cycle cap (watchdog against bistable kernels).
    pub max_cycles: u64,
    /// Hard per-run wall-clock cap in milliseconds (not part of the id).
    pub wall_limit_ms: u64,
    /// Trace-cache replacement policy.
    pub policy: ReplacementKind,
    /// Online pass controller mode ([`ControllerMode::Off`] for the static
    /// machine). The controller is seeded with [`RunDescriptor::seed`].
    pub controller: ControllerMode,
    /// Fills per controller epoch (ignored when the controller is off).
    /// Epochs much shorter than trace-cache residence misattribute reward
    /// to the wrong arm, so adaptive sweeps want this large.
    pub epoch_fills: u64,
    /// Collect the segment lifetime ledger during the run (per-cell
    /// `ledger.*` metrics in the result row). Observation-only: the
    /// simulation itself is identical either way, but the flag is part of
    /// the id so ledgered rows never shadow plain ones.
    pub ledger: bool,
    /// Run with self-repair armed: divergences are contained (squash,
    /// restore, invalidate, quarantine) instead of failing the row. Part
    /// of the id so repaired rows never shadow plain ones.
    pub self_repair: bool,
}

impl RunDescriptor {
    /// The content hash over this descriptor's scientific coordinates
    /// (everything but `run_id` and the wall-clock limit).
    fn content_id(&self) -> String {
        let mut key = format!(
            "bench={};opts={};fill_latency={};seed={};warmup={};budget={};max_cycles={}",
            self.bench,
            self.opt_label,
            self.fill_latency,
            self.seed,
            self.warmup,
            self.budget,
            self.max_cycles,
        );
        // Default policy/controller rows keep the historical key so every
        // stored campaign on disk keeps resuming; only non-default rows
        // extend it.
        if self.policy != ReplacementKind::Lru {
            key.push_str(&format!(";policy={}", self.policy.name()));
        }
        if self.controller != ControllerMode::Off {
            key.push_str(&format!(";controller={}", self.controller.label()));
            key.push_str(&format!(";epoch={}", self.epoch_fills));
        }
        if self.ledger {
            key.push_str(";ledger=on");
        }
        if self.self_repair {
            key.push_str(";repair=on");
        }
        format!("{:016x}", fnv1a64(key.as_bytes()))
    }
}

/// A declarative sweep: the cross product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (documentation; lands in every result row).
    pub name: String,
    /// The `{opt set}` axis.
    pub opt_sets: Vec<OptPoint>,
    /// The `{fill latency}` axis, in cycles.
    pub fill_latencies: Vec<u32>,
    /// The `{workload}` axis: suite short/full names, or `gen:<blocks>`
    /// for the pattern-mix generator (seeded per run).
    pub benchmarks: Vec<String>,
    /// The `{seed}` axis.
    pub seeds: Vec<u64>,
    /// Warmup window per run (retired instructions).
    pub warmup: u64,
    /// Measured window per run (retired instructions).
    pub budget: u64,
    /// Per-run cycle watchdog.
    pub max_cycles: u64,
    /// Per-run wall-clock watchdog (milliseconds).
    pub wall_limit_ms: u64,
    /// The `{replacement policy}` axis (canonical names: `lru`, `srrip`,
    /// `trrip`).
    pub policies: Vec<String>,
    /// Pass-controller mode applied to every run (canonical
    /// [`ControllerMode`] label; `off` for static campaigns).
    pub controller: String,
    /// Fills per controller epoch (ignored when `controller` is `off`).
    pub epoch_fills: u64,
    /// Collect the segment lifetime ledger on every run (off by default;
    /// see [`RunDescriptor::ledger`]).
    pub ledger: bool,
    /// Arm self-repair on every run (off by default; see
    /// [`RunDescriptor::self_repair`]).
    pub self_repair: bool,
}

impl CampaignSpec {
    /// The Figure 8 grid: all 15 benchmarks × {none, all} × fill latency
    /// {1, 5, 10} × one seed.
    #[must_use]
    pub fn fig8() -> CampaignSpec {
        CampaignSpec {
            name: "fig8".to_string(),
            opt_sets: vec![
                OptPoint {
                    label: "none".to_string(),
                    opts: OptConfig::none(),
                },
                OptPoint {
                    label: "all".to_string(),
                    opts: OptConfig::all(),
                },
            ],
            fill_latencies: vec![1, 5, 10],
            benchmarks: tracefill_workloads::suite()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
            seeds: vec![0],
            warmup: 150_000,
            budget: 150_000,
            max_cycles: 50_000_000,
            wall_limit_ms: 120_000,
            policies: vec!["lru".to_string()],
            controller: "off".to_string(),
            epoch_fills: 1024,
            ledger: false,
            self_repair: false,
        }
    }

    /// The Table 2 grid: all 15 benchmarks × {all} × latency 1 × one seed
    /// (transformation coverage is measured with everything enabled).
    #[must_use]
    pub fn table2() -> CampaignSpec {
        CampaignSpec {
            name: "table2".to_string(),
            opt_sets: vec![OptPoint {
                label: "all".to_string(),
                opts: OptConfig::all(),
            }],
            fill_latencies: vec![1],
            ..CampaignSpec::fig8()
        }
    }

    /// Looks up a built-in spec by name (`fig8`, `table2`).
    #[must_use]
    pub fn builtin(name: &str) -> Option<CampaignSpec> {
        match name {
            "fig8" => Some(CampaignSpec::fig8()),
            "table2" => Some(CampaignSpec::table2()),
            _ => None,
        }
    }

    /// Expands the grid in a fixed order:
    /// benchmarks → opt sets → fill latencies → seeds → policies.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable `policies` entry or `controller` (specs
    /// built through [`from_json`](Self::from_json) are pre-validated).
    #[must_use]
    pub fn expand(&self) -> Vec<RunDescriptor> {
        let policies: Vec<ReplacementKind> = self
            .policies
            .iter()
            .map(|p| ReplacementKind::parse(p).expect("validated policy name"))
            .collect();
        let controller = ControllerMode::parse(&self.controller).expect("validated controller");
        let mut out = Vec::new();
        for bench in &self.benchmarks {
            for opt in &self.opt_sets {
                for &lat in &self.fill_latencies {
                    for &seed in &self.seeds {
                        for &policy in &policies {
                            let mut desc = RunDescriptor {
                                run_id: String::new(),
                                bench: bench.clone(),
                                opt_label: opt.label.clone(),
                                opts: opt.opts,
                                fill_latency: lat,
                                seed,
                                warmup: self.warmup,
                                budget: self.budget,
                                max_cycles: self.max_cycles,
                                wall_limit_ms: self.wall_limit_ms,
                                policy,
                                controller,
                                epoch_fills: self.epoch_fills,
                                ledger: self.ledger,
                                self_repair: self.self_repair,
                            };
                            desc.run_id = desc.content_id();
                            out.push(desc);
                        }
                    }
                }
            }
        }
        out
    }

    /// Serializes the spec (the on-disk campaign format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("name", self.name.as_str())
            .with(
                "opts",
                Json::Arr(
                    self.opt_sets
                        .iter()
                        .map(|o| Json::from(o.label.as_str()))
                        .collect(),
                ),
            )
            .with(
                "fill_latencies",
                Json::Arr(self.fill_latencies.iter().map(|&l| Json::from(l)).collect()),
            )
            .with(
                "benchmarks",
                Json::Arr(
                    self.benchmarks
                        .iter()
                        .map(|b| Json::from(b.as_str()))
                        .collect(),
                ),
            )
            .with(
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::from(s)).collect()),
            )
            .with("warmup", self.warmup)
            .with("budget", self.budget)
            .with("max_cycles", self.max_cycles)
            .with("wall_limit_ms", self.wall_limit_ms)
            .with(
                "policies",
                Json::Arr(
                    self.policies
                        .iter()
                        .map(|p| Json::from(p.as_str()))
                        .collect(),
                ),
            )
            .with("controller", self.controller.as_str())
            .with("epoch_fills", self.epoch_fills)
            .with("ledger", self.ledger)
            .with("self_repair", self.self_repair)
    }

    /// Parses a spec from its JSON form. Omitted fields fall back to the
    /// [`fig8`](Self::fig8) defaults; `"benchmarks": ["all"]` expands to
    /// the whole suite.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, unknown optimization tokens, unknown
    /// benchmark names, and empty axes.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let defaults = CampaignSpec::fig8();
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("campaign")
            .to_string();

        let opt_sets = match v.get("opts").and_then(Json::as_arr) {
            None => defaults.opt_sets,
            Some(items) => {
                let mut sets = Vec::new();
                for item in items {
                    let label = item
                        .as_str()
                        .ok_or_else(|| format!("`opts` entries must be strings, got {item:?}"))?;
                    let opts = parse_opt_spec(label)?;
                    sets.push(OptPoint {
                        label: opt_label(&opts),
                        opts,
                    });
                }
                sets
            }
        };

        let fill_latencies = match v.get("fill_latencies").and_then(Json::as_arr) {
            None => defaults.fill_latencies,
            Some(items) => items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .and_then(|l| u32::try_from(l).ok())
                        .ok_or_else(|| format!("bad fill latency {i:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let benchmarks = match v.get("benchmarks").and_then(Json::as_arr) {
            None => defaults.benchmarks,
            Some(items) => {
                let mut names = Vec::new();
                for item in items {
                    let name = item.as_str().ok_or_else(|| {
                        format!("`benchmarks` entries must be strings, got {item:?}")
                    })?;
                    if name == "all" {
                        names.extend(tracefill_workloads::names().iter().map(|n| n.to_string()));
                    } else if name.starts_with("gen:")
                        || tracefill_workloads::by_name(name).is_some()
                    {
                        names.push(name.to_string());
                    } else {
                        return Err(format!(
                            "unknown benchmark `{name}` (try one of: {})",
                            tracefill_workloads::names().join(", ")
                        ));
                    }
                }
                names
            }
        };

        let seeds = match v.get("seeds").and_then(Json::as_arr) {
            None => defaults.seeds,
            Some(items) => items
                .iter()
                .map(|i| i.as_u64().ok_or_else(|| format!("bad seed {i:?}")))
                .collect::<Result<Vec<_>, _>>()?,
        };

        let num = |key: &str, dflt: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(dflt),
                Some(j) => j.as_u64().ok_or_else(|| format!("bad `{key}`: {j:?}")),
            }
        };
        let policies = match v.get("policies").and_then(Json::as_arr) {
            None => defaults.policies,
            Some(items) => {
                let mut names = Vec::new();
                for item in items {
                    let name = item.as_str().ok_or_else(|| {
                        format!("`policies` entries must be strings, got {item:?}")
                    })?;
                    names.push(ReplacementKind::parse(name)?.name().to_string());
                }
                names
            }
        };

        let controller = match v.get("controller") {
            None => defaults.controller,
            Some(j) => {
                let s = j
                    .as_str()
                    .ok_or_else(|| format!("bad `controller`: {j:?}"))?;
                ControllerMode::parse(s)?.label()
            }
        };

        let ledger = match v.get("ledger") {
            None => defaults.ledger,
            Some(j) => j.as_bool().ok_or_else(|| format!("bad `ledger`: {j:?}"))?,
        };

        let self_repair = match v.get("self_repair") {
            None => defaults.self_repair,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| format!("bad `self_repair`: {j:?}"))?,
        };

        let spec = CampaignSpec {
            name,
            opt_sets,
            fill_latencies,
            benchmarks,
            seeds,
            warmup: num("warmup", defaults.warmup)?,
            budget: num("budget", defaults.budget)?,
            max_cycles: num("max_cycles", defaults.max_cycles)?,
            wall_limit_ms: num("wall_limit_ms", defaults.wall_limit_ms)?,
            policies,
            controller,
            epoch_fills: num("epoch_fills", defaults.epoch_fills)?.max(1),
            ledger,
            self_repair,
        };
        if spec.opt_sets.is_empty()
            || spec.fill_latencies.is_empty()
            || spec.benchmarks.is_empty()
            || spec.seeds.is_empty()
            || spec.policies.is_empty()
        {
            return Err("campaign has an empty axis".to_string());
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_grid_is_15x2x3() {
        let runs = CampaignSpec::fig8().expand();
        assert_eq!(runs.len(), 15 * 2 * 3);
        let ids: std::collections::HashSet<_> = runs.iter().map(|r| r.run_id.clone()).collect();
        assert_eq!(ids.len(), runs.len(), "run ids must be unique");
    }

    #[test]
    fn run_ids_are_stable_across_expansions() {
        let a = CampaignSpec::fig8().expand();
        let b = CampaignSpec::fig8().expand();
        assert_eq!(a, b);
        // A spot-check pin: if this changes, every stored campaign on disk
        // stops resuming. Change it only with a migration story.
        let first = &a[0];
        assert_eq!(first.run_id, first.content_id());
        // Default policy/controller rows must keep the *historical* key
        // format (no policy/controller suffix), so campaigns stored before
        // the policy axes existed still resume.
        let legacy_key = format!(
            "bench={};opts={};fill_latency={};seed={};warmup={};budget={};max_cycles={}",
            first.bench,
            first.opt_label,
            first.fill_latency,
            first.seed,
            first.warmup,
            first.budget,
            first.max_cycles,
        );
        assert_eq!(
            first.run_id,
            format!("{:016x}", fnv1a64(legacy_key.as_bytes()))
        );
    }

    #[test]
    fn policy_axis_expands_and_distinguishes_ids() {
        let mut spec = CampaignSpec::fig8();
        let base = spec.expand();
        spec.policies = vec!["lru".to_string(), "srrip".to_string(), "trrip".to_string()];
        spec.controller = "egreedy:100".to_string();
        let runs = spec.expand();
        assert_eq!(runs.len(), base.len() * 3);
        let ids: std::collections::HashSet<_> = runs.iter().map(|r| r.run_id.clone()).collect();
        assert_eq!(ids.len(), runs.len(), "policy axes must split run ids");
        // None of the swept ids collide with the static-default ids.
        for r in &base {
            assert!(!ids.contains(&r.run_id));
        }
    }

    #[test]
    fn policy_spec_json_roundtrip() {
        let mut spec = CampaignSpec::fig8();
        spec.policies = vec!["srrip".to_string()];
        spec.controller = "ucb:1414".to_string();
        let back = CampaignSpec::from_json(&spec.to_json().dump()).unwrap();
        assert_eq!(spec, back);
        assert!(CampaignSpec::from_json(r#"{"policies":["mru"]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"controller":"thompson"}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"policies":[]}"#).is_err());
    }

    #[test]
    fn ledger_toggle_splits_ids_but_default_stays_legacy() {
        let mut spec = CampaignSpec::fig8();
        let base = spec.expand();
        spec.ledger = true;
        let ledgered = spec.expand();
        assert_eq!(base.len(), ledgered.len());
        let base_ids: std::collections::HashSet<_> =
            base.iter().map(|r| r.run_id.clone()).collect();
        for r in &ledgered {
            assert!(r.ledger);
            assert!(
                !base_ids.contains(&r.run_id),
                "ledgered rows must not shadow plain rows"
            );
        }
        // Round-trips through JSON.
        let back = CampaignSpec::from_json(&spec.to_json().dump()).unwrap();
        assert_eq!(spec, back);
        // Specs stored before the flag existed default to off.
        let old = CampaignSpec::from_json(r#"{"benchmarks":["m88k"]}"#).unwrap();
        assert!(!old.ledger);
    }

    #[test]
    fn self_repair_toggle_splits_ids_but_default_stays_legacy() {
        let mut spec = CampaignSpec::fig8();
        let base = spec.expand();
        spec.self_repair = true;
        let repaired = spec.expand();
        assert_eq!(base.len(), repaired.len());
        let base_ids: std::collections::HashSet<_> =
            base.iter().map(|r| r.run_id.clone()).collect();
        for r in &repaired {
            assert!(r.self_repair);
            assert!(
                !base_ids.contains(&r.run_id),
                "self-repair rows must not shadow plain rows"
            );
        }
        // Round-trips through JSON.
        let back = CampaignSpec::from_json(&spec.to_json().dump()).unwrap();
        assert_eq!(spec, back);
        // Specs stored before the flag existed default to off.
        let old = CampaignSpec::from_json(r#"{"benchmarks":["m88k"]}"#).unwrap();
        assert!(!old.self_repair);
        assert!(CampaignSpec::from_json(r#"{"self_repair":3}"#).is_err());
    }

    #[test]
    fn wall_limit_does_not_affect_ids() {
        let mut spec = CampaignSpec::fig8();
        let a = spec.expand();
        spec.wall_limit_ms *= 7;
        let b = spec.expand();
        assert_eq!(
            a.iter().map(|r| &r.run_id).collect::<Vec<_>>(),
            b.iter().map(|r| &r.run_id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = CampaignSpec::fig8();
        let back = CampaignSpec::from_json(&spec.to_json().dump()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(CampaignSpec::from_json("{").is_err());
        assert!(CampaignSpec::from_json(r#"{"opts":["frobnicate"]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"benchmarks":["nonesuch"]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"seeds":[]}"#).is_err());
        assert!(CampaignSpec::from_json(r#"{"fill_latencies":[-3]}"#).is_err());
    }

    #[test]
    fn benchmarks_all_expands_to_suite() {
        let spec = CampaignSpec::from_json(r#"{"benchmarks":["all"],"seeds":[1,2]}"#).unwrap();
        assert_eq!(spec.benchmarks.len(), 15);
        assert_eq!(spec.expand().len(), 15 * 2 * 3 * 2);
    }

    #[test]
    fn opt_labels_canonicalize() {
        let o = parse_opt_spec("scadd,moves").unwrap();
        assert_eq!(opt_label(&o), "moves,scadd");
        assert_eq!(opt_label(&OptConfig::none()), "none");
        assert_eq!(opt_label(&OptConfig::all()), "all");
    }
}
