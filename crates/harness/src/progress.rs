//! The live progress line: `completed/total, runs/sec, ETA`.
//!
//! Rendering is separated from printing so it can be unit-tested; the
//! campaign loop calls [`Progress::tick`] after each completed run and the
//! line is rewritten in place on stderr (`\r`, no newline) when enabled.

use std::io::Write;
use std::time::Instant;

/// Tracks campaign completion and renders the status line.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: usize,
    skipped: usize,
    start: Instant,
    enabled: bool,
    /// Whether a `\r` status line is currently on screen and must be
    /// terminated by [`finish`](Progress::finish).
    painted: bool,
}

impl Progress {
    /// A tracker over `total` runs, of which `skipped` were already on
    /// disk. Prints to stderr only if `enabled`; when it does, the initial
    /// line is painted immediately so a fully-resumed campaign (zero runs
    /// to execute) still shows its resumed count.
    #[must_use]
    pub fn new(total: usize, skipped: usize, enabled: bool) -> Progress {
        let mut p = Progress {
            total,
            done: 0,
            skipped,
            start: Instant::now(),
            enabled,
            painted: false,
        };
        p.paint();
        p
    }

    /// Records one completed run and repaints the line.
    pub fn tick(&mut self) {
        self.done += 1;
        self.paint();
    }

    fn paint(&mut self) {
        if self.enabled {
            let line = self.render(self.start.elapsed().as_secs_f64());
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{line}");
            let _ = err.flush();
            self.painted = true;
        }
    }

    /// Finishes the line (newline) iff one is on screen. This keys off
    /// *painted*, not `done`: a campaign that skipped everything
    /// (`done == 0, skipped > 0`) painted its initial line and would
    /// otherwise leave a stale `\r` fragment for the next writer to
    /// overwrite partially. Idempotent — a second call prints nothing.
    pub fn finish(&mut self) {
        if self.enabled && self.painted {
            let _ = writeln!(std::io::stderr().lock());
            self.painted = false;
        }
    }

    /// Whether a status line is currently on screen (painted and not yet
    /// finished).
    #[must_use]
    pub fn needs_finish(&self) -> bool {
        self.painted
    }

    /// Renders the status line for a given elapsed time (pure; tested).
    #[must_use]
    pub fn render(&self, elapsed_secs: f64) -> String {
        let attempted = self.total - self.skipped;
        let rate = if elapsed_secs > 0.0 {
            self.done as f64 / elapsed_secs
        } else {
            0.0
        };
        let remaining = attempted.saturating_sub(self.done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        format!(
            "[{}/{} runs, {} resumed] {:.2} runs/s, ETA {eta}   ",
            self.done + self.skipped,
            self.total,
            self.skipped,
            rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counts_rate_and_eta() {
        let mut p = Progress::new(90, 30, false);
        for _ in 0..30 {
            p.tick();
        }
        let line = p.render(15.0);
        assert!(line.contains("[60/90 runs, 30 resumed]"), "{line}");
        assert!(line.contains("2.00 runs/s"), "{line}");
        assert!(line.contains("ETA 15s"), "{line}");
    }

    #[test]
    fn eta_is_unknown_before_first_completion() {
        let p = Progress::new(10, 0, false);
        assert!(p.render(0.0).contains("ETA ?"));
    }

    #[test]
    fn finish_terminates_all_skipped_campaigns() {
        // `done == 0, skipped > 0`: the initial paint put a `\r` line on
        // screen, so finish must terminate it — this used to key off
        // `done > 0` and leave the fragment behind.
        let mut p = Progress::new(5, 5, true);
        assert!(p.needs_finish());
        p.finish();
        assert!(!p.needs_finish(), "finish must clear the painted line");
        // Idempotent: a second finish has nothing left to terminate.
        p.finish();
        assert!(!p.needs_finish());
    }

    #[test]
    fn disabled_progress_never_paints() {
        let mut p = Progress::new(5, 5, false);
        assert!(!p.needs_finish());
        p.tick();
        assert!(!p.needs_finish());
        p.finish();
        assert!(!p.needs_finish());
    }
}
