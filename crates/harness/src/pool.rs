//! The sharded worker pool.
//!
//! `run_campaign` expands the spec, subtracts the run ids already recorded
//! in the store (resume), and executes the remainder on `jobs` OS threads
//! pulling from a shared work queue. Design points:
//!
//! * **Panic isolation** — each run executes under
//!   `std::panic::catch_unwind`; a panicking kernel produces a
//!   [`RunStatus::Panic`] record (message, panic *location*, and the full
//!   configuration echo) and the campaign keeps going.
//! * **Quarantine** — a configuration key (`bench|opts`) that panics
//!   [`CampaignOptions::quarantine_after`] consecutive times is
//!   quarantined: a marker row is persisted, remaining runs of that key
//!   are recorded as [`RunStatus::Quarantined`] without executing, and a
//!   *resumed* campaign honors markers from previous invocations — one
//!   poisoned cell can no longer burn a whole sweep's wall-clock budget.
//! * **Single-writer store** — workers send records over a channel; only
//!   the coordinating thread appends, so rows never interleave.
//! * **Cancellation and wall budget** — a shared flag is polled inside the
//!   simulator's cycle loop (see [`Simulator::run_budgeted`]); the
//!   coordinator raises it when the store fails, when the caller's
//!   [`CampaignOptions::cancel`] flag goes up (e.g. a Ctrl-C handler), or
//!   when [`CampaignOptions::wall_budget_ms`] elapses. Shutdown is
//!   *graceful*: in-flight runs return `Cancelled` records that are
//!   flushed to the store, so resume re-executes exactly the interrupted
//!   and undispatched work.
//! * **Determinism** — scheduling order (and therefore row order in the
//!   store) varies with `jobs`, but each row's *content* depends only on
//!   its descriptor, and the report layer sorts before aggregating, so
//!   `--jobs 1` and `--jobs 4` produce identical aggregates. (Quarantine
//!   *decisions* depend on completion order and are recorded rows, not
//!   aggregated measurements.)
//!
//! [`RunStatus::Panic`]: crate::runner::RunStatus::Panic
//! [`RunStatus::Quarantined`]: crate::runner::RunStatus::Quarantined
//! [`Simulator::run_budgeted`]: tracefill_sim::Simulator::run_budgeted

use crate::grid::{CampaignSpec, RunDescriptor};
use crate::progress::Progress;
use crate::runner::{self, RunRecord, RunStatus};
use crate::store::ResultStore;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// Knobs for one `run_campaign_with` invocation.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 is rejected).
    pub jobs: usize,
    /// Paint the live status line on stderr.
    pub live_progress: bool,
    /// Quarantine a configuration key after this many *consecutive*
    /// panics (0 disables quarantine). Unset (`Default`) means 0; use
    /// [`CampaignOptions::standard`] for the recommended threshold.
    pub quarantine_after: u32,
    /// External cooperative-cancel flag (e.g. raised by a signal handler).
    /// The campaign polls it and shuts down gracefully when it goes up.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Wall-clock budget for this invocation in milliseconds (0 =
    /// unlimited). On expiry the campaign cancels gracefully; completed
    /// rows stay, interrupted rows are recorded `cancelled` and re-run on
    /// resume.
    pub wall_budget_ms: u64,
}

impl CampaignOptions {
    /// The recommended configuration: `jobs` workers, quarantine after 3
    /// consecutive panics, no cancel flag, no wall budget.
    #[must_use]
    pub fn standard(jobs: usize, live_progress: bool) -> CampaignOptions {
        CampaignOptions {
            jobs,
            live_progress,
            quarantine_after: 3,
            cancel: None,
            wall_budget_ms: 0,
        }
    }
}

/// What a finished (or resumed) campaign did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Grid points in the spec.
    pub total: usize,
    /// Points already in the store (skipped on resume).
    pub skipped: usize,
    /// Points executed this invocation.
    pub executed: usize,
    /// Executed points that did not end [`RunStatus::Ok`].
    pub failed: usize,
    /// Points recorded [`RunStatus::Quarantined`] without executing.
    pub quarantined: usize,
    /// The campaign was cancelled (external flag or wall budget) before
    /// the queue drained.
    pub cancelled: bool,
    /// Wall-clock milliseconds for this invocation.
    pub wall_ms: u64,
}

/// Runs (or resumes) a campaign with `jobs` worker threads, appending each
/// completed run to `store`. Set `live_progress` to paint the status line
/// on stderr. Equivalent to [`run_campaign_with`] with
/// [`CampaignOptions::standard`].
///
/// # Errors
///
/// I/O errors from the result store. Simulation failures and panics are
/// *not* errors — they are recorded rows (see module docs).
///
/// # Panics
///
/// Panics if `jobs == 0`.
pub fn run_campaign(
    spec: &CampaignSpec,
    store: &mut ResultStore,
    jobs: usize,
    live_progress: bool,
) -> io::Result<CampaignSummary> {
    run_campaign_with(spec, store, &CampaignOptions::standard(jobs, live_progress))
}

/// Runs (or resumes) a campaign under explicit [`CampaignOptions`].
///
/// # Errors
///
/// I/O errors from the result store. Simulation failures and panics are
/// *not* errors — they are recorded rows (see module docs).
///
/// # Panics
///
/// Panics if `options.jobs == 0`.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    store: &mut ResultStore,
    options: &CampaignOptions,
) -> io::Result<CampaignSummary> {
    let jobs = options.jobs;
    assert!(jobs > 0, "need at least one worker");
    install_panic_location_hook();
    let start = Instant::now();
    let deadline =
        (options.wall_budget_ms > 0).then(|| start + Duration::from_millis(options.wall_budget_ms));
    let all = spec.expand();
    let done = store.completed_ids()?;
    let todo: VecDeque<RunDescriptor> = all
        .iter()
        .filter(|d| !done.contains(&d.run_id))
        .cloned()
        .collect();

    let total = all.len();
    let skipped = total - todo.len();
    let pending = todo.len();
    let mut progress = Progress::new(total, skipped, options.live_progress);
    let mut executed = 0usize;
    let mut failed = 0usize;
    let mut quarantined_count = 0usize;
    let mut was_cancelled = false;
    let mut store_error: Option<io::Error> = None;

    let queue = Mutex::new(todo);
    let cancel = AtomicBool::new(false);
    // Quarantined configuration keys, shared with workers. Seeded from the
    // store so a resumed campaign skips cells a prior invocation poisoned.
    let quarantine = Mutex::new(store.quarantined_keys()?);
    // Consecutive-panic streaks per configuration key. Workers update this
    // *synchronously* on completion (the coordinator only persists the
    // marker), so the very next pop of a poisoned key already skips — no
    // window where queued work races the quarantine decision.
    let streaks = Mutex::new(HashMap::<String, u32>::new());
    let (tx, rx) = mpsc::channel::<Msg>();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(pending.max(1)) {
            let tx = tx.clone();
            let queue = &queue;
            let cancel = &cancel;
            let quarantine = &quarantine;
            let streaks = &streaks;
            let quarantine_after = options.quarantine_after;
            let campaign = spec.name.as_str();
            scope.spawn(move || loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let Some(desc) = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front() else {
                    break;
                };
                let key = quarantine_key(&desc);
                if quarantine
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .contains(&key)
                {
                    // Skip without executing: the cell is poisoned.
                    let record = skipped_record(&desc, campaign, &key);
                    if tx.send(Msg::Done(Box::new(record))).is_err() {
                        break;
                    }
                    continue;
                }
                // Heartbeat first: if the process dies mid-run, the store
                // shows the run as started-but-unfinished, and resume will
                // re-execute it (heartbeats never count as completed).
                if tx.send(Msg::Started(desc.run_id.clone())).is_err() {
                    break; // coordinator gone
                }
                let record = catch_unwind(AssertUnwindSafe(|| {
                    runner::execute(&desc, campaign, Some(cancel))
                }))
                .unwrap_or_else(|payload| panic_record(&desc, campaign, &payload));
                // Update the panic streak *before* the next pop, so a
                // poisoned cell stops executing the moment the threshold is
                // crossed.
                if matches!(record.status, RunStatus::Panic(_)) {
                    let mut s = streaks.lock().unwrap_or_else(|e| e.into_inner());
                    let streak = s.entry(key.clone()).or_insert(0);
                    *streak += 1;
                    let poisoned = quarantine_after > 0 && *streak >= quarantine_after;
                    drop(s);
                    if poisoned
                        && quarantine
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(key.clone())
                        && tx.send(Msg::Quarantine(key)).is_err()
                    {
                        break; // coordinator gone
                    }
                } else {
                    streaks
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&key);
                }
                if tx.send(Msg::Done(Box::new(record))).is_err() {
                    break; // coordinator gone
                }
            });
        }
        drop(tx); // workers hold the only remaining senders

        // Coordinator: the single store writer, the quarantine authority,
        // and the watchdog for external cancellation / the wall budget.
        loop {
            let msg = match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    let external = options
                        .cancel
                        .as_ref()
                        .is_some_and(|c| c.load(Ordering::Relaxed));
                    let overtime = deadline.is_some_and(|d| Instant::now() >= d);
                    if (external || overtime) && !cancel.load(Ordering::Relaxed) {
                        was_cancelled = true;
                        cancel.store(true, Ordering::Relaxed);
                        // Keep looping: in-flight runs flush Cancelled
                        // records before the channel closes.
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            };
            let result = match msg {
                Msg::Started(run_id) => store.append_heartbeat(&run_id),
                Msg::Quarantine(key) => store.append_quarantine(&key),
                Msg::Done(record) => {
                    match &record.status {
                        RunStatus::Quarantined(_) => quarantined_count += 1,
                        status => {
                            executed += 1;
                            if !status.is_ok() {
                                failed += 1;
                            }
                        }
                    }
                    progress.tick();
                    store.append(&record)
                }
            };
            if let Err(e) = result {
                store_error = Some(e);
                cancel.store(true, Ordering::Relaxed);
                // Keep draining so workers unblock and exit.
            }
        }
    });
    progress.finish();

    if let Some(e) = store_error {
        return Err(e);
    }
    Ok(CampaignSummary {
        total,
        skipped,
        executed,
        failed,
        quarantined: quarantined_count,
        cancelled: was_cancelled,
        wall_ms: start.elapsed().as_millis() as u64,
    })
}

/// The configuration key quarantine operates on: a panic is a property of
/// the (workload, optimization set) cell, not of one seed or latency.
fn quarantine_key(desc: &RunDescriptor) -> String {
    format!(
        "{}|{}|{}|{}",
        desc.bench,
        desc.opt_label,
        desc.policy.name(),
        desc.controller.label()
    )
}

/// Worker → coordinator messages. The record is boxed so the channel moves
/// a pointer, not the full stats/metrics payload.
enum Msg {
    /// A worker pulled this run id off the queue and is executing it.
    Started(String),
    /// A worker crossed the consecutive-panic threshold for this key; the
    /// coordinator persists the marker (workers already updated the shared
    /// in-memory set).
    Quarantine(String),
    /// A run finished (in any status) and should be persisted.
    Done(Box<RunRecord>),
}

thread_local! {
    /// Location of the most recent panic on this thread, captured by the
    /// process-wide hook below and consumed by [`panic_record`].
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that records the panic
/// location into [`LAST_PANIC_LOCATION`] before delegating to the previous
/// hook, so `catch_unwind`-based isolation can still attribute the panic
/// to a source line.
fn install_panic_location_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
            LAST_PANIC_LOCATION.with(|cell| *cell.borrow_mut() = loc);
            previous(info);
        }));
    });
}

/// An empty record carcass for runs that produced no measurement.
fn empty_record(desc: &RunDescriptor, campaign: &str, status: RunStatus) -> RunRecord {
    RunRecord {
        run_id: desc.run_id.clone(),
        campaign: campaign.to_string(),
        bench: desc.bench.clone(),
        opt_label: desc.opt_label.clone(),
        fill_latency: desc.fill_latency,
        seed: desc.seed,
        policy: desc.policy.name().to_string(),
        controller: desc.controller.label(),
        status,
        ipc: 0.0,
        window_cycles: 0,
        window_retired: 0,
        stats: tracefill_sim::Stats::default(),
        cpi: tracefill_sim::CpiStack::default(),
        metrics: tracefill_util::Registry::new(),
        repair: desc.self_repair.then(crate::runner::RepairSummary::default),
        wall_ms: 0,
    }
}

/// Builds the record for a run skipped because its key is quarantined.
fn skipped_record(desc: &RunDescriptor, campaign: &str, key: &str) -> RunRecord {
    empty_record(
        desc,
        campaign,
        RunStatus::Quarantined(format!("configuration `{key}` quarantined")),
    )
}

/// Builds the record for a run that escaped via panic: the payload
/// message, the panic location (when the hook captured one), and a full
/// echo of the descriptor's scientific coordinates, so the row alone
/// reproduces the failing configuration.
fn panic_record(
    desc: &RunDescriptor,
    campaign: &str,
    payload: &(dyn std::any::Any + Send),
) -> RunRecord {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    let location = LAST_PANIC_LOCATION.with(|cell| cell.borrow_mut().take());
    let mut detail = msg;
    if let Some(loc) = location {
        detail.push_str(&format!(" at {loc}"));
    }
    detail.push_str(&format!(
        " [bench={} opts={} fill_latency={} seed={} warmup={} budget={} max_cycles={}]",
        desc.bench,
        desc.opt_label,
        desc.fill_latency,
        desc.seed,
        desc.warmup,
        desc.budget,
        desc.max_cycles,
    ));
    empty_record(desc, campaign, RunStatus::Panic(detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_key_is_bench_and_opts() {
        let mut spec = CampaignSpec::fig8();
        spec.benchmarks = vec!["m88k".to_string()];
        spec.fill_latencies = vec![1];
        let desc = spec.expand().remove(0);
        let key = quarantine_key(&desc);
        assert!(key.starts_with("m88k|"), "{key}");
        assert!(key.contains('|'), "{key}");
    }
}
