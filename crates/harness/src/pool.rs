//! The sharded worker pool.
//!
//! `run_campaign` expands the spec, subtracts the run ids already recorded
//! in the store (resume), and executes the remainder on `jobs` OS threads
//! pulling from a shared work queue. Design points:
//!
//! * **Panic isolation** — each run executes under
//!   `std::panic::catch_unwind`; a panicking kernel produces a
//!   [`RunStatus::Panic`] record and the campaign keeps going.
//! * **Single-writer store** — workers send records over a channel; only
//!   the coordinating thread appends, so rows never interleave.
//! * **Cancellation** — a shared flag is polled inside the simulator's
//!   cycle loop (see [`Simulator::run_budgeted`]); `run_campaign` raises it
//!   if the coordinator fails to persist a record, so workers don't churn
//!   after the store is gone.
//! * **Determinism** — scheduling order (and therefore row order in the
//!   store) varies with `jobs`, but each row's *content* depends only on
//!   its descriptor, and the report layer sorts before aggregating, so
//!   `--jobs 1` and `--jobs 4` produce identical aggregates.
//!
//! [`RunStatus::Panic`]: crate::runner::RunStatus::Panic
//! [`Simulator::run_budgeted`]: tracefill_sim::Simulator::run_budgeted

use crate::grid::{CampaignSpec, RunDescriptor};
use crate::progress::Progress;
use crate::runner::{self, RunRecord, RunStatus};
use crate::store::ResultStore;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// What a finished (or resumed) campaign did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Grid points in the spec.
    pub total: usize,
    /// Points already in the store (skipped on resume).
    pub skipped: usize,
    /// Points executed this invocation.
    pub executed: usize,
    /// Executed points that did not end [`RunStatus::Ok`].
    pub failed: usize,
    /// Wall-clock milliseconds for this invocation.
    pub wall_ms: u64,
}

/// Runs (or resumes) a campaign with `jobs` worker threads, appending each
/// completed run to `store`. Set `live_progress` to paint the status line
/// on stderr.
///
/// # Errors
///
/// I/O errors from the result store. Simulation failures and panics are
/// *not* errors — they are recorded rows (see module docs).
///
/// # Panics
///
/// Panics if `jobs == 0`.
pub fn run_campaign(
    spec: &CampaignSpec,
    store: &mut ResultStore,
    jobs: usize,
    live_progress: bool,
) -> io::Result<CampaignSummary> {
    assert!(jobs > 0, "need at least one worker");
    let start = Instant::now();
    let all = spec.expand();
    let done = store.completed_ids()?;
    let todo: VecDeque<RunDescriptor> = all
        .iter()
        .filter(|d| !done.contains(&d.run_id))
        .cloned()
        .collect();

    let total = all.len();
    let skipped = total - todo.len();
    let pending = todo.len();
    let mut progress = Progress::new(total, skipped, live_progress);
    let mut executed = 0usize;
    let mut failed = 0usize;
    let mut store_error: Option<io::Error> = None;

    let queue = Mutex::new(todo);
    let cancel = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Msg>();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(pending.max(1)) {
            let tx = tx.clone();
            let queue = &queue;
            let cancel = &cancel;
            let campaign = spec.name.as_str();
            scope.spawn(move || loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let Some(desc) = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front() else {
                    break;
                };
                // Heartbeat first: if the process dies mid-run, the store
                // shows the run as started-but-unfinished, and resume will
                // re-execute it (heartbeats never count as completed).
                if tx.send(Msg::Started(desc.run_id.clone())).is_err() {
                    break; // coordinator gone
                }
                let record = catch_unwind(AssertUnwindSafe(|| {
                    runner::execute(&desc, campaign, Some(cancel))
                }))
                .unwrap_or_else(|payload| panic_record(&desc, campaign, &payload));
                if tx.send(Msg::Done(Box::new(record))).is_err() {
                    break; // coordinator gone
                }
            });
        }
        drop(tx); // workers hold the only remaining senders

        // Coordinator: the single store writer.
        for msg in rx {
            let result = match msg {
                Msg::Started(run_id) => store.append_heartbeat(&run_id),
                Msg::Done(record) => {
                    if !record.status.is_ok() {
                        failed += 1;
                    }
                    executed += 1;
                    let result = store.append(&record);
                    progress.tick();
                    result
                }
            };
            if let Err(e) = result {
                store_error = Some(e);
                cancel.store(true, Ordering::Relaxed);
                // Keep draining so workers unblock and exit.
            }
        }
    });
    progress.finish();

    if let Some(e) = store_error {
        return Err(e);
    }
    Ok(CampaignSummary {
        total,
        skipped,
        executed,
        failed,
        wall_ms: start.elapsed().as_millis() as u64,
    })
}

/// Worker → coordinator messages. The record is boxed so the channel moves
/// a pointer, not the full stats/metrics payload.
enum Msg {
    /// A worker pulled this run id off the queue and is executing it.
    Started(String),
    /// A run finished (in any status) and should be persisted.
    Done(Box<RunRecord>),
}

/// Builds the record for a run that escaped via panic.
fn panic_record(
    desc: &RunDescriptor,
    campaign: &str,
    payload: &(dyn std::any::Any + Send),
) -> RunRecord {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    RunRecord {
        run_id: desc.run_id.clone(),
        campaign: campaign.to_string(),
        bench: desc.bench.clone(),
        opt_label: desc.opt_label.clone(),
        fill_latency: desc.fill_latency,
        seed: desc.seed,
        status: RunStatus::Panic(msg),
        ipc: 0.0,
        window_cycles: 0,
        window_retired: 0,
        stats: tracefill_sim::Stats::default(),
        cpi: tracefill_sim::CpiStack::default(),
        metrics: tracefill_util::Registry::new(),
        wall_ms: 0,
    }
}
