//! Aggregation and reporting — the campaign engine's scientific output.
//!
//! Everything here is computed from the JSONL rows alone (no live
//! simulator state), so `tracefill report` can reproduce the paper-shaped
//! tables from a results file long after the sweep ran, and the output is
//! deterministic: records are grouped and sorted by content, never by
//! arrival order, so `--jobs 1` and `--jobs 4` campaigns aggregate
//! identically.

use crate::runner::RunRecord;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Per-benchmark IPC delta of one grid cell (an {opt set} × {fill latency}
/// point) against the `none` baseline at the same latency.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Optimization label of the cell.
    pub opt_label: String,
    /// Fill latency of the cell.
    pub fill_latency: u32,
    /// `(bench, base IPC, cell IPC, delta %)` rows, in suite order.
    pub per_bench: Vec<BenchDelta>,
    /// Arithmetic mean of the per-benchmark deltas (%).
    pub arith_mean_pct: f64,
    /// Geometric mean of the per-benchmark speedups, as a delta (%).
    pub geo_mean_pct: f64,
    /// Smallest per-benchmark delta (%).
    pub min_pct: f64,
    /// Largest per-benchmark delta (%).
    pub max_pct: f64,
}

/// A `(bench, base IPC, cell IPC, delta %)` row.
type BenchDelta = (String, f64, f64, f64);

/// Orders benchmarks in the paper's Table 1 order; unknown names sort
/// after the suite, alphabetically.
fn bench_order(name: &str) -> (usize, String) {
    let idx = tracefill_workloads::names()
        .iter()
        .position(|n| *n == name)
        .unwrap_or(usize::MAX);
    (idx, name.to_string())
}

/// Mean measured-window IPC per (bench, opt, latency), over `Ok` rows.
fn cell_means(records: &[RunRecord]) -> BTreeMap<(String, String, u32), f64> {
    let mut sums: BTreeMap<(String, String, u32), (f64, u32)> = BTreeMap::new();
    for r in records.iter().filter(|r| r.status.is_ok()) {
        let e = sums
            .entry((r.bench.clone(), r.opt_label.clone(), r.fill_latency))
            .or_insert((0.0, 0));
        e.0 += r.ipc;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (sum, n))| (k, sum / f64::from(n)))
        .collect()
}

/// Computes every non-baseline cell's per-benchmark deltas. Cells are
/// sorted by (opt label, latency); benchmarks within a cell are in suite
/// order. Benchmarks without a usable baseline (missing or zero-IPC
/// `none` run at the same latency) are omitted from that cell.
#[must_use]
pub fn aggregates(records: &[RunRecord]) -> Vec<CellDelta> {
    let means = cell_means(records);
    let mut cells: BTreeMap<(String, u32), Vec<BenchDelta>> = BTreeMap::new();
    for ((bench, opt, lat), &ipc) in &means {
        if opt == "none" {
            continue;
        }
        let Some(&base) = means.get(&(bench.clone(), "none".to_string(), *lat)) else {
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        cells.entry((opt.clone(), *lat)).or_default().push((
            bench.clone(),
            base,
            ipc,
            (ipc / base - 1.0) * 100.0,
        ));
    }
    let mut out = Vec::new();
    for ((opt_label, fill_latency), mut per_bench) in cells {
        per_bench.sort_by_key(|(b, _, _, _)| bench_order(b));
        let n = per_bench.len() as f64;
        let arith = per_bench.iter().map(|r| r.3).sum::<f64>() / n;
        let geo = (per_bench
            .iter()
            .map(|r| (r.3 / 100.0 + 1.0).ln())
            .sum::<f64>()
            / n)
            .exp();
        let min = per_bench.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
        let max = per_bench
            .iter()
            .map(|r| r.3)
            .fold(f64::NEG_INFINITY, f64::max);
        out.push(CellDelta {
            opt_label,
            fill_latency,
            per_bench,
            arith_mean_pct: arith,
            geo_mean_pct: (geo - 1.0) * 100.0,
            min_pct: min,
            max_pct: max,
        });
    }
    out
}

/// The Figure 8-shaped table: per-benchmark IPC delta per cell, with
/// arithmetic/geometric means and min/max rows.
#[must_use]
pub fn fig8_table(records: &[RunRecord]) -> String {
    let cells = aggregates(records);
    if cells.is_empty() {
        return "no aggregatable runs (need `none` baselines plus at least one opt cell)\n"
            .to_string();
    }
    // Union of benchmarks across cells, suite order.
    let mut benches: Vec<String> = cells
        .iter()
        .flat_map(|c| c.per_bench.iter().map(|r| r.0.clone()))
        .collect();
    benches.sort_by_key(|b| bench_order(b));
    benches.dedup();

    let mut s = String::new();
    let _ = write!(s, "{:8} {:>9}", "bench", "base IPC");
    for c in &cells {
        let _ = write!(
            s,
            " {:>14}",
            format!("{}@lat{}", c.opt_label, c.fill_latency)
        );
    }
    s.push('\n');
    for bench in &benches {
        let base = cells
            .iter()
            .find_map(|c| c.per_bench.iter().find(|r| &r.0 == bench).map(|r| r.1));
        match base {
            Some(b) => {
                let _ = write!(s, "{bench:8} {b:9.3}");
            }
            None => {
                let _ = write!(s, "{bench:8} {:>9}", "-");
            }
        }
        for c in &cells {
            match c.per_bench.iter().find(|r| &r.0 == bench) {
                Some(r) => {
                    let _ = write!(s, " {:>14}", format!("{:+.1}%", r.3));
                }
                None => {
                    let _ = write!(s, " {:>14}", "-");
                }
            }
        }
        s.push('\n');
    }
    for (label, f) in [
        ("mean", CellDelta::arith as fn(&CellDelta) -> f64),
        ("geomean", CellDelta::geo),
        ("min", CellDelta::min),
        ("max", CellDelta::max),
    ] {
        let _ = write!(s, "{label:8} {:>9}", "");
        for c in &cells {
            let _ = write!(s, " {:>14}", format!("{:+.1}%", f(c)));
        }
        s.push('\n');
    }
    s
}

impl CellDelta {
    fn arith(&self) -> f64 {
        self.arith_mean_pct
    }
    fn geo(&self) -> f64 {
        self.geo_mean_pct
    }
    fn min(&self) -> f64 {
        self.min_pct
    }
    fn max(&self) -> f64 {
        self.max_pct
    }
}

/// The CPI-stack table: one column per `(opt set, fill latency)` cell,
/// merged over the measured windows of that cell's `Ok` rows. Rows are the
/// `base` component (useful work), the eight stall components, their sum
/// (the cell's CPI), and the IPC reconstructed from `base` — which equals
/// `window_retired / window_cycles` exactly, because merged stacks add
/// slot counts, never ratios.
#[must_use]
pub fn cpi_table(records: &[RunRecord]) -> String {
    let mut cells: BTreeMap<(String, u32), tracefill_sim::CpiStack> = BTreeMap::new();
    for r in records
        .iter()
        .filter(|r| r.status.is_ok() && r.cpi.cycles > 0)
    {
        cells
            .entry((r.opt_label.clone(), r.fill_latency))
            .or_default()
            .merge(&r.cpi);
    }
    if cells.is_empty() {
        return "no rows carry a CPI stack (rows predate CPI recording)\n".to_string();
    }
    let mut s = String::new();
    let _ = write!(s, "{:16}", "component");
    for (opt, lat) in cells.keys() {
        let _ = write!(s, " {:>14}", format!("{opt}@lat{lat}"));
    }
    s.push('\n');
    let _ = write!(s, "{:16}", "base");
    for c in cells.values() {
        let _ = write!(s, " {:>14.4}", c.cpi_of(c.base));
    }
    s.push('\n');
    let names: Vec<&str> = tracefill_sim::cpi::STALL_COMPONENTS.to_vec();
    for (i, name) in names.iter().enumerate() {
        let _ = write!(s, "{name:16}");
        for c in cells.values() {
            let _ = write!(s, " {:>14.4}", c.cpi_of(c.stall_slots()[i].1));
        }
        s.push('\n');
    }
    let _ = write!(s, "{:16}", "total CPI");
    for c in cells.values() {
        let _ = write!(s, " {:>14.4}", c.cpi_of(c.total_slots()));
    }
    s.push('\n');
    let _ = write!(s, "{:16}", "IPC");
    for c in cells.values() {
        let _ = write!(s, " {:>14.4}", c.ipc_from_base());
    }
    s.push('\n');
    s
}

/// The Table 2-shaped table: % of retired instructions each transformation
/// touched, per benchmark, next to the paper's numbers. Uses the `all`
/// cell at the lowest recorded latency. Counts come from the metrics
/// registry (`retire.*`, the single source of truth shared with the fill
/// unit's accept counters); rows recorded before the registry existed fall
/// back to the `Stats.retired_*` fields.
#[must_use]
pub fn table2_table(records: &[RunRecord]) -> String {
    let mut rows: BTreeMap<(usize, String), (f64, f64, f64, u32)> = BTreeMap::new();
    let min_lat = records
        .iter()
        .filter(|r| r.status.is_ok() && r.opt_label == "all")
        .map(|r| r.fill_latency)
        .min();
    let Some(min_lat) = min_lat else {
        return "no `all` runs to measure transformation coverage from\n".to_string();
    };
    for r in records
        .iter()
        .filter(|r| r.status.is_ok() && r.opt_label == "all" && r.fill_latency == min_lat)
    {
        // Registry first (shared with the fill unit's accept counters);
        // fall back to Stats for rows that predate the registry.
        let (ret, moves, reassoc, scadd) = if r.metrics.counter("retire.total") > 0 {
            (
                r.metrics.counter("retire.total"),
                r.metrics.counter("retire.moves"),
                r.metrics.counter("retire.reassoc"),
                r.metrics.counter("retire.scadd"),
            )
        } else {
            (
                r.stats.retired,
                r.stats.retired_moves,
                r.stats.retired_reassoc,
                r.stats.retired_scadd,
            )
        };
        let ret = ret.max(1) as f64;
        let e = rows
            .entry(bench_order(&r.bench))
            .or_insert((0.0, 0.0, 0.0, 0));
        e.0 += moves as f64 / ret * 100.0;
        e.1 += reassoc as f64 / ret * 100.0;
        e.2 += scadd as f64 / ret * 100.0;
        e.3 += 1;
    }
    let mut s = String::new();
    let _ = writeln!(s, "{:8} | {:>30} | {:>30}", "", "ours", "paper");
    let _ = writeln!(
        s,
        "{:8} | {:>6} {:>8} {:>6} {:>6} | {:>6} {:>8} {:>6} {:>6}",
        "bench", "moves", "reassoc", "scadd", "total", "moves", "reassoc", "scadd", "total"
    );
    let mut total_sum = 0.0;
    let mut n = 0.0;
    for ((_, bench), &(ms, res, scs, k)) in &rows {
        let k = f64::from(k.max(1));
        let (m, re, sc) = (ms / k, res / k, scs / k);
        let paper = tracefill_workloads::by_name(bench).map(|b| b.table2);
        match paper {
            Some(t) => {
                let _ = writeln!(
                    s,
                    "{bench:8} | {m:6.1} {re:8.1} {sc:6.1} {:6.1} | {:6.1} {:8.1} {:6.1} {:6.1}",
                    m + re + sc,
                    t.moves,
                    t.reassoc,
                    t.scadd,
                    t.total
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "{bench:8} | {m:6.1} {re:8.1} {sc:6.1} {:6.1} | {:>6} {:>8} {:>6} {:>6}",
                    m + re + sc,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
        }
        total_sum += m + re + sc;
        n += 1.0;
    }
    if n > 0.0 {
        let _ = writeln!(s, "mean total: ours {:.1}%  paper 13.3%", total_sum / n);
    }
    s
}

/// The segment-ledger table: per-`(bench, opt, latency)` roll-up of the
/// `ledger.*` metrics that ledgered runs carry in their registry, followed
/// by a per-pass estimated-cycles-saved attribution (the ROI proxy:
/// transforms × hits). Counters add and histograms merge across the seeds
/// of a cell, so quantiles are over the union of segment lives, not means
/// of per-seed quantiles. Rows without ledger metrics (ledger off, or
/// recorded before the ledger existed) are skipped; if none carry them the
/// table says so instead of rendering empty columns.
#[must_use]
pub fn ledger_table(records: &[RunRecord]) -> String {
    const PASSES: [&str; 5] = ["moves", "cse", "reassoc", "scadd", "placement"];
    let mut cells: BTreeMap<(usize, String, String, u32), tracefill_util::Registry> =
        BTreeMap::new();
    for r in records.iter().filter(|r| r.status.is_ok()) {
        if r.metrics.counter("ledger.segments") == 0 {
            continue;
        }
        let (ord, bench) = bench_order(&r.bench);
        cells
            .entry((ord, bench, r.opt_label.clone(), r.fill_latency))
            .or_default()
            .merge(&r.metrics);
    }
    if cells.is_empty() {
        return "no rows carry ledger metrics (enable the segment ledger on the campaign)\n"
            .to_string();
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:8} {:>12} {:>7} {:>6} {:>9} {:>7} {:>7} {:>9} {:>9} {:>12}",
        "bench",
        "cell",
        "segs",
        "doa",
        "hits",
        "reuse50",
        "reuse90",
        "resid50",
        "evict c/r",
        "uops retired"
    );
    for ((_, bench, opt, lat), m) in &cells {
        let reuse = m.histogram("ledger.reuse");
        let resid = m.histogram("ledger.residency");
        let _ = writeln!(
            s,
            "{:8} {:>12} {:>7} {:>6} {:>9} {:>7.1} {:>7.1} {:>9.0} {:>9} {:>12}",
            bench,
            format!("{opt}@lat{lat}"),
            m.counter("ledger.segments"),
            m.counter("ledger.doa"),
            m.counter("ledger.hits"),
            reuse.map_or(0.0, tracefill_util::Histogram::p50),
            reuse.map_or(0.0, tracefill_util::Histogram::p90),
            resid.map_or(0.0, tracefill_util::Histogram::p50),
            format!(
                "{}/{}",
                m.counter("ledger.evict.conflict"),
                m.counter("ledger.evict.refresh")
            ),
            m.counter("ledger.uops_retired"),
        );
    }
    let _ = writeln!(
        s,
        "\nper-pass est cycles saved (ROI proxy: transforms x segment hits):"
    );
    let _ = write!(s, "{:8} {:>12}", "bench", "cell");
    for p in PASSES {
        let _ = write!(s, " {p:>12}");
    }
    let _ = writeln!(s, " {:>12}", "total");
    for ((_, bench, opt, lat), m) in &cells {
        let _ = write!(s, "{:8} {:>12}", bench, format!("{opt}@lat{lat}"));
        let mut total = 0u64;
        for p in PASSES {
            let v = m.counter(&format!("ledger.saved.{p}"));
            total += v;
            let _ = write!(s, " {v:>12}");
        }
        let _ = writeln!(s, " {total:>12}");
    }
    s
}

/// The self-repair availability table: per-`(bench, opt, latency)`
/// roll-up of the rows that carry a repair summary (runs executed with
/// `--self-repair`). `recovered` counts runs that completed after at least
/// one contained failure, `fatal` counts armed runs that still died, and
/// `avail%` is completed-over-total — the headline number the repair
/// ladder exists to keep at 100. Plain rows (no summary) are skipped; if
/// none carry one the table says so.
#[must_use]
pub fn availability_table(records: &[RunRecord]) -> String {
    #[derive(Default)]
    struct Cell {
        runs: u64,
        completed: u64,
        recovered: u64,
        fatal: u64,
        repairs: u64,
        quarantined: u64,
        disabled: u64,
    }
    let mut cells: BTreeMap<(usize, String, String, u32), Cell> = BTreeMap::new();
    for r in records {
        let Some(rep) = r.repair else { continue };
        let (ord, bench) = bench_order(&r.bench);
        let cell = cells
            .entry((ord, bench, r.opt_label.clone(), r.fill_latency))
            .or_default();
        cell.runs += 1;
        cell.repairs += rep.repairs;
        cell.quarantined += rep.quarantined;
        cell.disabled += rep.disabled;
        if r.status.is_ok() {
            cell.completed += 1;
            if rep.repairs > 0 {
                cell.recovered += 1;
            }
        } else {
            cell.fatal += 1;
        }
    }
    if cells.is_empty() {
        return "no rows carry repair summaries (run the campaign with --self-repair)\n"
            .to_string();
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:8} {:>12} {:>6} {:>10} {:>6} {:>8} {:>11} {:>9} {:>7}",
        "bench",
        "cell",
        "runs",
        "recovered",
        "fatal",
        "repairs",
        "quarantines",
        "disables",
        "avail%"
    );
    for ((_, bench, opt, lat), c) in &cells {
        let _ = writeln!(
            s,
            "{:8} {:>12} {:>6} {:>10} {:>6} {:>8} {:>11} {:>9} {:>7.1}",
            bench,
            format!("{opt}@lat{lat}"),
            c.runs,
            c.recovered,
            c.fatal,
            c.repairs,
            c.quarantined,
            c.disabled,
            100.0 * c.completed as f64 / c.runs.max(1) as f64,
        );
    }
    s
}

/// A status roll-up: how many rows ended in each state, plus totals.
#[must_use]
pub fn summary(records: &[RunRecord]) -> String {
    let mut by_status: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut cycles = 0u64;
    let mut retired = 0u64;
    let mut quarantined: BTreeMap<(String, String), usize> = BTreeMap::new();
    for r in records {
        let tag = match &r.status {
            crate::runner::RunStatus::Ok => "ok",
            crate::runner::RunStatus::CycleLimit => "cycle-limit",
            crate::runner::RunStatus::Timeout => "timeout",
            crate::runner::RunStatus::Cancelled => "cancelled",
            crate::runner::RunStatus::SimError(_) => "sim-error",
            crate::runner::RunStatus::Panic(_) => "panic",
            crate::runner::RunStatus::Quarantined(_) => {
                *quarantined
                    .entry((r.bench.clone(), r.opt_label.clone()))
                    .or_default() += 1;
                "quarantined"
            }
        };
        *by_status.entry(tag).or_default() += 1;
        cycles += r.stats.cycles;
        retired += r.stats.retired;
    }
    let mut s = format!(
        "{} rows, {} cycles simulated, {} instructions retired\n",
        records.len(),
        cycles,
        retired
    );
    for (tag, count) in by_status {
        let _ = writeln!(s, "  {tag:12} {count}");
    }
    if !quarantined.is_empty() {
        let _ = writeln!(s, "quarantined configurations (skipped without executing):");
        for ((bench, opts), count) in quarantined {
            let _ = writeln!(s, "  {bench}|{opts}  ({count} run(s) skipped)");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunRecord, RunStatus};
    use tracefill_sim::Stats;

    fn row(bench: &str, opt: &str, lat: u32, ipc: f64) -> RunRecord {
        RunRecord {
            run_id: format!("{bench}-{opt}-{lat}"),
            campaign: "t".to_string(),
            bench: bench.to_string(),
            opt_label: opt.to_string(),
            fill_latency: lat,
            seed: 0,
            policy: "lru".to_string(),
            controller: "off".to_string(),
            status: RunStatus::Ok,
            ipc,
            window_cycles: 1000,
            window_retired: (ipc * 1000.0) as u64,
            stats: Stats {
                cycles: 1000,
                retired: (ipc * 1000.0) as u64,
                ..Stats::default()
            },
            cpi: tracefill_sim::CpiStack::default(),
            metrics: tracefill_util::Registry::new(),
            repair: None,
            wall_ms: 1,
        }
    }

    #[test]
    fn deltas_are_computed_against_same_latency_baseline() {
        let records = vec![
            row("m88k", "none", 1, 2.0),
            row("m88k", "all", 1, 2.5),
            row("m88k", "none", 5, 1.9),
            row("m88k", "all", 5, 2.28),
        ];
        let cells = aggregates(&records);
        assert_eq!(cells.len(), 2);
        let lat1 = cells.iter().find(|c| c.fill_latency == 1).unwrap();
        assert!((lat1.per_bench[0].3 - 25.0).abs() < 1e-9);
        let lat5 = cells.iter().find(|c| c.fill_latency == 5).unwrap();
        assert!((lat5.per_bench[0].3 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_ignores_order_and_failed_rows() {
        let mut a = vec![
            row("m88k", "none", 1, 2.0),
            row("m88k", "all", 1, 2.5),
            row("comp", "none", 1, 1.0),
            row("comp", "all", 1, 1.1),
        ];
        let mut failed = row("comp", "all", 1, 9.9);
        failed.status = RunStatus::Panic("boom".to_string());
        a.push(failed);
        let mut b = a.clone();
        b.reverse();
        assert_eq!(aggregates(&a), aggregates(&b));
        let cell = &aggregates(&a)[0];
        assert!((cell.arith_mean_pct - 17.5).abs() < 1e-9);
        assert!((cell.min_pct - 10.0).abs() < 1e-9);
        assert!((cell.max_pct - 25.0).abs() < 1e-9);
        // geomean of 1.25 and 1.10: sqrt(1.375) - 1 = 17.26%
        assert!((cell.geo_mean_pct - (1.375f64.sqrt() - 1.0) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn seeds_average_within_a_cell() {
        let mut r1 = row("m88k", "all", 1, 2.0);
        r1.seed = 0;
        let mut r2 = row("m88k", "all", 1, 3.0);
        r2.seed = 1;
        let records = vec![row("m88k", "none", 1, 2.0), r1, r2];
        let cells = aggregates(&records);
        assert!((cells[0].per_bench[0].2 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn tables_render_without_panicking() {
        let records = vec![
            row("m88k", "none", 1, 2.0),
            row("m88k", "all", 1, 2.5),
            row("ch", "none", 1, 1.5),
            row("ch", "all", 1, 1.8),
        ];
        let fig8 = fig8_table(&records);
        assert!(fig8.contains("all@lat1"), "{fig8}");
        assert!(fig8.contains("m88k"), "{fig8}");
        assert!(fig8.contains("geomean"), "{fig8}");
        let t2 = table2_table(&records);
        assert!(t2.contains("m88k"), "{t2}");
        let sum = summary(&records);
        assert!(sum.contains("ok"), "{sum}");
    }

    #[test]
    fn empty_input_degrades_gracefully() {
        assert!(fig8_table(&[]).contains("no aggregatable"));
        assert!(table2_table(&[]).contains("no `all` runs"));
        assert!(cpi_table(&[]).contains("no rows carry a CPI stack"));
        assert!(ledger_table(&[]).contains("no rows carry ledger metrics"));
    }

    /// Builds a ledgered row with `segs` segments, `hits` total hits, and
    /// a given moves-pass savings counter.
    fn row_with_ledger(bench: &str, seed: u64, segs: u64, hits: u64, moves: u64) -> RunRecord {
        let mut r = row(bench, "all", 1, 2.0);
        r.run_id = format!("{bench}-ledger-{seed}");
        r.seed = seed;
        r.metrics.add("ledger.segments", segs);
        r.metrics.add("ledger.doa", 1);
        r.metrics.add("ledger.hits", hits);
        r.metrics.add("ledger.evict.conflict", 3);
        r.metrics.add("ledger.evict.refresh", 2);
        r.metrics.add("ledger.uops_retired", hits * 10);
        r.metrics.add("ledger.saved.moves", moves);
        r.metrics.add("ledger.saved.cse", 7);
        let bounds = [1u64, 2, 4, 8, 16, 32, 64, 128];
        for h in 0..segs {
            r.metrics.observe("ledger.reuse", &bounds, h);
            r.metrics.observe("ledger.residency", &bounds, h * 4);
        }
        r
    }

    #[test]
    fn ledger_table_merges_seeds_and_attributes_passes() {
        let records = vec![
            row("m88k", "all", 1, 2.0), // no ledger metrics: skipped
            row_with_ledger("m88k", 0, 10, 40, 100),
            row_with_ledger("m88k", 1, 10, 60, 50),
        ];
        let t = ledger_table(&records);
        // Counters add across seeds within the cell.
        assert!(t.contains(" 20 "), "segments should sum to 20:\n{t}");
        assert!(t.contains(" 100 "), "hits should sum to 100:\n{t}");
        assert!(t.contains("6/4"), "evictions should sum per cause:\n{t}");
        // Per-pass savings: moves 150, cse 7+7, total 164.
        assert!(t.contains("150"), "{t}");
        assert!(t.contains("164"), "{t}");
        assert!(t.contains("per-pass est cycles saved"), "{t}");
        for p in ["moves", "cse", "reassoc", "scadd", "placement"] {
            assert!(t.contains(p), "missing pass column {p}:\n{t}");
        }
    }

    #[test]
    fn ledger_table_ignores_failed_rows_and_row_order() {
        let mut failed = row_with_ledger("m88k", 2, 999, 999, 999);
        failed.status = RunStatus::Panic("boom".to_string());
        let a = vec![
            row_with_ledger("m88k", 0, 5, 20, 10),
            row_with_ledger("comp", 0, 6, 30, 12),
            failed.clone(),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(ledger_table(&a), ledger_table(&b));
        assert!(!ledger_table(&a).contains("999"));
    }

    fn row_with_repair(bench: &str, seed: u64, repairs: u64, quarantined: u64) -> RunRecord {
        let mut r = row(bench, "all", 1, 2.0);
        r.run_id = format!("{bench}-repair-{seed}");
        r.seed = seed;
        r.repair = Some(crate::runner::RepairSummary {
            repairs,
            quarantined,
            disabled: 0,
        });
        r
    }

    #[test]
    fn availability_table_counts_recovered_and_fatal_rows() {
        let mut fatal = row_with_repair("m88k", 2, 3, 1);
        fatal.status = RunStatus::SimError("lockstep divergence".to_string());
        let records = vec![
            row("m88k", "all", 1, 2.0), // plain row: skipped
            row_with_repair("m88k", 0, 0, 0),
            row_with_repair("m88k", 1, 4, 2),
            fatal.clone(),
        ];
        let t = availability_table(&records);
        // 3 armed rows: 1 clean, 1 recovered, 1 fatal; repairs sum to 7.
        assert!(t.contains(" 3 "), "3 armed runs:\n{t}");
        assert!(t.contains(" 7 "), "repairs sum to 7:\n{t}");
        assert!(t.contains("66.7"), "availability 2/3:\n{t}");
        // Ordering-independent (BTreeMap cells).
        let mut rev = records.clone();
        rev.reverse();
        assert_eq!(t, availability_table(&rev));
    }

    #[test]
    fn availability_table_without_armed_rows_says_so() {
        let t = availability_table(&[row("m88k", "all", 1, 2.0)]);
        assert!(t.contains("no rows carry repair summaries"), "{t}");
    }

    /// Builds a row whose windowed CPI stack is slot-exact for 16-wide
    /// commit: `base == retired`, remaining slots split across stalls.
    fn row_with_cpi(opt: &str, cycles: u64, retired: u64) -> RunRecord {
        let mut r = row("m88k", opt, 1, retired as f64 / cycles as f64);
        r.run_id = format!("m88k-{opt}-{cycles}-{retired}");
        r.window_cycles = cycles;
        r.window_retired = retired;
        let slots = cycles * 16 - retired;
        r.cpi = tracefill_sim::CpiStack {
            width: 16,
            cycles,
            base: retired,
            tc_miss: slots / 2,
            window_full: slots - slots / 2,
            ..tracefill_sim::CpiStack::default()
        };
        assert!(r.cpi.check_complete());
        r
    }

    #[test]
    fn cpi_table_base_reproduces_window_ipc() {
        // Two seeds per cell with different window lengths: the merged
        // stack must reproduce sum(retired)/sum(cycles), not a mean of
        // per-row IPCs.
        let records = vec![
            row_with_cpi("none", 1000, 2000),
            row_with_cpi("none", 3000, 7500),
            row_with_cpi("all", 1000, 2600),
            row_with_cpi("all", 5000, 14000),
        ];
        let mut merged = tracefill_sim::CpiStack::default();
        merged.merge(&records[2].cpi);
        merged.merge(&records[3].cpi);
        let want_ipc = (2600u64 + 14000) as f64 / (1000u64 + 5000) as f64;
        assert!(
            (merged.ipc_from_base() - want_ipc).abs() < 1e-9,
            "{} vs {want_ipc}",
            merged.ipc_from_base()
        );
        // Component CPIs sum to the cell CPI.
        let total: f64 = merged.cpi_of(merged.base)
            + merged
                .stall_slots()
                .iter()
                .map(|&(_, v)| merged.cpi_of(v))
                .sum::<f64>();
        assert!((total - 1.0 / want_ipc).abs() < 1e-9);
        let table = cpi_table(&records);
        for needle in [
            "component",
            "all@lat1",
            "none@lat1",
            "base",
            "tc_miss",
            "total CPI",
            "IPC",
        ] {
            assert!(table.contains(needle), "missing {needle} in\n{table}");
        }
        let ipc_line = table.lines().last().unwrap();
        assert!(
            ipc_line.contains(&format!("{want_ipc:.4}")),
            "IPC row should show {want_ipc:.4}: {ipc_line}"
        );
    }

    #[test]
    fn cpi_table_skips_rows_without_stacks() {
        // A legacy row (no stack) must not poison the cell.
        let records = vec![row("m88k", "all", 1, 2.5)];
        assert!(cpi_table(&records).contains("no rows carry a CPI stack"));
    }

    #[test]
    fn table2_prefers_registry_over_stats() {
        // Registry and stats disagree; the registry must win.
        let mut r = row("m88k", "all", 1, 2.0);
        r.stats.retired = 1000;
        r.stats.retired_moves = 999;
        r.metrics.add("retire.total", 1000);
        r.metrics.add("retire.moves", 120);
        let t2 = table2_table(&[r]);
        assert!(t2.contains("12.0"), "{t2}");
        assert!(!t2.contains("99.9"), "{t2}");
    }

    #[test]
    fn table2_falls_back_to_stats_for_legacy_rows() {
        let mut r = row("m88k", "all", 1, 2.0);
        r.stats.retired = 1000;
        r.stats.retired_moves = 130;
        let t2 = table2_table(&[r]);
        assert!(t2.contains("13.0"), "{t2}");
    }
}
