//! # tracefill-harness
//!
//! The experiment-campaign engine. Every result in the paper is a *grid* —
//! {optimization set} × {fill latency} × {15 benchmarks} × {seeds} — and
//! this crate turns such grids into parallel, resumable, reproducible
//! sweeps:
//!
//! * [`grid`] — a campaign spec that expands into deterministic
//!   [`RunDescriptor`]s, each with a stable content-hash run id;
//! * [`runner`] — executes one descriptor (warmup + measured window) under
//!   a cycle watchdog and a wall-clock watchdog, so one pathological
//!   configuration cannot hang a sweep;
//! * [`pool`] — a sharded `std::thread` worker pool (`--jobs N`) that
//!   isolates per-run panics with `catch_unwind`;
//! * [`store`] — an append-only JSONL result store; each completed run is
//!   written atomically (one `write` per line) and restarting a campaign
//!   skips ids already on disk;
//! * [`report`] — arithmetic/geometric-mean IPC deltas, min/max, and
//!   per-benchmark tables in the shape of the paper's Figure 8 and
//!   Table 2, reproduced from the JSONL alone;
//! * [`progress`] — a live `completed/total, runs/sec, ETA` line;
//! * [`adapt`] — static-vs-adaptive comparisons for the online pass
//!   controller (`tracefill adapt`), emitting a deterministic JSON report.
//!
//! The engine is `std`-only: JSON and hashing come from
//! [`tracefill_util`], threading from the standard library.
//!
//! ```no_run
//! use tracefill_harness::{grid::CampaignSpec, pool, report, store::ResultStore};
//!
//! let spec = CampaignSpec::fig8();
//! let mut store = ResultStore::open("fig8.jsonl").unwrap();
//! pool::run_campaign(&spec, &mut store, 4, true).unwrap();
//! let records = store.load().unwrap();
//! println!("{}", report::fig8_table(&records));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
pub mod grid;
pub mod pool;
pub mod progress;
pub mod report;
pub mod runner;
pub mod store;

pub use adapt::{run_adapt, AdaptSpec};
pub use grid::{CampaignSpec, OptPoint, RunDescriptor};
pub use pool::{run_campaign, run_campaign_with, CampaignOptions, CampaignSummary};
pub use runner::{RepairSummary, RunRecord, RunStatus};
pub use store::ResultStore;
