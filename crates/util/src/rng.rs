//! Seeded pseudo-random numbers without the `rand` crate.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) — the same mixer `rand` itself uses to seed
//! larger generators. It is tiny, passes BigCrush when used directly, and —
//! critically for the workload generator and the campaign engine — its
//! output for a given seed is a *stable, documented* sequence that will
//! never shift under a dependency upgrade.

/// A SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[lo, hi)` (half-open), via unbiased rejection
    /// sampling. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Reject draws past the largest multiple of `span`, keeping the
        // modulo unbiased: 2^64 mod span == ((MAX % span) + 1) % span.
        let rem = (u64::MAX % span).wrapping_add(1) % span;
        let max_valid = u64::MAX - rem; // inclusive
        loop {
            let v = self.next_u64();
            if v <= max_valid {
                return lo + v % span;
            }
        }
    }

    /// A uniform value in `[lo, hi)` as `u32`. Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_for_seed_zero() {
        // Known-good SplitMix64 outputs for seed 0 — if these ever change,
        // every seeded workload in the repo silently changes with them.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_all_values() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_u32(10, 15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "range under-covers: {seen:?}");
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
