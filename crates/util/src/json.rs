//! A small JSON value type with a deterministic writer and parser.
//!
//! This replaces `serde`/`serde_json` so the workspace builds offline. The
//! design constraints, in order:
//!
//! 1. **Determinism** — object members keep insertion order and numbers
//!    render via Rust's shortest-roundtrip formatting, so the same value
//!    always serializes to the same bytes (the campaign engine relies on
//!    this for byte-identical result rows).
//! 2. **Fidelity for counters** — `u64`/`i64` are kept exact rather than
//!    routed through `f64` (cycle counts overflow the 2^53 mantissa).
//! 3. **Smallness** — just what reports, specs and JSONL rows need.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (covers negative values).
    Int(i64),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// Any other finite number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (and therefore deterministic).
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl Json {
    /// An empty object (builder entry point).
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object (panics if `self` is not an object).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) — the JSONL row format.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with `indent`-space indentation for humans.
    #[must_use]
    pub fn dump_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent.max(1)), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use std::fmt::Write;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip and deterministic;
                    // force a decimal point so the value reparses as Float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document (must consume the whole input, modulo
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] pointing at the offending byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: only decode the BMP subset we
                            // ever emit, plus proper pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact() {
        let v = Json::object()
            .with("name", "fig8")
            .with("lat", 5u64)
            .with("delta", -2i64)
            .with("ipc", 3.25f64)
            .with("ok", true)
            .with("tags", Json::Arr(vec![Json::from("a"), Json::Null]));
        let text = v.dump();
        assert_eq!(
            text,
            r#"{"name":"fig8","lat":5,"delta":-2,"ipc":3.25,"ok":true,"tags":["a",null]}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn dump_is_deterministic_and_order_preserving() {
        let a = Json::object().with("b", 1u64).with("a", 2u64);
        assert_eq!(a.dump(), r#"{"b":1,"a":2}"#);
        assert_eq!(a.dump(), a.dump());
    }

    #[test]
    fn large_counters_stay_exact() {
        let big = u64::MAX - 1;
        let text = Json::UInt(big).dump();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_force_decimal_point() {
        assert_eq!(Json::Float(2.0).dump(), "2.0");
        assert!(matches!(Json::parse("2.0").unwrap(), Json::Float(_)));
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}\u{1F600}";
        let text = Json::Str(s.to_string()).dump();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::object().with("a", Json::Arr(vec![Json::from(1u64)]));
        let text = v.dump_pretty(2);
        assert!(text.contains("\n  \"a\": [\n    1\n  ]\n"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn errors_carry_positions() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
