//! A zero-dependency metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministic JSON export.
//!
//! The simulator and the fill unit record *why* things happened (opt
//! accept/reject reasons, segment-length distributions, window occupancy)
//! into a [`Registry`]. The harness merges registries across runs and the
//! report layer renders them; everything round-trips through
//! [`crate::json::Json`] so campaign rows stay byte-identical across
//! identical runs.
//!
//! Design constraints:
//!
//! * **Determinism** — registries iterate in sorted-name order and
//!   histograms use fixed bucket bounds chosen at the observation site, so
//!   serialization is byte-stable and merging is order-independent.
//! * **Mergeability** — `merge(a, b)` over fixed-bucket histograms yields
//!   exactly the histogram of the concatenated samples, so quantile
//!   estimates computed after a merge equal those computed over the union
//!   (see the `merge_matches_concatenation` test).
//! * **Smallness** — no atomics, no labels, no time series; one process,
//!   one thread of observation per registry.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// The current count.
    #[must_use]
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// The current value.
    #[must_use]
    #[inline]
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A fixed-bucket histogram over non-negative integer samples.
///
/// Buckets are defined by strictly increasing inclusive upper `bounds`
/// plus one implicit overflow bucket. Quantiles report the upper bound of
/// the bucket containing the target rank (the overflow bucket reports the
/// last finite bound), which makes them deterministic and stable under
/// [`Histogram::merge`]: merging two histograms with identical bounds is
/// exactly equivalent to observing the concatenated sample stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The configured inclusive upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `p`-quantile (`0.0 ..= 1.0`) as the inclusive upper
    /// bound of the bucket containing the target rank.
    ///
    /// Returns 0.0 with no samples; samples in the overflow bucket report
    /// the last finite bound.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        // Target rank in 1..=count (nearest-rank definition).
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i < self.bounds.len() {
                    self.bounds[i] as f64
                } else {
                    *self.bounds.last().expect("non-empty bounds") as f64
                };
            }
        }
        *self.bounds.last().expect("non-empty bounds") as f64
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging is only defined over
    /// histograms built with identical fixed bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with(
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::UInt(b)).collect()),
            )
            .with(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            )
            .with("count", self.count)
            .with("sum", self.sum)
    }

    /// Rebuilds a histogram from [`Histogram::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricsError`] when the shape is not a valid histogram
    /// (missing members, non-numeric entries, count/bounds mismatch).
    pub fn from_json(v: &Json) -> Result<Histogram, MetricsError> {
        let bounds = arr_u64(v, "bounds")?;
        let counts = arr_u64(v, "counts")?;
        if bounds.is_empty() || !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(MetricsError::new("histogram bounds invalid"));
        }
        if counts.len() != bounds.len() + 1 {
            return Err(MetricsError::new("histogram counts/bounds mismatch"));
        }
        let count = member_u64(v, "count")?;
        let sum = member_u64(v, "sum")?;
        if counts.iter().sum::<u64>() != count {
            return Err(MetricsError::new("histogram count mismatch"));
        }
        Ok(Histogram {
            bounds,
            counts,
            count,
            sum,
        })
    }
}

/// A malformed metrics payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError {
    /// Human-readable description.
    pub msg: String,
}

impl MetricsError {
    fn new(msg: &str) -> MetricsError {
        MetricsError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics error: {}", self.msg)
    }
}

impl std::error::Error for MetricsError {}

fn member_u64(v: &Json, key: &str) -> Result<u64, MetricsError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| MetricsError::new(&format!("missing or non-u64 member `{key}`")))
}

fn arr_u64(v: &Json, key: &str) -> Result<Vec<u64>, MetricsError> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| MetricsError::new(&format!("missing array member `{key}`")))?;
    arr.iter()
        .map(|e| {
            e.as_u64()
                .ok_or_else(|| MetricsError::new(&format!("non-u64 entry in `{key}`")))
        })
        .collect()
}

/// A named collection of counters, gauges and histograms.
///
/// Names iterate in sorted order, so [`Registry::to_json`] is
/// deterministic and [`Registry::merge`] is order-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Adds one to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The named counter's value (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Sets the named gauge (creating it).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.entry(name.to_string()).or_default().set(v);
    }

    /// The named gauge's value, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Records one sample into the named histogram, creating it with
    /// `bounds` on first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with different bounds.
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        let h = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        assert_eq!(
            h.bounds(),
            bounds,
            "histogram `{name}` re-registered with different bounds"
        );
        h.observe(v);
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Iterates counters whose name starts with `prefix`, in sorted order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Iterates histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Folds `other` into `self`: counters add, gauges keep `other`'s
    /// value (last write wins), histograms merge bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if a shared histogram name carries different bounds.
    pub fn merge(&mut self, other: &Registry) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().add(c.get());
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().set(g.get());
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes to a JSON object with `counters`, `gauges` and
    /// `histograms` members, each keyed by name in sorted order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (name, v) in self.counters() {
            counters = counters.with(name, v);
        }
        let mut gauges = Json::object();
        for (name, g) in &self.gauges {
            gauges = gauges.with(name, g.get());
        }
        let mut histograms = Json::object();
        for (name, h) in self.histograms() {
            histograms = histograms.with(name, h.to_json());
        }
        Json::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Rebuilds a registry from [`Registry::to_json`] output. Unknown
    /// members are ignored; missing sections default to empty.
    ///
    /// # Errors
    ///
    /// Returns a [`MetricsError`] when a present section is malformed.
    pub fn from_json(v: &Json) -> Result<Registry, MetricsError> {
        let mut reg = Registry::new();
        if let Some(counters) = v.get("counters") {
            let members = counters
                .as_obj()
                .ok_or_else(|| MetricsError::new("`counters` is not an object"))?;
            for (name, val) in members {
                let n = val
                    .as_u64()
                    .ok_or_else(|| MetricsError::new("non-u64 counter"))?;
                reg.add(name, n);
            }
        }
        if let Some(gauges) = v.get("gauges") {
            let members = gauges
                .as_obj()
                .ok_or_else(|| MetricsError::new("`gauges` is not an object"))?;
            for (name, val) in members {
                let x = val
                    .as_f64()
                    .ok_or_else(|| MetricsError::new("non-numeric gauge"))?;
                reg.set_gauge(name, x);
            }
        }
        if let Some(histograms) = v.get("histograms") {
            let members = histograms
                .as_obj()
                .ok_or_else(|| MetricsError::new("`histograms` is not an object"))?;
            for (name, val) in members {
                reg.histograms
                    .insert(name.clone(), Histogram::from_json(val)?);
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    const BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_observes_into_inclusive_buckets() {
        let mut h = Histogram::new(BOUNDS);
        for v in [0, 1, 2, 3, 8, 200] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 214);
        // 0,1 -> bucket[<=1]; 2 -> [<=2]; 3 -> [<=4]; 8 -> [<=8]; 200 -> overflow.
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let mut h = Histogram::new(BOUNDS);
        for _ in 0..90 {
            h.observe(3); // bucket <=4
        }
        for _ in 0..10 {
            h.observe(100); // bucket <=128
        }
        assert_eq!(h.p50(), 4.0);
        assert_eq!(h.p90(), 4.0);
        assert_eq!(h.p99(), 128.0);
        assert_eq!(h.quantile(1.0), 128.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        // Pins the empty-histogram contract explicitly: every quantile of
        // an empty histogram is 0.0, across the whole [0, 1] range — not
        // NaN, not a bucket bound.
        let h = Histogram::new(BOUNDS);
        assert_eq!(h.count(), 0);
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(p), 0.0, "quantile({p}) of empty histogram");
        }
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p90(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.sum(), 0);
    }

    /// A seeded random histogram over `BOUNDS` with `n` observations.
    fn random_histogram(rng: &mut SplitMix64, n: usize) -> Histogram {
        let mut h = Histogram::new(BOUNDS);
        for _ in 0..n {
            // Spread across buckets and into overflow.
            h.observe(rng.next_u64() % 300);
        }
        h
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut rng = SplitMix64::new(0xfeed);
        for trial in 0..50 {
            let a = random_histogram(&mut rng, 40);
            let b = random_histogram(&mut rng, 17);
            let c = random_histogram(&mut rng, 63);
            // Commutativity: a+b == b+a.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "trial {trial}: merge not commutative");
            // Associativity: (a+b)+c == a+(b+c).
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "trial {trial}: merge not associative");
            // The merge also conserves mass.
            assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
            assert_eq!(ab_c.sum(), a.sum() + b.sum() + c.sum());
        }
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let mut rng = SplitMix64::new(0xbead);
        for trial in 0..50 {
            let n = (rng.next_u64() % 100) as usize;
            let h = random_histogram(&mut rng, n);
            let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            for w in ps.windows(2) {
                assert!(
                    h.quantile(w[0]) <= h.quantile(w[1]),
                    "trial {trial}: quantile({}) > quantile({})",
                    w[0],
                    w[1]
                );
            }
            // Merging can only move any quantile outward from the lower
            // histogram's view of it... not a lattice law in general, but
            // quantiles must stay inside the bound range.
            for p in ps {
                let q = h.quantile(p);
                assert!(
                    q == 0.0 || (q >= BOUNDS[0] as f64 && q <= *BOUNDS.last().unwrap() as f64),
                    "trial {trial}: quantile({p}) = {q} outside bounds"
                );
            }
        }
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut rng = SplitMix64::new(0xc0de);
        for trial in 0..50 {
            let n = (rng.next_u64() % 200) as usize;
            let h = random_histogram(&mut rng, n);
            // Through the Json value.
            let back = Histogram::from_json(&h.to_json()).unwrap();
            assert_eq!(h, back, "trial {trial}: value round-trip");
            // Through the serialized text, as stores do.
            let text = h.to_json().dump();
            let reparsed = Histogram::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(h, reparsed, "trial {trial}: text round-trip");
            // And the round-tripped histogram keeps merging correctly.
            let mut m = h.clone();
            m.merge(&back);
            assert_eq!(m.count(), 2 * h.count(), "trial {trial}");
        }
    }

    #[test]
    fn overflow_reports_last_finite_bound() {
        let mut h = Histogram::new(&[4, 8]);
        h.observe(1000);
        assert_eq!(h.p50(), 8.0);
    }

    /// Satellite acceptance test: quantiles of `merge(a, b)` equal the
    /// quantiles of one histogram fed the concatenated sample stream.
    #[test]
    fn merge_matches_concatenation() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        let samples_a: Vec<u64> = (0..500).map(|_| rng.next_u64() % 200).collect();
        let samples_b: Vec<u64> = (0..337).map(|_| rng.next_u64() % 50).collect();

        let mut a = Histogram::new(BOUNDS);
        let mut b = Histogram::new(BOUNDS);
        let mut concat = Histogram::new(BOUNDS);
        for &v in &samples_a {
            a.observe(v);
            concat.observe(v);
        }
        for &v in &samples_b {
            b.observe(v);
            concat.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, concat);
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(p), concat.quantile(p), "p={p}");
        }
        assert_eq!(a.mean(), concat.mean());
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1, 2]);
        let b = Histogram::new(&[1, 3]);
        a.merge(&b);
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = Histogram::new(BOUNDS);
        for v in [0, 5, 9, 1000] {
            h.observe(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        // Also through text.
        let text = h.to_json().dump();
        let back2 = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back2, h);
    }

    #[test]
    fn histogram_from_json_rejects_malformed() {
        assert!(Histogram::from_json(&Json::object()).is_err());
        let bad = Json::object()
            .with("bounds", Json::Arr(vec![Json::UInt(1)]))
            .with(
                "counts",
                Json::Arr(vec![Json::UInt(1), Json::UInt(0), Json::UInt(0)]),
            )
            .with("count", 1u64)
            .with("sum", 1u64);
        assert!(Histogram::from_json(&bad).is_err(), "counts len mismatch");
    }

    #[test]
    fn registry_records_and_exports_deterministically() {
        let mut r = Registry::new();
        r.inc("fill.moves.accept");
        r.add("fill.moves.reject.source_not_found", 2);
        r.set_gauge("window.peak", 96.0);
        r.observe("seg.len", BOUNDS, 12);
        r.observe("seg.len", BOUNDS, 3);
        assert_eq!(r.counter("fill.moves.accept"), 1);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("window.peak"), Some(96.0));
        assert_eq!(r.histogram("seg.len").unwrap().count(), 2);
        // Insertion order differs; output order is sorted and stable.
        let mut r2 = Registry::new();
        r2.observe("seg.len", BOUNDS, 3);
        r2.observe("seg.len", BOUNDS, 12);
        r2.set_gauge("window.peak", 96.0);
        r2.add("fill.moves.reject.source_not_found", 2);
        r2.inc("fill.moves.accept");
        assert_eq!(r.to_json().dump(), r2.to_json().dump());
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        a.add("x", 3);
        a.observe("h", BOUNDS, 1);
        let mut b = Registry::new();
        b.add("x", 4);
        b.add("y", 1);
        b.observe("h", BOUNDS, 100);
        b.observe("k", BOUNDS, 2);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("k").unwrap().count(), 1);
    }

    #[test]
    fn registry_json_roundtrip() {
        let mut r = Registry::new();
        r.add("a.b", 42);
        r.set_gauge("g", 1.5);
        r.observe("h", BOUNDS, 7);
        let back = Registry::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // Unknown members ignored, missing sections default empty.
        let sparse = Json::parse(r#"{"counters":{"n":1},"future":true}"#).unwrap();
        let reg = Registry::from_json(&sparse).unwrap();
        assert_eq!(reg.counter("n"), 1);
        assert!(reg.histogram("h").is_none());
        assert_eq!(
            Registry::from_json(&Json::parse("{}").unwrap()).unwrap(),
            Registry::new()
        );
    }

    #[test]
    fn counters_with_prefix_filters() {
        let mut r = Registry::new();
        r.inc("fill.moves.accept");
        r.inc("fill.cse.accept");
        r.inc("seg.count");
        let fill: Vec<&str> = r.counters_with_prefix("fill.").map(|(n, _)| n).collect();
        assert_eq!(fill, vec!["fill.cse.accept", "fill.moves.accept"]);
    }
}
