//! # tracefill-util
//!
//! Small, dependency-free support code shared across the workspace so the
//! whole repository builds and tests **offline**:
//!
//! * [`json`] — a compact JSON value type with a deterministic writer and a
//!   recursive-descent parser, replacing `serde`/`serde_json` for report
//!   dumps and the campaign result store (JSONL rows);
//! * [`rng`] — a seeded SplitMix64 generator replacing `rand` for the
//!   pattern-mix workload generator and any test that needs controlled
//!   randomness;
//! * [`hash`] — FNV-1a 64-bit hashing, used for stable content-addressed
//!   run identifiers in `tracefill-harness`;
//! * [`metrics`] — counters, gauges and fixed-bucket mergeable histograms
//!   with deterministic JSON export, the substrate for fill-unit opt
//!   telemetry and harness aggregation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
pub mod json;
pub mod metrics;
pub mod rng;

pub use hash::fnv1a64;
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use rng::SplitMix64;
