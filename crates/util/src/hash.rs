//! FNV-1a 64-bit hashing.
//!
//! Used wherever the workspace needs a *stable* content hash — most
//! importantly the campaign engine's run identifiers, which must not change
//! across processes, platforms or compiler versions (unlike
//! `std::hash::DefaultHasher`, whose output is explicitly unspecified).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Hashes `bytes` with FNV-1a (64-bit).
///
/// ```
/// // The well-known FNV-1a test vectors.
/// assert_eq!(tracefill_util::fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(tracefill_util::fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for composing a hash over several fields.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
