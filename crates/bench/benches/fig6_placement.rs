//! Regenerates Figure 6: IPC improvement of fill-unit instruction
//! placement. The paper: mean +5%, max ijpeg +11%, min tex +1%.

use tracefill_bench::improvement_table;
use tracefill_core::config::OptConfig;

fn main() {
    improvement_table(
        "Figure 6: instruction placement (paper mean +5%)",
        OptConfig::only_placement(),
        &|b| {
            Some(match b.name {
                "ijpeg" => 11.0,
                "tex" => 1.0,
                _ => 5.0,
            })
        },
    );
}
