//! Regenerates Figure 8: the combined IPC improvement of all four
//! optimizations, with the fill-unit latency varied over 1, 5 and 10
//! cycles. The paper: ~+18% mean at any latency (fill latency has a
//! negligible impact); m88ksim +44%, chess +38%, compress/gcc/go/gnuplot
//! +13-14%.
//!
//! This target runs through the campaign engine: the grid is executed in
//! parallel into a resumable JSONL store under `target/campaigns/`, so a
//! killed run picks up where it left off, and the table is rendered from
//! the store alone — `tracefill report <store>` reproduces it.

use tracefill_bench::campaign_records;
use tracefill_harness::{report, CampaignSpec};

fn main() {
    println!("=== Figure 8: combined optimizations at fill latency 1/5/10 ===");
    let records = campaign_records(CampaignSpec::fig8());
    print!("{}", report::fig8_table(&records));
    println!("paper: ~+18% mean at any latency; m88k +44%, ch +38%, comp/gcc/go/plot +13-14%");
}
