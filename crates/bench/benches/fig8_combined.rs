//! Regenerates Figure 8: the combined IPC improvement of all four
//! optimizations, with the fill-unit latency varied over 1, 5 and 10
//! cycles. The paper: ~+18% mean at any latency (fill latency has a
//! negligible impact); m88ksim +44%, chess +38%, compress/gcc/go/gnuplot
//! +13-14%.

use tracefill_bench::{run_opts, run_with};
use tracefill_core::config::OptConfig;
use tracefill_sim::SimConfig;

fn main() {
    println!("=== Figure 8: combined optimizations at fill latency 1/5/10 ===");
    println!(
        "{:6} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "bench", "base IPC", "lat 1", "lat 5", "lat 10", "paper"
    );
    let mut means = [0.0f64; 3];
    let mut n = 0.0;
    for b in tracefill_workloads::suite() {
        let base = run_opts(&b, OptConfig::none());
        let mut imps = [0.0f64; 3];
        for (i, lat) in [1u32, 5, 10].into_iter().enumerate() {
            let mut cfg = SimConfig::with_opts(OptConfig::all());
            cfg.fill.latency = lat;
            let r = run_with(&b, cfg);
            imps[i] = (r.ipc / base.ipc - 1.0) * 100.0;
            means[i] += imps[i];
        }
        let paper = match b.name {
            "m88k" => "+44%",
            "ch" => "+38%",
            "comp" | "gcc" | "go" | "plot" => "+13-14%",
            _ => "~+18%",
        };
        println!(
            "{:6} {:9.3} {:+7.1}% {:+7.1}% {:+7.1}% {:>9}",
            b.name, base.ipc, imps[0], imps[1], imps[2], paper
        );
        n += 1.0;
    }
    println!(
        "{:6} {:>9} {:+7.1}% {:+7.1}% {:+7.1}% {:>9}",
        "mean",
        "",
        means[0] / n,
        means[1] / n,
        means[2] / n,
        "+18%"
    );
}
