//! Regenerates Figure 7: the percentage of on-path instructions whose
//! last-arriving source value was delayed by the cross-cluster bypass
//! network, baseline vs. instruction placement. The paper: ~35% -> ~29%
//! on average.

use tracefill_bench::run_opts;
use tracefill_core::config::OptConfig;

fn main() {
    println!("=== Figure 7: bypass-delayed instructions (paper: ~35% -> ~29%) ===");
    println!("{:6} {:>10} {:>11}", "bench", "baseline%", "placement%");
    let (mut sb, mut sp, mut n) = (0.0, 0.0, 0.0);
    for b in tracefill_workloads::suite() {
        let base = run_opts(&b, OptConfig::none());
        let place = run_opts(&b, OptConfig::only_placement());
        let fb = base.stats.bypass_delay_fraction() * 100.0;
        let fp = place.stats.bypass_delay_fraction() * 100.0;
        println!("{:6} {:10.1} {:11.1}", b.name, fb, fp);
        sb += fb;
        sp += fp;
        n += 1.0;
    }
    println!("{:6} {:10.1} {:11.1}", "mean", sb / n, sp / n);
}
