//! Regenerates Figure 4: IPC improvement of fill-unit reassociation.
//! The paper: ~1-2% for ten of fifteen benchmarks, +23% for m88ksim and
//! chess, +6% ijpeg, +8% ghostscript.

use tracefill_bench::improvement_table;
use tracefill_core::config::OptConfig;

fn main() {
    improvement_table("Figure 4: reassociation", OptConfig::only_reassoc(), &|b| {
        Some(match b.name {
            "m88k" | "ch" => 23.0,
            "ijpeg" => 6.0,
            "gs" => 8.0,
            _ => 1.5,
        })
    });
}
