//! Regenerates Table 1: the benchmark suite, with the paper's instruction
//! counts and input sets alongside our kernels' realized properties.

fn main() {
    println!("=== Table 1: benchmarks ===");
    let desc = "description";
    println!(
        "{:8} {:>10} {:>12}   {:>12} {desc}",
        "bench", "paper inst", "paper input", "kernel i/s"
    );
    for b in tracefill_workloads::suite() {
        println!(
            "{:8} {:>10} {:>12.12}   {:>12} {}",
            b.name, b.paper_icount, b.paper_input, b.instrs_per_scale, b.description
        );
    }
    println!("\nRealized dynamic mix (fill-unit view, 60k instructions each):");
    println!(
        "{:8} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "bench", "moves%", "reassoc%", "scadd%", "branch%", "load%", "store%"
    );
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(80_000)).unwrap();
        let c = tracefill_workloads::characterize(&prog, 60_000);
        println!(
            "{:8} {:7.1} {:8.1} {:7.1} {:7.1} {:7.1} {:7.1}",
            b.name,
            c.moves * 100.0,
            c.reassoc * 100.0,
            c.scadd * 100.0,
            c.branches * 100.0,
            c.loads * 100.0,
            c.stores * 100.0
        );
    }
}
