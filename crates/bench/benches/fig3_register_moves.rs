//! Regenerates Figure 3: IPC improvement of executing register moves in
//! the rename logic. The paper reports a ~5% average (moves are ~6% of
//! the dynamic stream); only the average is quoted numerically in the
//! text, so the per-benchmark "paper" column shows the suite mean.

use tracefill_bench::improvement_table;
use tracefill_core::config::OptConfig;

fn main() {
    improvement_table(
        "Figure 3: register-move handling (paper mean ~ +5%)",
        OptConfig::only_moves(),
        &|_| Some(5.0),
    );
}
