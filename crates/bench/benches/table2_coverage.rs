//! Regenerates Table 2: the percentage of correct-path instructions to
//! which each transformation was applied, measured at retirement with all
//! optimizations enabled. The paper's mean is ~13%.

use tracefill_bench::run_opts;
use tracefill_core::config::OptConfig;

fn main() {
    println!("=== Table 2: % of retired instructions transformed ===");
    println!(
        "{:6} | {:>6} {:>8} {:>6} {:>6} | {:>6} {:>8} {:>6} {:>6}",
        "", "ours", "", "", "", "paper", "", "", ""
    );
    println!(
        "{:6} | {:>6} {:>8} {:>6} {:>6} | {:>6} {:>8} {:>6} {:>6}",
        "bench", "moves", "reassoc", "scadd", "total", "moves", "reassoc", "scadd", "total"
    );
    let mut tot = 0.0;
    let mut n = 0.0;
    for b in tracefill_workloads::suite() {
        let r = run_opts(&b, OptConfig::all());
        let s = r.stats;
        let ret = s.retired.max(1) as f64;
        let (m, re, sc) = (
            s.retired_moves as f64 / ret * 100.0,
            s.retired_reassoc as f64 / ret * 100.0,
            s.retired_scadd as f64 / ret * 100.0,
        );
        let t = b.table2;
        println!(
            "{:6} | {:6.1} {:8.1} {:6.1} {:6.1} | {:6.1} {:8.1} {:6.1} {:6.1}",
            b.name,
            m,
            re,
            sc,
            m + re + sc,
            t.moves,
            t.reassoc,
            t.scadd,
            t.total
        );
        tot += m + re + sc;
        n += 1.0;
    }
    println!("mean total: ours {:.1}%  paper 13.3%", tot / n);
}
