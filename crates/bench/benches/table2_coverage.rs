//! Regenerates Table 2: the percentage of correct-path instructions to
//! which each transformation was applied, measured at retirement with all
//! optimizations enabled. The paper's mean is ~13%.
//!
//! This target runs through the campaign engine: the grid is executed in
//! parallel into a resumable JSONL store under `target/campaigns/`, and
//! the table is rendered from the store alone — `tracefill report <store>`
//! reproduces it.

use tracefill_bench::campaign_records;
use tracefill_harness::{report, CampaignSpec};

fn main() {
    println!("=== Table 2: % of retired instructions transformed ===");
    let records = campaign_records(CampaignSpec::table2());
    print!("{}", report::table2_table(&records));
}
