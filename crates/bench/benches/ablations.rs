//! Design-choice ablations beyond the paper's own figures (indexed in
//! DESIGN.md): trace packing, branch promotion, inactive issue,
//! loop-aligned fill, promotion threshold, and scaled-add shift limit.

use tracefill_bench::{run_with, RunResult};
use tracefill_core::config::OptConfig;
use tracefill_sim::SimConfig;
use tracefill_workloads::Benchmark;

fn geomean(rs: &[(String, RunResult)]) -> f64 {
    (rs.iter().map(|(_, r)| r.ipc.ln()).sum::<f64>() / rs.len() as f64).exp()
}

fn sweep(title: &str, make: &dyn Fn() -> SimConfig) -> f64 {
    let rows: Vec<(String, RunResult)> = tracefill_workloads::suite()
        .iter()
        .map(|b: &Benchmark| (b.name.to_string(), run_with(b, make())))
        .collect();
    let g = geomean(&rows);
    println!("{title:40} geomean IPC = {g:.3}");
    g
}

fn main() {
    println!("=== Ablations (geomean IPC over the suite) ===");
    let base = sweep("baseline (paper machine)", &SimConfig::default);
    sweep("baseline, trace packing off", &|| {
        let mut c = SimConfig::default();
        c.fill.packing = false;
        c
    });
    sweep("baseline, promotion off", &|| {
        let mut c = SimConfig::default();
        c.fill.promotion = false;
        c
    });
    sweep("baseline, inactive issue off", &|| SimConfig {
        inactive_issue: false,
        ..SimConfig::default()
    });
    sweep("baseline, loop-aligned fill off", &|| {
        let mut c = SimConfig::default();
        c.fill.align_loops = false;
        c
    });
    sweep("baseline, promotion threshold 16", &|| {
        let mut c = SimConfig::default();
        c.bias.threshold = 16;
        c
    });
    let all = sweep("all optimizations", &|| {
        SimConfig::with_opts(OptConfig::all())
    });
    sweep("all opts, in-block reassoc allowed", &|| {
        let mut o = OptConfig::all();
        o.reassoc_cross_block_only = false;
        SimConfig::with_opts(o)
    });
    sweep("all opts + CSE (paper future work)", &|| {
        let mut o = OptConfig::all();
        o.cse = true;
        SimConfig::with_opts(o)
    });
    sweep("all opts, scadd shift limit 4", &|| {
        let mut o = OptConfig::all();
        o.scadd_max_shift = 4;
        SimConfig::with_opts(o)
    });
    sweep("all opts, cross-cluster latency 2", &|| {
        let mut c = SimConfig::with_opts(OptConfig::all());
        c.cross_cluster_latency = 2;
        c
    });
    sweep("all opts, trace cache 512 entries", &|| {
        let mut c = SimConfig::with_opts(OptConfig::all());
        c.tcache.entries = 512;
        c
    });
    sweep("all opts, trace cache 8192 entries", &|| {
        let mut c = SimConfig::with_opts(OptConfig::all());
        c.tcache.entries = 8192;
        c
    });
    println!(
        "\ncombined optimizations: {:+.1}% over baseline",
        (all / base - 1.0) * 100.0
    );
}
