//! Regenerates Figure 5: IPC improvement of scaled-add creation.
//! The paper: +1% (li, vortex, pgp, gnuplot) to +8% (go, tex), mean +3.7%.

use tracefill_bench::improvement_table;
use tracefill_core::config::OptConfig;

fn main() {
    improvement_table(
        "Figure 5: scaled adds (paper mean +3.7%)",
        OptConfig::only_scadd(),
        &|b| {
            Some(match b.name {
                "go" | "tex" => 8.0,
                "li" | "vor" | "pgp" | "plot" => 1.0,
                _ => 3.7,
            })
        },
    );
}
