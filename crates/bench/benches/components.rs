//! Criterion micro-benchmarks of the core structures: fill-unit pass
//! throughput, trace cache lookup, predictor access, and whole-pipeline
//! simulation speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tracefill_core::builder::{build_segments, FillInput};
use tracefill_core::config::{ClusterConfig, FillConfig, OptConfig};
use tracefill_core::opt;
use tracefill_core::tcache::TraceCache;
use tracefill_core::TraceCacheConfig;
use tracefill_sim::{SimConfig, Simulator};
use tracefill_uarch::pht::MultiBranchPredictor;

fn retire_stream(n: usize) -> Vec<FillInput> {
    let b = tracefill_workloads::by_name("m88k").unwrap();
    let prog = b.program(50).unwrap();
    let mut interp = tracefill_isa::interp::Interp::new(&prog);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = interp.step().unwrap();
        if r.halt.is_some() {
            break;
        }
        out.push(FillInput {
            pc: r.pc,
            instr: r.instr,
            taken: r.taken,
            promoted: None,
            fetch_miss_head: false,
        });
    }
    out
}

fn bench_fill(c: &mut Criterion) {
    let stream = retire_stream(4096);
    let cfg = FillConfig::default();
    c.bench_function("fill/build_segments_4k_instrs", |b| {
        b.iter(|| black_box(build_segments(black_box(&stream), &cfg)))
    });
    let segs = build_segments(&stream, &cfg);
    c.bench_function("fill/optimize_all_passes", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for seg in &segs {
                let mut s = seg.clone();
                let counts = opt::apply_all(&mut s, &OptConfig::all(), &ClusterConfig::default());
                total += counts.transformed_instrs();
            }
            black_box(total)
        })
    });
}

fn bench_tcache(c: &mut Criterion) {
    let stream = retire_stream(4096);
    let segs = build_segments(&stream, &FillConfig::default());
    let mut tc = TraceCache::new(TraceCacheConfig::default());
    let pcs: Vec<u32> = segs.iter().map(|s| s.start_pc).collect();
    for seg in segs {
        tc.insert(std::sync::Arc::new(seg));
    }
    c.bench_function("tcache/lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pcs.len();
            black_box(tc.lookup(pcs[i], &[true, false, true]))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let mut p = MultiBranchPredictor::default();
    c.bench_function("predictor/predict_update", |b| {
        let mut pc = 0x40_0000u32;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            let pr = p.predict(pc, 0);
            p.update(pr, pc & 8 == 0);
            black_box(pr)
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let b = tracefill_workloads::by_name("ijpeg").unwrap();
    let prog = b.program(10_000).unwrap();
    c.bench_function("pipeline/10k_instrs_all_opts", |bch| {
        bch.iter_with_setup(
            || Simulator::new(&prog, SimConfig::with_opts(OptConfig::all())),
            |mut sim| {
                sim.run_instrs(10_000).unwrap();
                black_box(sim.stats().retired)
            },
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fill, bench_tcache, bench_predictor, bench_pipeline
);
criterion_main!(benches);
