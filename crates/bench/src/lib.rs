//! # tracefill-bench
//!
//! Shared harness code for regenerating every table and figure of the
//! paper's evaluation. Each `cargo bench` target prints the same rows or
//! series the paper reports, side by side with the paper's numbers:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_suite` | Table 1 — the benchmark suite |
//! | `fig3_register_moves` | Figure 3 — IPC gain of register-move handling |
//! | `fig4_reassociation` | Figure 4 — IPC gain of reassociation |
//! | `fig5_scaled_adds` | Figure 5 — IPC gain of scaled adds |
//! | `fig6_placement` | Figure 6 — IPC gain of instruction placement |
//! | `fig7_bypass_delay` | Figure 7 — % instructions delayed by bypass |
//! | `fig8_combined` | Figure 8 — combined gain at fill latency 1/5/10 |
//! | `table2_coverage` | Table 2 — % of instructions transformed |
//! | `ablations` | beyond-paper design-choice sweeps |
//! | `components` | Criterion micro-benchmarks of the core structures |
//!
//! Instruction budgets are environment-tunable: `TRACEFILL_BUDGET` (measured
//! window, default 150 000 retired instructions per run) and
//! `TRACEFILL_WARMUP` (default 150 000 — trace-cache, bias-table and
//! predictor state need a long run-in before the steady state is
//! representative).

#![warn(missing_docs)]

use tracefill_core::config::OptConfig;
use tracefill_harness::{run_campaign, CampaignSpec, ResultStore, RunRecord};
use tracefill_sim::{SimConfig, Simulator, Stats};
use tracefill_workloads::Benchmark;

/// Measured window per run, in retired instructions.
pub fn budget() -> u64 {
    std::env::var("TRACEFILL_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}

/// Warmup run-in before the measured window.
pub fn warmup() -> u64 {
    std::env::var("TRACEFILL_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}

/// Result of one measured simulation window.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// IPC over the measured window.
    pub ipc: f64,
    /// Full cumulative statistics at the end of the run.
    pub stats: Stats,
}

/// Runs `bench` under `cfg` for the standard warmup + budget window.
///
/// # Panics
///
/// Panics on simulator errors — the oracle lockstep check is enabled, so a
/// completed run is an architecturally verified run.
pub fn run_with(bench: &Benchmark, cfg: SimConfig) -> RunResult {
    let total = warmup() + budget();
    let prog = bench
        .program(bench.scale_for(total * 2))
        .expect("kernel assembles");
    let mut sim = Simulator::new(&prog, cfg);
    sim.run_instrs(warmup())
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let (c0, r0) = (sim.cycle(), sim.stats().retired);
    sim.run_instrs(budget())
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let ipc = (sim.stats().retired - r0) as f64 / (sim.cycle() - c0).max(1) as f64;
    RunResult {
        ipc,
        stats: sim.stats(),
    }
}

/// Runs `bench` with a given optimization set on the paper's machine.
pub fn run_opts(bench: &Benchmark, opts: OptConfig) -> RunResult {
    run_with(bench, SimConfig::with_opts(opts))
}

/// Runs `spec` through the campaign engine into a resumable store under
/// `target/campaigns/` and returns every recorded row.
///
/// The store path is keyed by campaign name and window sizes
/// (`TRACEFILL_WARMUP`/`TRACEFILL_BUDGET` override the spec's windows), so
/// a killed regeneration resumes instead of restarting, and window changes
/// never mix rows. Set `TRACEFILL_JOBS` to pin the worker count.
///
/// # Panics
///
/// Panics on store I/O errors — figure regeneration has no useful
/// degraded mode without its results file.
pub fn campaign_records(mut spec: CampaignSpec) -> Vec<RunRecord> {
    if let Ok(v) = std::env::var("TRACEFILL_WARMUP") {
        spec.warmup = v.parse().expect("TRACEFILL_WARMUP must be an integer");
    }
    if let Ok(v) = std::env::var("TRACEFILL_BUDGET") {
        spec.budget = v.parse().expect("TRACEFILL_BUDGET must be an integer");
    }
    let jobs = std::env::var("TRACEFILL_JOBS")
        .ok()
        .map(|v| v.parse().expect("TRACEFILL_JOBS must be an integer"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let dir = std::path::Path::new("target").join("campaigns");
    std::fs::create_dir_all(&dir).expect("create target/campaigns");
    let path = dir.join(format!(
        "{}-w{}-b{}.jsonl",
        spec.name, spec.warmup, spec.budget
    ));
    let mut store = ResultStore::open(&path).expect("open campaign store");
    let summary = run_campaign(&spec, &mut store, jobs, true).expect("campaign I/O");
    eprintln!(
        "[{} runs, {} resumed, {} failed -> {}]",
        summary.total,
        summary.skipped,
        summary.failed,
        path.display()
    );
    store.load().expect("load campaign store")
}

/// Prints the standard per-benchmark improvement table for one
/// optimization, with the paper's reported improvement alongside.
pub fn improvement_table(title: &str, opts: OptConfig, paper: &dyn Fn(&Benchmark) -> Option<f64>) {
    println!("\n=== {title} ===");
    println!(
        "{:6} {:>9} {:>9} {:>8} {:>10}",
        "bench", "base IPC", "opt IPC", "ours", "paper"
    );
    let mut ours_sum = 0.0;
    let mut n = 0.0;
    for b in tracefill_workloads::suite() {
        let base = run_opts(&b, OptConfig::none());
        let opt = run_opts(&b, opts);
        let imp = (opt.ipc / base.ipc - 1.0) * 100.0;
        let paper_s = paper(&b)
            .map(|p| format!("{p:+.1}%"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:6} {:9.3} {:9.3} {:+7.1}% {:>10}",
            b.name, base.ipc, opt.ipc, imp, paper_s
        );
        ours_sum += imp;
        n += 1.0;
    }
    println!("{:6} {:>9} {:>9} {:+7.1}%", "mean", "", "", ours_sum / n);
}
